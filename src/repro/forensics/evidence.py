"""Evidence capture: from a non-clean :class:`PoolReport` to a bundle.

A verdict is a single bit per VM; an incident record has to carry what
the responder actually reviews. :func:`capture_evidence` freezes, at
the moment the verdict lands:

* the **voting matrix** — every :class:`PairComparison` of the check,
  so the majority vote can be re-derived from the bundle alone;
* per suspect, the **byte-diff hunks** against a majority-cluster
  representative (:func:`repro.forensics.diff.diff_modules`), each
  classified relocation / tamper / structural;
* the suspect's **PE layout summary** (region table with offsets and
  sizes) — the paper's E4 reporting, down to the component;
* the **correlated timeline**: every audit-log event carrying this
  check's ``check_id`` (breaker trips, chaos events, membership
  changes, the comparisons themselves), pulled from the
  :class:`~repro.obs.events.EventLog`.

Capture runs only on the alert path — a clean report never reaches it —
which is what keeps forensics off the hot path. The
:class:`EvidenceRecorder` is the retention policy around it: a bounded
in-memory shelf plus an optional directory sink with deterministic
filenames (``incident-0001-chk-000007.json``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..core.parser import ParsedModule
from ..core.report import PoolReport, VMVerdict
from ..obs.events import Event, EventLog, NullEventLog, NULL_EVENTS
from .diff import RegionDiff, diff_modules

__all__ = ["SuspectEvidence", "EvidenceBundle", "capture_evidence",
           "EvidenceRecorder"]


@dataclass
class SuspectEvidence:
    """Everything captured about one flagged VM."""

    vm_name: str
    verdict: VMVerdict
    reference_vm: str | None
    base: int
    reference_base: int
    #: region table of the suspect's copy: name/kind/start/end/size
    pe_layout: list[dict] = field(default_factory=list)
    region_diffs: list[RegionDiff] = field(default_factory=list)

    @property
    def unexplained_hunks(self) -> int:
        return sum(len(d.unexplained) for d in self.region_diffs)

    def tampered_regions(self) -> list[str]:
        """Regions with at least one non-relocation hunk."""
        return [d.region for d in self.region_diffs if d.unexplained]


@dataclass
class EvidenceBundle:
    """One incident record: a non-clean pool check, fully captured."""

    bundle_id: str
    module_name: str
    captured_at: float           # simulated-clock time of capture
    check_id: str | None
    vm_names: list[str]
    flagged: list[str]
    degraded: dict[str, str] = field(default_factory=dict)
    verdicts: dict[str, VMVerdict] = field(default_factory=dict)
    #: the full PairComparison grid, as (vm_a, vm_b, mismatched) rows
    voting_matrix: list[dict] = field(default_factory=list)
    suspects: list[SuspectEvidence] = field(default_factory=list)
    timeline: list[Event] = field(default_factory=list)
    #: terminal :class:`~repro.core.repair.RemediationRecord` entries
    #: attached after the repair engine ran for this incident; empty
    #: under the detect-only policy (and for bundles predating it)
    remediations: list = field(default_factory=list)

    @property
    def unexplained_hunks(self) -> int:
        return sum(s.unexplained_hunks for s in self.suspects)

    def suspect(self, vm_name: str) -> SuspectEvidence:
        for s in self.suspects:
            if s.vm_name == vm_name:
                return s
        raise KeyError(vm_name)


def _pe_layout(mod: ParsedModule) -> list[dict]:
    layout: list[dict] = []
    for kind, regions in (("header", mod.header_regions),
                          ("code", mod.code_regions)):
        for r in regions:
            layout.append({"name": r.name, "kind": kind, "start": r.start,
                           "end": r.end, "size": r.end - r.start})
    layout.sort(key=lambda d: (d["start"], d["name"]))
    return layout


def _pick_reference(report: PoolReport, suspect: str,
                    by_vm: dict[str, ParsedModule]) -> str | None:
    """A majority-cluster representative with a parsed copy in hand.

    Prefer clean VMs (alphabetical, for determinism); if the vote left
    no clean VM — split-brain pools — fall back to the highest-matching
    other VM, so the diff still shows *something* reviewable.
    """
    clean = [v for v in sorted(report.clean_vms())
             if v != suspect and v in by_vm]
    if clean:
        return clean[0]
    others = [v for v in sorted(report.verdicts)
              if v != suspect and v in by_vm]
    if not others:
        return None
    return max(others, key=lambda v: (report.verdicts[v].matches, v))


def capture_evidence(report: PoolReport, parsed: list[ParsedModule], *,
                     events: EventLog | NullEventLog = NULL_EVENTS,
                     check_id: str | None = None,
                     captured_at: float = 0.0,
                     bundle_id: str = "incident-0001",
                     max_hunks_per_region: int = 64) -> EvidenceBundle:
    """Build the evidence bundle for a non-clean ``report``.

    ``parsed`` are the same module copies the checker voted on; the
    diff therefore explains the very bytes that produced the verdict.
    """
    by_vm = {p.vm_name: p for p in parsed}
    check_id = check_id or (events.current_check or None)
    suspects: list[SuspectEvidence] = []
    for vm_name in sorted(report.flagged()):
        verdict = report.verdicts[vm_name]
        suspect_mod = by_vm.get(vm_name)
        ref_vm = _pick_reference(report, vm_name, by_vm)
        diffs: list[RegionDiff] = []
        layout: list[dict] = []
        base = ref_base = 0
        if suspect_mod is not None:
            layout = _pe_layout(suspect_mod)
            base = suspect_mod.base
        if suspect_mod is not None and ref_vm is not None:
            ref_mod = by_vm[ref_vm]
            ref_base = ref_mod.base
            diffs = diff_modules(suspect_mod, ref_mod,
                                 max_hunks_per_region=max_hunks_per_region)
        suspects.append(SuspectEvidence(
            vm_name=vm_name, verdict=verdict, reference_vm=ref_vm,
            base=base, reference_base=ref_base, pe_layout=layout,
            region_diffs=diffs))
    matrix = [{"vm_a": p.vm_a, "vm_b": p.vm_b, "matched": p.matched,
               "mismatched_regions": list(p.mismatched_regions)}
              for p in report.pairs]
    timeline = events.by_check(check_id) if check_id else []
    return EvidenceBundle(
        bundle_id=bundle_id, module_name=report.module_name,
        captured_at=captured_at, check_id=check_id,
        vm_names=list(report.vm_names), flagged=sorted(report.flagged()),
        degraded=dict(report.degraded), verdicts=dict(report.verdicts),
        voting_matrix=matrix, suspects=suspects, timeline=timeline)


class EvidenceRecorder:
    """Retention policy around :func:`capture_evidence`.

    Keeps the last ``max_bundles`` bundles in memory and, when
    ``out_dir`` is set, writes each to a deterministically named JSON
    file (``incident-NNNN-<check_id>.json``). ``captures`` counts every
    bundle ever recorded — the counter the off-hot-path tests assert
    stays at zero for clean pools.
    """

    def __init__(self, *, out_dir: str | Path | None = None,
                 max_bundles: int = 64,
                 max_hunks_per_region: int = 64) -> None:
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.max_hunks_per_region = max_hunks_per_region
        self.bundles: deque[EvidenceBundle] = deque(maxlen=max_bundles)
        self.captures = 0

    def record(self, report: PoolReport, parsed: list[ParsedModule], *,
               events: EventLog | NullEventLog = NULL_EVENTS,
               check_id: str | None = None,
               captured_at: float = 0.0) -> EvidenceBundle:
        """Capture (and optionally persist) one incident's evidence."""
        self.captures += 1
        bundle = capture_evidence(
            report, parsed, events=events, check_id=check_id,
            captured_at=captured_at,
            bundle_id=f"incident-{self.captures:04d}",
            max_hunks_per_region=self.max_hunks_per_region)
        self.bundles.append(bundle)
        if self.out_dir is not None:
            self._persist(bundle)
        return bundle

    def attach_remediations(self, bundle: EvidenceBundle,
                            records: list) -> None:
        """Attach the repair engine's terminal records to an incident.

        Remediation necessarily happens *after* capture (the bundle
        freezes the tampered state the repair engine then acts on), so
        the records are grafted on and the persisted file — same
        deterministic name — is rewritten to include them.
        """
        bundle.remediations = list(records)
        if self.out_dir is not None:
            self._persist(bundle)

    def _persist(self, bundle: EvidenceBundle) -> None:
        from .bundle import write_bundle
        stem = bundle.bundle_id + (f"-{bundle.check_id}"
                                   if bundle.check_id else "")
        write_bundle(bundle, self.out_dir / f"{stem}.json")

    @property
    def last(self) -> EvidenceBundle | None:
        return self.bundles[-1] if self.bundles else None
