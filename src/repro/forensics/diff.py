"""Byte-diff hunks between two module copies, relocation-aware.

The integrity checker only says *that* a region's hash mismatched; an
incident responder needs *which bytes* differed and *why*. Two clean
copies of the same module loaded at different bases legitimately differ
at every 32-bit slot the loader rebased, so a naive byte diff of a code
section is all noise. This module reuses the acceptance rule of the RVA
reverser (:mod:`repro.core.rva`, the paper's Algorithm 2) to classify
every difference window:

* **relocation** — a 4-byte slot where both sides decode to the *same,
  plausible* RVA (``absolute - base`` agrees); the decoded RVA is kept
  in the hunk, restoring the paper's Fig. 4 story byte by byte;
* **tamper** — a difference no candidate address slot can explain: the
  attacker's actual edit, reported with offset, length and the
  before/after bytes;
* **structural** — the region exists on only one side, or the two
  copies disagree on its size (e.g. an injected section).

The scan mirrors :func:`repro.core.rva.adjust_rva_robust` exactly
(candidate windows, rewrite-then-continue), so a clean pair at
different bases yields *zero* tamper hunks — the invariant the
clean-pool acceptance test pins down — and the per-region
:class:`~repro.core.rva.RvaAdjustStats` agree with what the checker saw.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.parser import ParsedModule
from ..core.rva import RvaAdjustStats

__all__ = ["HUNK_BYTE_CAP", "DiffHunk", "RegionDiff", "diff_region_pair",
           "diff_modules"]

#: Per-hunk cap on captured before/after bytes, keeping bundles bounded
#: even when an attacker rewrites a whole section.
HUNK_BYTE_CAP = 64

_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class DiffHunk:
    """One contiguous difference between two copies of a region.

    ``offset`` is relative to the region start; ``suspect_bytes`` /
    ``reference_bytes`` carry at most :data:`HUNK_BYTE_CAP` bytes each
    (``truncated`` marks a capped capture, ``length`` is always the
    true extent). ``rva`` is the decoded relative virtual address for
    relocation-explained hunks.
    """

    region: str
    offset: int
    length: int
    kind: str                    # "relocation" | "tamper" | "structural"
    suspect_bytes: bytes
    reference_bytes: bytes
    rva: int | None = None
    truncated: bool = False

    @property
    def explained(self) -> bool:
        """True when relocation fully accounts for this difference."""
        return self.kind == "relocation"


@dataclass
class RegionDiff:
    """All hunks of one region, plus the reverser's outcome counters."""

    region: str
    hunks: list[DiffHunk] = field(default_factory=list)
    rva_stats: RvaAdjustStats | None = None
    #: unexplained hunks dropped beyond the per-region cap
    dropped_hunks: int = 0
    #: relocation hunks dropped beyond the cap (informational: the
    #: slot total survives in ``rva_stats.replaced``)
    dropped_relocations: int = 0

    @property
    def unexplained(self) -> list[DiffHunk]:
        return [h for h in self.hunks if h.kind != "relocation"]

    @property
    def clean(self) -> bool:
        """True when every difference is relocation-explained."""
        return not self.unexplained and self.dropped_hunks == 0


def _capped(data: bytes) -> tuple[bytes, bool]:
    if len(data) > HUNK_BYTE_CAP:
        return data[:HUNK_BYTE_CAP], True
    return data, False


def _make_hunk(region: str, offset: int, suspect: bytes, reference: bytes,
               kind: str, rva: int | None = None) -> DiffHunk:
    s, s_trunc = _capped(suspect)
    r, r_trunc = _capped(reference)
    return DiffHunk(region=region, offset=offset,
                    length=max(len(suspect), len(reference)), kind=kind,
                    suspect_bytes=s, reference_bytes=r, rva=rva,
                    truncated=s_trunc or r_trunc)


class _HunkSink:
    """Collects hunks up to per-kind caps, counting the overflow.

    Relocation and unexplained hunks are capped *separately*: a heavily
    relocated section (hundreds of legitimate slots) must never crowd
    the tamper evidence out of the bundle.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.hunks: list[DiffHunk] = []
        self._relocs = 0
        self._others = 0
        self.dropped = 0
        self.dropped_relocations = 0

    def add(self, hunk: DiffHunk) -> None:
        if hunk.kind == "relocation":
            if self._relocs < self.limit:
                self._relocs += 1
                self.hunks.append(hunk)
            else:
                self.dropped_relocations += 1
        elif self._others < self.limit:
            self._others += 1
            self.hunks.append(hunk)
        else:
            self.dropped += 1


def _try_slot(out_s: bytearray, out_r: bytearray, j: int, base_s: int,
              base_r: int, limit: int) -> tuple[int, int] | None:
    """Robust-rule candidate search around difference position ``j``.

    Returns ``(slot_start, rva)`` and rewrites both buffers to the RVA
    (exactly like the robust adjuster, so later scans see adjusted
    content), or ``None`` when no candidate explains the difference.
    """
    n = len(out_s)
    for start in range(max(0, j - 3), min(j, n - 4) + 1):
        abs_s = _U32.unpack_from(out_s, start)[0]
        abs_r = _U32.unpack_from(out_r, start)[0]
        rva_s = (abs_s - base_s) & 0xFFFFFFFF
        rva_r = (abs_r - base_r) & 0xFFFFFFFF
        if rva_s == rva_r and rva_s < limit:
            _U32.pack_into(out_s, start, rva_s)
            _U32.pack_into(out_r, start, rva_r)
            return start, rva_s
    return None


def _diff_raw(region: str, data_s: bytes, data_r: bytes,
              sink: _HunkSink) -> None:
    """Grouped plain byte diff — every difference is tamper."""
    j, n = 0, len(data_s)
    while j < n:
        if data_s[j] == data_r[j]:
            j += 1
            continue
        k = j
        while k < n and data_s[k] != data_r[k]:
            k += 1
        sink.add(_make_hunk(region, j, data_s[j:k], data_r[j:k],
                            "tamper"))
        j = k


def _diff_relocatable(region: str, data_s: bytes, base_s: int,
                      data_r: bytes, base_r: int, limit: int,
                      sink: _HunkSink) -> RvaAdjustStats:
    """Robust-reverser scan producing classified hunks + its counters."""
    out_s, out_r = bytearray(data_s), bytearray(data_r)
    stats = RvaAdjustStats()
    tamper_start: int | None = None

    def flush_tamper(end: int) -> None:
        nonlocal tamper_start
        if tamper_start is not None:
            sink.add(_make_hunk(region, tamper_start,
                                data_s[tamper_start:end],
                                data_r[tamper_start:end], "tamper"))
            tamper_start = None

    j, n = 0, len(out_s)
    while j < n:
        if out_s[j] == out_r[j]:
            flush_tamper(j)
            j += 1
            continue
        stats.windows += 1
        found = _try_slot(out_s, out_r, j, base_s, base_r, limit)
        if found is None:
            stats.unresolved += 1
            if tamper_start is None:
                tamper_start = j
            j += 1
            continue
        flush_tamper(j)
        start, rva = found
        stats.replaced += 1
        sink.add(_make_hunk(region, start, data_s[start:start + 4],
                            data_r[start:start + 4], "relocation",
                            rva=rva))
        j = start + 4
    flush_tamper(n)
    return stats


def diff_region_pair(region: str, data_s: bytes, base_s: int,
                     data_r: bytes, base_r: int, *,
                     relocatable: bool = True,
                     max_rva: int | None = None,
                     max_hunks: int = 64) -> RegionDiff:
    """Diff one region's two copies into classified hunks.

    ``relocatable`` is True for code sections (the loader rebases
    them); header regions are base-independent, so every difference
    there is tamper by definition. Copies of unequal size get a
    structural hunk for the tail plus a normal diff of the overlap.
    """
    sink = _HunkSink(max_hunks)
    stats: RvaAdjustStats | None = None
    overlap = min(len(data_s), len(data_r))
    if relocatable and base_s != base_r and overlap >= 4:
        limit = max_rva if max_rva is not None else max(overlap * 16,
                                                        1 << 20)
        stats = _diff_relocatable(region, data_s[:overlap], base_s,
                                  data_r[:overlap], base_r, limit, sink)
    else:
        _diff_raw(region, data_s[:overlap], data_r[:overlap], sink)
    if len(data_s) != len(data_r):
        sink.add(_make_hunk(region, overlap, data_s[overlap:],
                            data_r[overlap:], "structural"))
    return RegionDiff(region=region, hunks=sink.hunks, rva_stats=stats,
                      dropped_hunks=sink.dropped,
                      dropped_relocations=sink.dropped_relocations)


def diff_modules(suspect: ParsedModule, reference: ParsedModule, *,
                 max_hunks_per_region: int = 64) -> list[RegionDiff]:
    """Region-by-region forensic diff of a suspect vs a reference copy.

    Walks the union of both copies' regions in the suspect's layout
    order: header regions diff raw (base-independent), code regions
    through the relocation reverser. A region present on only one side
    becomes a single structural hunk — the E4 injected-section
    signature. Regions whose copies are identical are omitted.
    """
    max_rva = max(len(suspect.image), len(reference.image))

    def side(mod: ParsedModule) -> dict[str, tuple[bytes, bool]]:
        table: dict[str, tuple[bytes, bool]] = {}
        for r in mod.header_regions:
            table[r.name] = (mod.region_bytes(r), False)
        for r in mod.code_regions:
            table[r.name] = (mod.region_bytes(r), True)
        return table

    table_s, table_r = side(suspect), side(reference)
    order = list(dict.fromkeys(suspect.region_names()
                               + reference.region_names()))
    diffs: list[RegionDiff] = []
    for name in order:
        in_s, in_r = table_s.get(name), table_r.get(name)
        if in_s is None or in_r is None:
            data = (in_s or in_r)[0]
            hunk = _make_hunk(name, 0, data if in_s else b"",
                              data if in_r else b"", "structural")
            diffs.append(RegionDiff(region=name, hunks=[hunk]))
            continue
        (data_s, relocatable), (data_r, _) = in_s, in_r
        region_diff = diff_region_pair(
            name, data_s, suspect.base, data_r, reference.base,
            relocatable=relocatable, max_rva=max_rva,
            max_hunks=max_hunks_per_region)
        if (region_diff.hunks or region_diff.dropped_hunks
                or region_diff.dropped_relocations):
            diffs.append(region_diff)
    return diffs
