"""Forensic evidence: byte-level diffs, evidence bundles, incident reports.

The paper's results are fundamentally forensic — E4 reports exactly
*which* PE components mismatched — but an alert alone carries only
region names. This package closes the loop from "alert fired" to "here
is the reviewable incident record":

* :mod:`repro.forensics.diff` — per-region byte-diff hunks between a
  suspect module copy and a majority representative, each hunk
  classified by the RVA reverser as *relocation-explained* or
  *unexplained tamper*;
* :mod:`repro.forensics.evidence` — :class:`EvidenceBundle` capture
  (voting matrix, hunks, PE layout, correlated event timeline) when a
  pool check's verdict is non-clean, via :class:`EvidenceRecorder`;
* :mod:`repro.forensics.bundle` — deterministic JSON serialisation and
  the human-readable incident report behind ``modchecker explain``.
"""

from .bundle import (bundle_from_dict, bundle_to_dict, load_bundle,
                     render_incident_report, write_bundle)
from .diff import DiffHunk, RegionDiff, diff_modules, diff_region_pair
from .evidence import (EvidenceBundle, EvidenceRecorder, SuspectEvidence,
                       capture_evidence)

__all__ = [
    "DiffHunk", "RegionDiff", "diff_modules", "diff_region_pair",
    "EvidenceBundle", "EvidenceRecorder", "SuspectEvidence",
    "capture_evidence",
    "bundle_to_dict", "bundle_from_dict", "write_bundle", "load_bundle",
    "render_incident_report",
]
