"""Evidence-bundle serialisation and the human-readable incident report.

Bundles round-trip through plain JSON: ``bundle_to_dict`` /
``bundle_from_dict`` are exact inverses (bytes travel as lowercase hex,
every mapping is emitted with sorted keys), so for a fixed scenario
seed two runs serialise to byte-identical files — the determinism the
acceptance tests pin down. ``render_incident_report`` is the text form
behind ``modchecker explain``: the verdict table, the voting matrix,
per-suspect hunks with before/after bytes, and the correlated event
timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.report import VMVerdict
from ..core.rva import RvaAdjustStats
from ..obs.events import Event
from .diff import DiffHunk, RegionDiff
from .evidence import EvidenceBundle, SuspectEvidence

__all__ = ["BUNDLE_FORMAT", "bundle_to_dict", "bundle_from_dict",
           "write_bundle", "load_bundle", "render_incident_report"]

#: Schema tag written into every bundle file.
BUNDLE_FORMAT = "modchecker-evidence/1"


# -- serialisation ---------------------------------------------------------

def _hunk_to_dict(h: DiffHunk) -> dict:
    doc: dict[str, object] = {
        "region": h.region, "offset": h.offset, "length": h.length,
        "kind": h.kind, "suspect_bytes": h.suspect_bytes.hex(),
        "reference_bytes": h.reference_bytes.hex(),
    }
    if h.rva is not None:
        doc["rva"] = h.rva
    if h.truncated:
        doc["truncated"] = True
    return doc


def _hunk_from_dict(doc: dict) -> DiffHunk:
    return DiffHunk(
        region=doc["region"], offset=doc["offset"], length=doc["length"],
        kind=doc["kind"], suspect_bytes=bytes.fromhex(doc["suspect_bytes"]),
        reference_bytes=bytes.fromhex(doc["reference_bytes"]),
        rva=doc.get("rva"), truncated=doc.get("truncated", False))


def _region_diff_to_dict(d: RegionDiff) -> dict:
    doc: dict[str, object] = {
        "region": d.region,
        "hunks": [_hunk_to_dict(h) for h in d.hunks],
    }
    if d.rva_stats is not None:
        doc["rva_stats"] = {"replaced": d.rva_stats.replaced,
                            "unresolved": d.rva_stats.unresolved,
                            "windows": d.rva_stats.windows}
    if d.dropped_hunks:
        doc["dropped_hunks"] = d.dropped_hunks
    if d.dropped_relocations:
        doc["dropped_relocations"] = d.dropped_relocations
    return doc


def _region_diff_from_dict(doc: dict) -> RegionDiff:
    stats = None
    if "rva_stats" in doc:
        s = doc["rva_stats"]
        stats = RvaAdjustStats(replaced=s["replaced"],
                               unresolved=s["unresolved"],
                               windows=s["windows"])
    return RegionDiff(region=doc["region"],
                      hunks=[_hunk_from_dict(h) for h in doc["hunks"]],
                      rva_stats=stats,
                      dropped_hunks=doc.get("dropped_hunks", 0),
                      dropped_relocations=doc.get("dropped_relocations", 0))


def _verdict_to_dict(v: VMVerdict) -> dict:
    return {"vm_name": v.vm_name, "matches": v.matches,
            "comparisons": v.comparisons, "clean": v.clean,
            "mismatched_regions": list(v.mismatched_regions)}


def _verdict_from_dict(doc: dict) -> VMVerdict:
    return VMVerdict(vm_name=doc["vm_name"], matches=doc["matches"],
                     comparisons=doc["comparisons"], clean=doc["clean"],
                     mismatched_regions=tuple(doc["mismatched_regions"]))


def _suspect_to_dict(s: SuspectEvidence) -> dict:
    return {"vm_name": s.vm_name, "verdict": _verdict_to_dict(s.verdict),
            "reference_vm": s.reference_vm, "base": s.base,
            "reference_base": s.reference_base, "pe_layout": s.pe_layout,
            "region_diffs": [_region_diff_to_dict(d)
                             for d in s.region_diffs]}


def _suspect_from_dict(doc: dict) -> SuspectEvidence:
    return SuspectEvidence(
        vm_name=doc["vm_name"], verdict=_verdict_from_dict(doc["verdict"]),
        reference_vm=doc["reference_vm"], base=doc["base"],
        reference_base=doc["reference_base"], pe_layout=doc["pe_layout"],
        region_diffs=[_region_diff_from_dict(d)
                      for d in doc["region_diffs"]])


def _event_to_dict(e: Event) -> dict:
    return e.to_dict()


def _event_from_dict(doc: dict) -> Event:
    return Event(time=doc["t"], seq=doc["seq"], name=doc["event"],
                 check_id=doc.get("check_id"), attrs=doc.get("attrs", {}))


def bundle_to_dict(bundle: EvidenceBundle) -> dict:
    """The bundle as a JSON-ready dict (bytes as hex, stable shapes).

    The ``remediations`` key is emitted only when the repair engine
    attached records, so detect-only bundles — including every golden
    file that predates the repair subsystem — keep their exact shape.
    """
    doc = {
        "format": BUNDLE_FORMAT,
        "bundle_id": bundle.bundle_id,
        "module_name": bundle.module_name,
        "captured_at": bundle.captured_at,
        "check_id": bundle.check_id,
        "vm_names": list(bundle.vm_names),
        "flagged": list(bundle.flagged),
        "degraded": dict(bundle.degraded),
        "verdicts": {vm: _verdict_to_dict(v)
                     for vm, v in sorted(bundle.verdicts.items())},
        "voting_matrix": bundle.voting_matrix,
        "suspects": [_suspect_to_dict(s) for s in bundle.suspects],
        "timeline": [_event_to_dict(e) for e in bundle.timeline],
    }
    if bundle.remediations:
        doc["remediations"] = [r.to_dict() for r in bundle.remediations]
    return doc


def bundle_from_dict(doc: dict) -> EvidenceBundle:
    """Inverse of :func:`bundle_to_dict`."""
    # Imported here, not at module top: repro.core.repair itself uses
    # the forensic differ, and a top-level import would be circular.
    from ..core.repair import RemediationRecord
    fmt = doc.get("format")
    if fmt != BUNDLE_FORMAT:
        raise ValueError(f"unsupported bundle format {fmt!r}; "
                         f"expected {BUNDLE_FORMAT!r}")
    return EvidenceBundle(
        bundle_id=doc["bundle_id"], module_name=doc["module_name"],
        captured_at=doc["captured_at"], check_id=doc["check_id"],
        vm_names=list(doc["vm_names"]), flagged=list(doc["flagged"]),
        degraded=dict(doc["degraded"]),
        verdicts={vm: _verdict_from_dict(v)
                  for vm, v in doc["verdicts"].items()},
        voting_matrix=list(doc["voting_matrix"]),
        suspects=[_suspect_from_dict(s) for s in doc["suspects"]],
        timeline=[_event_from_dict(e) for e in doc["timeline"]],
        remediations=[RemediationRecord.from_dict(r)
                      for r in doc.get("remediations", [])])


def write_bundle(bundle: EvidenceBundle, path: str | Path) -> Path:
    """Persist a bundle as deterministic, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle_to_dict(bundle), sort_keys=True,
                               indent=2) + "\n")
    return path


def load_bundle(path: str | Path) -> EvidenceBundle:
    """Read a bundle previously written by :func:`write_bundle`."""
    return bundle_from_dict(json.loads(Path(path).read_text()))


# -- rendering -------------------------------------------------------------

def _hex(data: bytes) -> str:
    return data.hex() or "(absent)"


def _render_suspect(s: SuspectEvidence, lines: list[str]) -> None:
    v = s.verdict
    lines.append(f"Suspect {s.vm_name} — {v.matches}/{v.comparisons} "
                 f"matches (majority vote: FAIL)")
    if s.reference_vm is None:
        lines.append("  no reference copy available "
                     "(suspect's copy could not be acquired "
                     "or pool had no counterpart)")
        return
    lines.append(f"  compared against {s.reference_vm} "
                 f"(suspect base 0x{s.base:x}, "
                 f"reference base 0x{s.reference_base:x})")
    if v.mismatched_regions:
        lines.append("  mismatched components: "
                     + ", ".join(v.mismatched_regions))
    if s.pe_layout:
        lines.append("  PE layout:")
        for region in s.pe_layout:
            lines.append(f"    {region['name']:<24} {region['kind']:<6} "
                         f"[0x{region['start']:06x}, 0x{region['end']:06x})"
                         f"  {region['size']} bytes")
    tampered = s.tampered_regions()
    lines.append(f"  verdict: {s.unexplained_hunks} unexplained hunk(s)"
                 + (f" in {', '.join(tampered)}" if tampered else ""))
    for diff in s.region_diffs:
        relocs = [h for h in diff.hunks if h.kind == "relocation"]
        stats = diff.rva_stats
        summary = (f" ({stats.replaced} slot(s) relocation-explained, "
                   f"{stats.unresolved} byte(s) unresolved)"
                   if stats is not None else "")
        lines.append(f"  region {diff.region}: "
                     f"{len(diff.unexplained)} unexplained, "
                     f"{len(relocs)} relocation hunk(s){summary}")
        for h in diff.unexplained:
            cap = " [truncated]" if h.truncated else ""
            lines.append(f"    {h.kind.upper():<10} +0x{h.offset:06x} "
                         f"len={h.length}{cap}")
            lines.append(f"      suspect:   {_hex(h.suspect_bytes)}")
            lines.append(f"      reference: {_hex(h.reference_bytes)}")
        for h in relocs[:4]:
            lines.append(f"    relocation +0x{h.offset:06x} "
                         f"abs {_hex(h.suspect_bytes)} vs "
                         f"{_hex(h.reference_bytes)} -> rva 0x{h.rva:x}")
        if len(relocs) > 4:
            lines.append(f"    ... and {len(relocs) - 4} more "
                         f"relocation slot(s)")
        if diff.dropped_hunks:
            lines.append(f"    ({diff.dropped_hunks} unexplained hunk(s) "
                         f"beyond the per-region cap not captured)")
        if diff.dropped_relocations:
            lines.append(f"    ({diff.dropped_relocations} further "
                         f"relocation slot(s) not captured; totals in "
                         f"rva_stats)")


def render_incident_report(bundle: EvidenceBundle) -> str:
    """The ``modchecker explain`` text: one reviewable incident record."""
    lines: list[str] = []
    lines.append("=" * 64)
    lines.append(f"INCIDENT {bundle.bundle_id} — module "
                 f"{bundle.module_name!r}")
    lines.append("=" * 64)
    lines.append(f"check_id:    {bundle.check_id or '(none)'}")
    lines.append(f"sim time:    t={bundle.captured_at:.6f}s")
    lines.append(f"pool:        {', '.join(bundle.vm_names)}")
    lines.append(f"flagged:     {', '.join(bundle.flagged) or '(none)'}")
    if bundle.degraded:
        lines.append("degraded:    "
                     + "; ".join(f"{vm}: {why}" for vm, why
                                 in sorted(bundle.degraded.items())))
    lines.append("")
    lines.append("Verdicts")
    for vm in sorted(bundle.verdicts):
        v = bundle.verdicts[vm]
        state = "clean" if v.clean else "FLAGGED"
        lines.append(f"  {vm:<12} {v.matches}/{v.comparisons} matches  "
                     f"{state}")
    lines.append("")
    lines.append("Voting matrix")
    for row in bundle.voting_matrix:
        mark = "match   " if row["matched"] else "MISMATCH"
        regions = (" [" + ", ".join(row["mismatched_regions"]) + "]"
                   if row["mismatched_regions"] else "")
        lines.append(f"  {row['vm_a']:<12} ~ {row['vm_b']:<12} "
                     f"{mark}{regions}")
    for suspect in bundle.suspects:
        lines.append("")
        _render_suspect(suspect, lines)
    lines.append("")
    if bundle.timeline:
        lines.append(f"Correlated timeline ({len(bundle.timeline)} "
                     f"event(s), check {bundle.check_id})")
        for e in bundle.timeline:
            attrs = " ".join(f"{k}={e.attrs[k]}" for k in sorted(e.attrs))
            lines.append(f"  t={e.time:>12.6f}  {e.name:<20} {attrs}")
    else:
        lines.append("Correlated timeline: (no audit events captured)")
    if bundle.remediations:
        lines.append("")
        lines.append("Remediation")
        for r in bundle.remediations:
            ref = f" from {r.reference_vm}" if r.reference_vm else ""
            lines.append(f"  {r.vm_name:<12} {r.status.upper():<12} "
                         f"attempt(s)={r.attempts} "
                         f"hunks={r.hunks_written} "
                         f"bytes={r.bytes_written} "
                         f"raced={r.raced_writes}{ref}")
            if r.mttr is not None:
                lines.append(f"    verified clean after {r.mttr:.6f}s "
                             f"(detect -> verified, simulated clock)")
            if r.reason:
                lines.append(f"    reason: {r.reason}")
    lines.append("")
    verdict = ("TAMPER CONFIRMED: "
               f"{bundle.unexplained_hunks} unexplained hunk(s)"
               if bundle.unexplained_hunks
               else "no unexplained byte differences "
                    "(all diffs relocation-explained)")
    lines.append(f"Conclusion: {verdict}")
    return "\n".join(lines) + "\n"
