"""Simulated guest physical memory.

A guest's RAM is a sparse set of 4 KiB page frames, each a
``numpy.uint8`` array allocated on first touch. Sparseness matters: the
paper's testbed runs 15 guests, and only the frames holding kernel
structures, page tables and loaded modules are ever touched, so a full
flat allocation per guest would waste hundreds of megabytes (guide
rule: be easy on the memory).

All cross-page reads/writes are chunked per frame; callers that need a
page at a time (libvmi's access pattern, see paper §V-C: "Module-Searcher
has to access the memory by pages") use :meth:`read_frame`.
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicalAddressError

__all__ = ["PAGE_SIZE", "PhysicalMemory", "FrameAllocator"]

PAGE_SIZE = 0x1000
PAGE_SHIFT = 12


class PhysicalMemory:
    """Sparse byte-addressable physical memory of one guest."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_SIZE:
            raise ValueError("size must be a positive multiple of 4 KiB")
        self.size = size_bytes
        self.n_frames = size_bytes // PAGE_SIZE
        self._frames: dict[int, np.ndarray] = {}
        #: Optional ``(frame_no, offset, length)`` callback fired before
        #: any mutation of a frame — the hook the hypervisor uses to
        #: model EPT write-protection traps. Memory knows nothing about
        #: domains; whoever installs the observer does the filtering.
        self.write_observer = None

    # -- frame-level access -----------------------------------------------------

    def _frame(self, frame_no: int, *, create: bool) -> np.ndarray | None:
        if not (0 <= frame_no < self.n_frames):
            raise PhysicalAddressError(
                f"frame {frame_no:#x} beyond installed memory "
                f"({self.n_frames:#x} frames)")
        frame = self._frames.get(frame_no)
        if frame is None and create:
            frame = np.zeros(PAGE_SIZE, dtype=np.uint8)
            self._frames[frame_no] = frame
        return frame

    def read_frame(self, frame_no: int) -> bytes:
        """Whole-page read; untouched frames read as zeros."""
        frame = self._frame(frame_no, create=False)
        return bytes(PAGE_SIZE) if frame is None else frame.tobytes()

    def frame_view(self, frame_no: int) -> np.ndarray:
        """Writable numpy view of one frame (allocating it).

        The view escapes the observer hook, so handing one out counts
        as a conservative whole-frame write: the caller *may* mutate
        any byte and write-protection must assume it did.
        """
        if self.write_observer is not None:
            self.write_observer(frame_no, 0, PAGE_SIZE)
        frame = self._frame(frame_no, create=True)
        assert frame is not None
        return frame

    def gather_frames(self, frame_nos) -> np.ndarray:
        """Copy many frames into one ``(n, PAGE_SIZE)`` uint8 matrix.

        The batched-acquisition primitive: one bounds check over the
        whole request, then one numpy row-copy per frame (untouched
        frames read as zeros), with no intermediate ``bytes`` objects.
        Duplicate frame numbers are allowed and copied once per
        occurrence, mirroring a per-page read loop.
        """
        fnos = np.asarray(frame_nos, dtype=np.int64)
        if fnos.ndim != 1:
            raise ValueError("frame_nos must be one-dimensional")
        if fnos.size and (int(fnos.min()) < 0
                          or int(fnos.max()) >= self.n_frames):
            bad = int(fnos[(fnos < 0) | (fnos >= self.n_frames)][0])
            raise PhysicalAddressError(
                f"frame {bad:#x} beyond installed memory "
                f"({self.n_frames:#x} frames)")
        out = np.zeros((fnos.size, PAGE_SIZE), dtype=np.uint8)
        frames = self._frames
        for i, frame_no in enumerate(fnos.tolist()):
            frame = frames.get(frame_no)
            if frame is not None:
                out[i] = frame
        return out

    # -- byte-level access ---------------------------------------------------------

    def read(self, paddr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical address ``paddr``."""
        if paddr < 0 or length < 0 or paddr + length > self.size:
            raise PhysicalAddressError(
                f"read [{paddr:#x}, {paddr + length:#x}) outside memory")
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = paddr + pos
            frame_no, offset = addr >> PAGE_SHIFT, addr & (PAGE_SIZE - 1)
            n = min(PAGE_SIZE - offset, length - pos)
            frame = self._frame(frame_no, create=False)
            if frame is not None:
                out[pos:pos + n] = frame[offset:offset + n].tobytes()
            pos += n
        return bytes(out)

    def read_into(self, paddr: int, out) -> None:
        """Read ``len(out)`` bytes at ``paddr`` straight into ``out``.

        ``out`` is any writable buffer (a ``memoryview`` slice of the
        caller's output array, typically): frame contents are copied in
        with numpy slice assignment, so no intermediate ``bytes`` object
        is ever materialised — the allocation-free twin of :meth:`read`.
        """
        view = np.frombuffer(out, dtype=np.uint8)
        length = view.size
        if paddr < 0 or paddr + length > self.size:
            raise PhysicalAddressError(
                f"read [{paddr:#x}, {paddr + length:#x}) outside memory")
        pos = 0
        while pos < length:
            addr = paddr + pos
            frame_no, offset = addr >> PAGE_SHIFT, addr & (PAGE_SIZE - 1)
            n = min(PAGE_SIZE - offset, length - pos)
            frame = self._frame(frame_no, create=False)
            view[pos:pos + n] = 0 if frame is None \
                else frame[offset:offset + n]
            pos += n

    def write(self, paddr: int, data: bytes) -> None:
        """Write ``data`` at physical address ``paddr``."""
        length = len(data)
        if paddr < 0 or paddr + length > self.size:
            raise PhysicalAddressError(
                f"write [{paddr:#x}, {paddr + length:#x}) outside memory")
        view = memoryview(data)
        pos = 0
        while pos < length:
            addr = paddr + pos
            frame_no, offset = addr >> PAGE_SHIFT, addr & (PAGE_SIZE - 1)
            n = min(PAGE_SIZE - offset, length - pos)
            if self.write_observer is not None:
                self.write_observer(frame_no, offset, n)
            frame = self._frame(frame_no, create=True)
            assert frame is not None
            frame[offset:offset + n] = np.frombuffer(view[pos:pos + n],
                                                     dtype=np.uint8)
            pos += n

    # -- stats ------------------------------------------------------------------------

    @property
    def frames_touched(self) -> int:
        """Number of frames actually materialised."""
        return len(self._frames)

    def resident_bytes(self) -> int:
        return self.frames_touched * PAGE_SIZE


class FrameAllocator:
    """Bump allocator for free physical frames.

    ``reserve_low`` frames are kept for firmware/kernel fixed structures
    (mirroring how real kernels avoid low memory). Frames are never
    freed — guests in this simulation only ever load modules.
    """

    def __init__(self, memory: PhysicalMemory, reserve_low: int = 16) -> None:
        self.memory = memory
        self._next = reserve_low

    def alloc(self, n_frames: int = 1) -> int:
        """Allocate ``n_frames`` contiguous frames; return first frame no."""
        if n_frames <= 0:
            raise ValueError("n_frames must be positive")
        if self._next + n_frames > self.memory.n_frames:
            raise PhysicalAddressError("out of physical frames")
        first = self._next
        self._next += n_frames
        return first

    @property
    def frames_used(self) -> int:
        return self._next
