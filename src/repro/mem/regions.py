"""Named virtual-address region bookkeeping.

Purely diagnostic: the guest kernel records what it put where so tests
and examples can assert layout properties without re-parsing guest
memory. ModChecker itself never reads this map — it must find
everything through introspection.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Region", "RegionMap"]


@dataclass(frozen=True)
class Region:
    """A named [base, base+size) VA range."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, vaddr: int) -> bool:
        return self.base <= vaddr < self.end


class RegionMap:
    """Ordered collection of non-overlapping named regions."""

    def __init__(self) -> None:
        self._regions: list[Region] = []

    def add(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, size)
        for other in self._regions:
            if region.base < other.end and other.base < region.end:
                raise ValueError(
                    f"region {name!r} [{base:#x},{region.end:#x}) overlaps "
                    f"{other.name!r} [{other.base:#x},{other.end:#x})")
        self._regions.append(region)
        return region

    def find(self, vaddr: int) -> Region | None:
        """The region containing ``vaddr``, or None."""
        for region in self._regions:
            if region.contains(vaddr):
                return region
        return None

    def by_name(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def __iter__(self):
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
