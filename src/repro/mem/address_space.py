"""Kernel virtual address space management for a simulated guest.

XP's kernel lives in the upper 2 GiB (``0x80000000``-up). This module
provides the guest kernel with a VA allocator plus read/write access
through its own page tables, and records every allocation in a
:class:`~repro.mem.regions.RegionMap` for debugging and tests.

Module load addresses are *randomised per guest* within the driver
area: that is the property (different base per VM) that forces
ModChecker's RVA adjustment. Windows XP wasn't ASLR'd, but the system
pool allocator still placed each VM's drivers at whatever address the
boot-time allocation order produced; clones diverge as soon as their
allocation histories do, and the paper's Fig. 4 shows two clones with
different bases. We model that divergence directly with a per-VM seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import AddressSpaceExhausted
from ..rng import make_rng
from .paging import PageTableBuilder
from .physical import PAGE_SIZE, FrameAllocator, PhysicalMemory
from .regions import RegionMap

__all__ = ["KERNEL_BASE", "DRIVER_AREA_BASE", "DRIVER_AREA_END",
           "KernelAddressSpace"]

KERNEL_BASE = 0x8000_0000
#: XP loads boot drivers around 0x804d7000+ and system drivers in the
#: 0xF...... system PTE area; we use one simplified driver arena.
DRIVER_AREA_BASE = 0xF700_0000
DRIVER_AREA_END = 0xFA00_0000


class KernelAddressSpace:
    """One guest's kernel address space: allocator + page tables."""

    def __init__(self, memory: PhysicalMemory, *, seed: int | None = None,
                 randomize_module_bases: bool = True) -> None:
        self.memory = memory
        self.frame_allocator = FrameAllocator(memory)
        self.page_tables = PageTableBuilder(memory, self.frame_allocator)
        self.regions = RegionMap()
        self._fixed_cursor = KERNEL_BASE
        self._driver_cursor = DRIVER_AREA_BASE
        self._rng = make_rng(seed)
        self._randomize = randomize_module_bases

    @property
    def cr3(self) -> int:
        return self.page_tables.cr3

    # -- allocation -------------------------------------------------------------

    def alloc_fixed(self, size: int, name: str) -> int:
        """Allocate kernel VA space in the low kernel area (structures)."""
        return self._alloc(size, name, area="fixed")

    def alloc_driver_image(self, size: int, name: str) -> int:
        """Allocate VA space for a module image in the driver arena.

        With randomisation on, a random page-aligned gap (0–255 pages)
        precedes each image, so clones of the same guest diverge in
        their module bases — the cross-VM inconsistency ModChecker's
        Integrity-Checker must reverse.
        """
        if self._randomize:
            gap_pages = int(self._rng.integers(0, 256))
            self._driver_cursor += gap_pages * PAGE_SIZE
        return self._alloc(size, name, area="driver")

    def _alloc(self, size: int, name: str, *, area: str) -> int:
        n_pages = -(-size // PAGE_SIZE)
        if area == "fixed":
            base = self._fixed_cursor
            self._fixed_cursor += n_pages * PAGE_SIZE
            if self._fixed_cursor >= DRIVER_AREA_BASE:
                raise AddressSpaceExhausted("fixed kernel area exhausted")
        else:
            base = self._driver_cursor
            self._driver_cursor += n_pages * PAGE_SIZE
            if self._driver_cursor >= DRIVER_AREA_END:
                raise AddressSpaceExhausted("driver arena exhausted")
        self.page_tables.map_range(base, n_pages)
        self.regions.add(name, base, n_pages * PAGE_SIZE)
        return base

    # -- access (guest's own view) -----------------------------------------------

    def read(self, vaddr: int, length: int) -> bytes:
        return self._translator().read_virtual(vaddr, length)

    def write(self, vaddr: int, data: bytes) -> None:
        self._translator().write_virtual(vaddr, data)

    def write_array(self, vaddr: int, data: np.ndarray) -> None:
        self.write(vaddr, data.astype(np.uint8, copy=False).tobytes())

    def _translator(self):
        # Local import to avoid a cycle at module import time.
        from .paging import AddressTranslator
        return AddressTranslator(self.memory, self.cr3)
