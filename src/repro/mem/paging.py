"""x86 32-bit (non-PAE) two-level page tables.

The guest kernel builds genuine page-directory/page-table structures in
its own physical memory, and the VMI layer translates kernel virtual
addresses by walking those structures *from outside*, exactly as
libvmi does on a real Xen guest. Bit layout follows the Intel SDM:

* CR3 bits 31..12 — physical frame of the page directory;
* PDE/PTE bit 0 — present; bits 31..12 — target frame.

Both 4 KiB pages and PSE 4 MiB large pages (PDE bit 7) are modelled —
XP maps parts of the kernel image with large pages when the CPU
supports PSE, and an introspector that cannot walk them misreads
kernel memory. Access bits beyond P/RW/PS are stored but never
enforced — ModChecker performs read-only introspection and never
faults on protection, only on non-present mappings.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import PageFault
from .physical import PAGE_SHIFT, PAGE_SIZE, FrameAllocator, PhysicalMemory

__all__ = ["PTE_PRESENT", "PTE_RW", "PDE_LARGE", "LARGE_PAGE_SIZE",
           "FAULT_NONE", "FAULT_PDE", "FAULT_PTE", "walk_batch",
           "fault_reason", "AddressTranslator", "PageTableBuilder"]

PTE_PRESENT = 0x001
PTE_RW = 0x002
PDE_LARGE = 0x080            # PS bit: this PDE maps a 4 MiB page
LARGE_PAGE_SIZE = 1 << 22

#: per-page fault codes returned by :func:`walk_batch`
FAULT_NONE = 0
FAULT_PDE = 1                # PDE not present
FAULT_PTE = 2                # PTE not present

_ENTRY = struct.Struct("<I")
_LARGE_MASK = LARGE_PAGE_SIZE - 1


def _split(vaddr: int) -> tuple[int, int, int]:
    """Split a 32-bit VA into (pde index, pte index, page offset)."""
    return (vaddr >> 22) & 0x3FF, (vaddr >> 12) & 0x3FF, vaddr & 0xFFF


def fault_reason(level: int, page_va: int) -> str:
    """The scalar walker's :class:`PageFault` message for a fault code.

    Centralised so the batched paths raise *byte-identical* fault text
    to the per-page walk — the differential harness asserts on it.
    """
    kind = "PDE" if level == FAULT_PDE else "PTE"
    return f"{kind} not present for {page_va:#x}"


def walk_batch(read, cr3: int, page_vas: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised two-level walk of many page-aligned VAs at once.

    ``read(paddr, length) -> bytes`` is the physical-read primitive
    (guest-side: :meth:`PhysicalMemory.read`; introspection-side: the
    hypervisor's ``read_guest_physical``). One read fetches the whole
    page-directory frame; PDEs for every requested page are gathered
    with fancy indexing, PSE 4 MiB large pages are partitioned from
    4 KiB pages, and each *distinct* page table covering a small page
    is fetched exactly once. Returns per-page arrays

    ``(frames, present, faults)``

    where ``frames[i]`` is the backing physical frame number (valid
    only where ``present[i]``), and ``faults[i]`` is ``FAULT_NONE`` /
    ``FAULT_PDE`` / ``FAULT_PTE``. The function is side-effect-free:
    it never raises for a non-present mapping and keeps no counters,
    so callers decide fault and accounting semantics.
    """
    vas = np.ascontiguousarray(page_vas, dtype=np.int64)
    n = vas.size
    frames = np.zeros(n, dtype=np.int64)
    present = np.zeros(n, dtype=bool)
    faults = np.full(n, FAULT_PDE, dtype=np.uint8)
    if n == 0:
        return frames, present, faults

    pd_base = cr3 & ~(PAGE_SIZE - 1)
    pd = np.frombuffer(read(pd_base, PAGE_SIZE), dtype="<u4"
                       ).astype(np.int64)
    pdes = pd[(vas >> 22) & 0x3FF]
    pde_present = (pdes & PTE_PRESENT) != 0

    large = pde_present & ((pdes & PDE_LARGE) != 0)
    if large.any():
        frames[large] = ((pdes[large] & ~np.int64(_LARGE_MASK))
                         | (vas[large] & _LARGE_MASK)) >> PAGE_SHIFT
        present[large] = True
        faults[large] = FAULT_NONE

    small = pde_present & ~large
    if small.any():
        faults[small] = FAULT_PTE
        pt_bases = pdes[small] & ~np.int64(PAGE_SIZE - 1)
        pte_idx = (vas >> 12) & 0x3FF
        for pt_base in np.unique(pt_bases).tolist():
            pt = np.frombuffer(read(pt_base, PAGE_SIZE), dtype="<u4"
                               ).astype(np.int64)
            sel = small & (pdes & ~np.int64(PAGE_SIZE - 1) == pt_base)
            ptes = pt[pte_idx[sel]]
            ok = (ptes & PTE_PRESENT) != 0
            idx = np.flatnonzero(sel)
            frames[idx[ok]] = ptes[ok] >> PAGE_SHIFT
            present[idx[ok]] = True
            faults[idx[ok]] = FAULT_NONE
    return frames, present, faults


class PageTableBuilder:
    """Guest-side construction of page tables in physical memory."""

    def __init__(self, memory: PhysicalMemory, allocator: FrameAllocator) -> None:
        self.memory = memory
        self.allocator = allocator
        self.page_directory_frame = allocator.alloc()
        # Cache of pde_index -> page-table frame to avoid re-reading.
        self._pt_frames: dict[int, int] = {}

    @property
    def cr3(self) -> int:
        """The value a vCPU's CR3 would hold."""
        return self.page_directory_frame << PAGE_SHIFT

    def _page_table_frame(self, pde_index: int) -> int:
        frame = self._pt_frames.get(pde_index)
        if frame is None:
            frame = self.allocator.alloc()
            self._pt_frames[pde_index] = frame
            pde_addr = (self.page_directory_frame << PAGE_SHIFT) + 4 * pde_index
            self.memory.write(pde_addr, _ENTRY.pack(
                (frame << PAGE_SHIFT) | PTE_PRESENT | PTE_RW))
        return frame

    def map_page(self, vaddr: int, frame_no: int, *, writable: bool = True) -> None:
        """Install a 4 KiB mapping ``vaddr -> frame_no``."""
        if vaddr & (PAGE_SIZE - 1):
            raise ValueError(f"vaddr {vaddr:#x} not page aligned")
        pde_i, pte_i, _ = _split(vaddr)
        pt_frame = self._page_table_frame(pde_i)
        pte_addr = (pt_frame << PAGE_SHIFT) + 4 * pte_i
        flags = PTE_PRESENT | (PTE_RW if writable else 0)
        self.memory.write(pte_addr, _ENTRY.pack((frame_no << PAGE_SHIFT) | flags))

    def map_large_page(self, vaddr: int, first_frame: int, *,
                       writable: bool = True) -> None:
        """Install a PSE 4 MiB mapping at ``vaddr`` (4 MiB aligned).

        ``first_frame`` is the first of 1024 physically-contiguous
        frames backing the large page. Overwrites any page table
        previously installed for this PDE slot.
        """
        if vaddr & (LARGE_PAGE_SIZE - 1):
            raise ValueError(f"vaddr {vaddr:#x} not 4 MiB aligned")
        if (first_frame << PAGE_SHIFT) & (LARGE_PAGE_SIZE - 1):
            raise ValueError("large page needs a 4 MiB-aligned frame base")
        pde_i, _, _ = _split(vaddr)
        self._pt_frames.pop(pde_i, None)
        pde_addr = (self.page_directory_frame << PAGE_SHIFT) + 4 * pde_i
        flags = PTE_PRESENT | PDE_LARGE | (PTE_RW if writable else 0)
        self.memory.write(pde_addr, _ENTRY.pack(
            (first_frame << PAGE_SHIFT) | flags))

    def map_range(self, vaddr: int, n_pages: int, *,
                  writable: bool = True) -> list[int]:
        """Map ``n_pages`` fresh frames at ``vaddr``; return the frames."""
        frames = [self.allocator.alloc() for _ in range(n_pages)]
        for i, frame in enumerate(frames):
            self.map_page(vaddr + i * PAGE_SIZE, frame, writable=writable)
        return frames

    def unmap_page(self, vaddr: int) -> None:
        """Clear the PTE for ``vaddr`` (page becomes non-present)."""
        pde_i, pte_i, _ = _split(vaddr)
        pt_frame = self._pt_frames.get(pde_i)
        if pt_frame is None:
            return
        pte_addr = (pt_frame << PAGE_SHIFT) + 4 * pte_i
        self.memory.write(pte_addr, _ENTRY.pack(0))


class AddressTranslator:
    """Walks guest page tables given only (physical memory, CR3).

    This is the introspector's view: it holds no guest-side Python
    state, so translation works across the isolation boundary purely
    from bytes — the property that makes VMI introspection honest in
    this simulation.
    """

    def __init__(self, memory: PhysicalMemory, cr3: int) -> None:
        self.memory = memory
        self.cr3 = cr3
        self.walks = 0          # page-table walks performed (cost model input)

    def translate(self, vaddr: int) -> int:
        """VA → PA or raise :class:`PageFault`."""
        if not (0 <= vaddr < 1 << 32):
            raise PageFault(vaddr, f"non-canonical 32-bit VA {vaddr:#x}")
        self.walks += 1
        pde_i, pte_i, offset = _split(vaddr)
        pd_base = self.cr3 & ~(PAGE_SIZE - 1)
        pde, = _ENTRY.unpack(self.memory.read(pd_base + 4 * pde_i, 4))
        if not pde & PTE_PRESENT:
            raise PageFault(vaddr, f"PDE not present for {vaddr:#x}")
        if pde & PDE_LARGE:
            return (pde & ~(LARGE_PAGE_SIZE - 1)) | (vaddr
                                                     & (LARGE_PAGE_SIZE - 1))
        pt_base = pde & ~(PAGE_SIZE - 1)
        pte, = _ENTRY.unpack(self.memory.read(pt_base + 4 * pte_i, 4))
        if not pte & PTE_PRESENT:
            raise PageFault(vaddr, f"PTE not present for {vaddr:#x}")
        return (pte & ~(PAGE_SIZE - 1)) | offset

    def translate_range(self, vaddr: int, length: int, *,
                        stop_on_fault: bool = True,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Translate every page covering ``[vaddr, vaddr+length)`` at once.

        One :func:`walk_batch` pass replaces ``n_pages`` scalar
        :meth:`translate` calls. Returns ``(frames, present, faults)``
        per covered page, in VA order. ``self.walks`` advances exactly
        as the equivalent scalar loop would: with ``stop_on_fault``
        (the default, matching a read that raises on the first hole)
        only pages up to and including the first non-present one are
        counted; otherwise every page is.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if not (0 <= vaddr and vaddr + length <= 1 << 32):
            raise PageFault(vaddr, f"non-canonical 32-bit VA {vaddr:#x}")
        if length == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint8)
        first_page = vaddr & ~(PAGE_SIZE - 1)
        n_pages = ((vaddr + length - 1) >> PAGE_SHIFT) - (vaddr
                                                          >> PAGE_SHIFT) + 1
        page_vas = first_page + np.arange(n_pages, dtype=np.int64) * PAGE_SIZE
        frames, present, faults = walk_batch(self.memory.read, self.cr3,
                                             page_vas)
        if stop_on_fault and not present.all():
            self.walks += int(np.argmin(present)) + 1
        else:
            self.walks += n_pages
        return frames, present, faults

    def read_virtual(self, vaddr: int, length: int) -> bytes:
        """Read a VA range, translating page by page."""
        out = bytearray(length)
        view = memoryview(out)
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & (PAGE_SIZE - 1)), length - pos)
            pa = self.translate(va)
            self.memory.read_into(pa, view[pos:pos + n])
            pos += n
        return bytes(out)

    def write_virtual(self, vaddr: int, data: bytes) -> None:
        """Write a VA range (guest-internal use; VMI never writes)."""
        pos = 0
        while pos < len(data):
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & (PAGE_SIZE - 1)), len(data) - pos)
            pa = self.translate(va)
            self.memory.write(pa, data[pos:pos + n])
            pos += n
