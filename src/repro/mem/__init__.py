"""Guest memory substrate: physical frames, x86 paging, kernel VA space."""

from .address_space import (DRIVER_AREA_BASE, DRIVER_AREA_END, KERNEL_BASE,
                            KernelAddressSpace)
from .paging import (PTE_PRESENT, PTE_RW, AddressTranslator, PageTableBuilder)
from .physical import PAGE_SIZE, FrameAllocator, PhysicalMemory
from .regions import Region, RegionMap

__all__ = [
    "DRIVER_AREA_BASE", "DRIVER_AREA_END", "KERNEL_BASE",
    "KernelAddressSpace",
    "PTE_PRESENT", "PTE_RW", "AddressTranslator", "PageTableBuilder",
    "PAGE_SIZE", "FrameAllocator", "PhysicalMemory",
    "Region", "RegionMap",
]
