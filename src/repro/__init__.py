"""ModChecker reproduction — kernel-module integrity checking across a
simulated VM cloud.

Reproduces *ModChecker: Kernel Module Integrity Checking in the Cloud
Environment* (Ahmed, Zoranic, Javaid, Richard — ICPP 2012) as a pure
Python system: a Xen-like hypervisor, Windows-XP-like guests with a
genuine PE loader, a libvmi-like introspection layer, the four rootkit
techniques of the paper's evaluation, and ModChecker itself.

Quick start::

    from repro import build_testbed, ModChecker
    tb = build_testbed(15, seed=42)
    mc = ModChecker(tb.hypervisor, tb.profile)
    report = mc.check_pool("hal.dll").report
    assert report.all_clean
"""

from .attacks import (Attack, InfectionResult, attack_for_experiment,
                      make_attack)
from .cloud import PAPER_VM_COUNT, Testbed, build_testbed
from .core import (CheckDaemon, IntegrityChecker, ModChecker, ModuleCarver,
                   ModuleParser, ModuleSearcher, ParallelModChecker,
                   PoolReport, VMCheckReport)
from .guest import GuestKernel, build_catalog
from .hypervisor import CpuModel, Hypervisor, SimClock
from .pe import DriverBlueprint, PEImage, build_driver
from .perf import (HEAVY_LOAD, IDLE, CostModel, GuestResourceMonitor,
                   Workload, apply_workload)
from .vmi import OSProfile, VMIInstance

__version__ = "1.0.0"

__all__ = [
    "Attack", "InfectionResult", "attack_for_experiment", "make_attack",
    "PAPER_VM_COUNT", "Testbed", "build_testbed",
    "CheckDaemon", "IntegrityChecker", "ModChecker", "ModuleCarver",
    "ModuleParser", "ModuleSearcher",
    "ParallelModChecker", "PoolReport", "VMCheckReport",
    "GuestKernel", "build_catalog",
    "CpuModel", "Hypervisor", "SimClock",
    "DriverBlueprint", "PEImage", "build_driver",
    "HEAVY_LOAD", "IDLE", "CostModel", "GuestResourceMonitor", "Workload",
    "apply_workload",
    "OSProfile", "VMIInstance",
    "__version__",
]
