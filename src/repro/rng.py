"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (code generator, workload
jitter, monitor noise) draws from a :class:`numpy.random.Generator`
created here, so an experiment is fully reproducible from a single seed.

The helpers derive independent child streams from a root seed with
:class:`numpy.random.SeedSequence`, which guarantees the streams are
statistically independent even when many are spawned — the same pattern
HPC codes use to give each worker its own stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng", "spawn_rngs", "derive_seed"]

DEFAULT_SEED = 0x12C0DE  # arbitrary but fixed project-wide default


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh PCG64 generator seeded deterministically.

    ``None`` selects :data:`DEFAULT_SEED` (never entropy from the OS —
    reproducibility is a hard requirement for the experiment harness).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one root seed."""
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: int | None, *tags: str) -> int:
    """Derive a stable 63-bit integer seed from a root seed and tags.

    Useful when a component needs an ``int`` seed (not a Generator) that
    must differ per tag but stay reproducible, e.g. one seed per VM name.
    """
    root = DEFAULT_SEED if seed is None else seed
    h = np.uint64(root & 0xFFFFFFFFFFFFFFFF)

    def mix(byte: int) -> None:
        nonlocal h
        # FNV-1a style mix; overflow wraps, which is what we want.
        h = np.uint64((int(h) ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF)

    for tag in tags:
        for byte in tag.encode("utf-8"):
            mix(byte)
        mix(0x1F)   # tag separator: ("a","b") must differ from ("ab",)
    return int(h) & 0x7FFFFFFFFFFFFFFF
