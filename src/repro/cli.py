"""Command-line interface: ``python -m repro.cli`` (or ``modchecker``).

Drives the whole reproduction from a shell::

    modchecker check --module hal.dll --vms 6
    modchecker check --module hal.dll --vms 6 --infect E1 --victim Dom3
    modchecker sweep --vms 4
    modchecker hidden --vms 3 --hide dummy.sys --victim Dom2
    modchecker daemon --vms 4 --cycles 5 --infect E2 --victim Dom2
    modchecker daemon --vms 5 --cycles 10 --churn-rate 0.2
    modchecker chaos --vms 5 --cycles 20 --admit-infected 5
    modchecker explain --vms 4 --infect E1 --victim Dom3
    modchecker fleet --vms 64 --shard-size 16 --cycles 5
    modchecker profile --scenario substrate --flame-out profile.folded
    modchecker experiment e1 fig7 ...      # the benchmark harness

Exit status: 0 = no discrepancy, 1 = discrepancy detected (so the tool
scripts cleanly into cron-style monitoring), 2 = usage error.

``fleet`` is the operational health check and follows the stricter
node-pipeline contract instead: 0 = OK (healthy, or killswitch
active), 1 = WARN (degraded availability, no integrity finding),
2 = CRITICAL (integrity/hidden-module/decoy alert), 3 = UNKNOWN
(bad ``--sink`` configuration).

``--slo`` / ``--slo-config`` (on daemon, chaos, fleet) attach the SLO
engine: the run additionally evaluates error budgets and multi-window
burn rates, and the exit status is raised to the SLO verdict (budget
exhausted -> 1/WARN, burn-rate critical -> 2/CRITICAL) — the same
contract the fleet check speaks. See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_seconds, render_table
from .attacks import attack_for_experiment
from .cloud import build_testbed
from .core import ModChecker
from .core.daemon import CheckDaemon, RoundRobinPolicy
from .errors import InsufficientPool
from .guest import build_catalog

__all__ = ["main", "build_arg_parser"]

DEFAULT_SEED = 2012


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="modchecker",
        description="ModChecker reproduction: cross-VM kernel-module "
                    "integrity checking on a simulated cloud.")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="deterministic testbed seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--vms", type=int, default=6,
                       help="number of cloned guests")
        p.add_argument("--infect", metavar="EXP",
                       help="stage a paper experiment (E1..E4) first")
        p.add_argument("--victim", default="Dom3",
                       help="VM that boots the infected module")
        p.add_argument("--fault-rate", type=float, default=0.0,
                       metavar="P",
                       help="inject transient introspection faults on "
                            "P of guest reads (deterministic, seeded "
                            "from --seed)")
        p.add_argument("--retry", type=int, default=None, metavar="N",
                       help="attempts per failing guest read "
                            "(default: policy default; 0 disables "
                            "retries)")
        p.add_argument("--trace-out", metavar="PATH",
                       help="write a Chrome trace-event JSON of the run "
                            "(load via chrome://tracing or Perfetto)")
        p.add_argument("--metrics-out", metavar="PATH",
                       help="write run metrics; .json suffix = JSON "
                            "snapshot, anything else = Prometheus text")
        p.add_argument("--events-out", metavar="PATH",
                       help="write the structured JSONL audit log of "
                            "the run (correlated by check_id)")
        p.add_argument("--evidence-out", metavar="DIR",
                       help="capture an evidence bundle into DIR for "
                            "every non-clean pool verdict")
        add_batch(p)
        add_incremental(p)

    def add_slo(p):
        p.add_argument("--slo", action="store_true",
                       help="track SLOs (cycle/detection latency, MTTR, "
                            "coverage) with the default objectives and "
                            "raise the exit status to the SLO verdict "
                            "(budget exhausted=1, burn critical=2)")
        p.add_argument("--slo-config", metavar="PATH",
                       help="JSON SLO config (objectives, windows, burn "
                            "thresholds); implies --slo. Schema in "
                            "docs/OBSERVABILITY.md")

    def add_batch(p):
        p.add_argument("--no-batch", action="store_true",
                       help="pin acquisition to the scalar per-page "
                            "reference path instead of the vectorised "
                            "batch reader (the differential harness's "
                            "control arm; slower, same results)")

    def add_repair(p):
        p.add_argument("--repair", nargs="?", const="repair", default=None,
                       choices=["repair", "quarantine-on-repeat-failure"],
                       metavar="POLICY",
                       help="restore tampered modules in place from the "
                            "majority reference and re-verify (bare "
                            "--repair; POLICY=quarantine-on-repeat-"
                            "failure additionally trips the VM's breaker "
                            "when the retry budget runs out)")
        p.add_argument("--repair-attempts", type=int, default=3,
                       metavar="N",
                       help="restore attempts per tampered module before "
                            "giving up (default: 3)")

    def add_incremental(p):
        p.add_argument("--incremental", action="store_true",
                       help="skip copy/parse/compare for modules whose "
                            "content-addressed page manifest still "
                            "matches (cheap per-page checksum sweep)")
        p.add_argument("--recheck-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="force a full re-verification of a manifest "
                            "this long after its last clean full check "
                            "(default: never)")
        p.add_argument("--event-driven", action="store_true",
                       help="write-protect committed manifests and "
                            "re-check only trapped pages — O(writes) "
                            "steady state (implies --incremental)")

    p_check = sub.add_parser("check", help="cross-check one module")
    add_common(p_check)
    add_repair(p_check)
    p_check.add_argument("--module", default="hal.dll")
    p_check.add_argument("--rva-mode", default="robust",
                         choices=["faithful", "robust", "vectorized"])
    p_check.add_argument("--hash", default="md5",
                         choices=["md5", "sha1", "sha256"])
    p_check.add_argument("--pool-mode", default="pairwise",
                         choices=["pairwise", "canonical"],
                         help="pairwise = paper's O(t^2) vote; canonical "
                              "= O(t) fingerprint clustering")

    p_sweep = sub.add_parser("sweep", help="check every loaded module")
    add_common(p_sweep)
    add_repair(p_sweep)

    p_hidden = sub.add_parser("hidden", help="carve for DKOM-hidden modules")
    p_hidden.add_argument("--vms", type=int, default=3)
    p_hidden.add_argument("--hide", metavar="MODULE",
                          help="unlink MODULE on the victim first (demo)")
    p_hidden.add_argument("--victim", default="Dom2")

    p_cross = sub.add_parser("crossview",
                             help="compare listed vs carved module views")
    p_cross.add_argument("--vms", type=int, default=3)
    p_cross.add_argument("--hide", metavar="MODULE",
                         help="demo: unlink MODULE on the victim")
    p_cross.add_argument("--decoy", action="store_true",
                         help="demo: plant a fake LDR entry on the victim")
    p_cross.add_argument("--victim", default="Dom2")

    p_dump = sub.add_parser("dump",
                            help="acquire memory dumps and check offline")
    add_common(p_dump)
    p_dump.add_argument("--module", default="hal.dll")

    p_daemon = sub.add_parser("daemon", help="run periodic checking cycles")
    add_common(p_daemon)
    add_repair(p_daemon)
    p_daemon.add_argument("--cycles", type=int, default=5)
    p_daemon.add_argument("--interval", type=float, default=60.0)
    p_daemon.add_argument("--churn-rate", type=float, default=0.0,
                          metavar="P",
                          help="drive seeded lifecycle churn (reboots, "
                               "pauses, migrations, destroys, creates) "
                               "at scalar rate P between cycles")
    add_slo(p_daemon)

    p_chaos = sub.add_parser(
        "chaos", help="soak the daemon under lifecycle churn")
    p_chaos.add_argument("--vms", type=int, default=5,
                         help="initial pool size")
    p_chaos.add_argument("--cycles", type=int, default=20)
    p_chaos.add_argument("--interval", type=float, default=60.0)
    p_chaos.add_argument("--churn-rate", type=float, default=0.2,
                         metavar="P",
                         help="scalar churn knob, split across event "
                              "kinds (see ChaosConfig.from_churn_rate)")
    p_chaos.add_argument("--admit-infected", type=int, default=None,
                         metavar="CYCLE",
                         help="boot an infected clone into the pool at "
                              "this cycle (the detection-under-churn "
                              "scenario)")
    p_chaos.add_argument("--infect", metavar="EXP", default="E2",
                         help="which paper infection the clone carries")
    p_chaos.add_argument("--retry", type=int, default=None, metavar="N",
                         help="attempts per failing guest read")
    p_chaos.add_argument("--trace-out", metavar="PATH",
                         help="write a Chrome trace-event JSON of the run")
    p_chaos.add_argument("--metrics-out", metavar="PATH",
                         help="write run metrics; .json suffix = JSON "
                              "snapshot, anything else = Prometheus text")
    p_chaos.add_argument("--events-out", metavar="PATH",
                         help="write the structured JSONL audit log of "
                              "the soak (correlated by check_id)")
    p_chaos.add_argument("--evidence-out", metavar="DIR",
                         help="capture an evidence bundle into DIR for "
                              "every non-clean pool verdict")
    add_batch(p_chaos)
    add_incremental(p_chaos)
    add_repair(p_chaos)
    add_slo(p_chaos)

    p_explain = sub.add_parser(
        "explain",
        help="render a forensic incident report for a non-clean check")
    add_common(p_explain)
    p_explain.add_argument("--bundle", metavar="PATH",
                           help="load and render an existing evidence "
                                "bundle instead of re-running a scenario")
    p_explain.add_argument("--module", default="hal.dll",
                           help="module to check when re-running")
    p_explain.add_argument("--bundle-out", metavar="PATH",
                           help="also persist the captured bundle here")

    p_fleet = sub.add_parser(
        "fleet",
        help="run the sharded fleet health check (OK/WARN/CRITICAL)")
    add_common(p_fleet)
    add_repair(p_fleet)
    p_fleet.set_defaults(vms=24)
    p_fleet.add_argument("--shard-size", type=int, default=8,
                         help="max VMs per voting shard; same-key "
                              "overflow opens a sibling shard")
    p_fleet.add_argument("--workers", type=int, default=8,
                         help="Dom0 threads the shard scheduler models")
    p_fleet.add_argument("--cycles", type=int, default=5)
    p_fleet.add_argument("--interval", type=float, default=60.0)
    p_fleet.add_argument("--churn-rate", type=float, default=0.0,
                         metavar="P",
                         help="seeded lifecycle churn across the fleet")
    p_fleet.add_argument("--no-borrow", action="store_true",
                         help="never lend sibling references to "
                              "quorum-starved shards")
    p_fleet.add_argument("--killswitch", action="store_true",
                         help="skip all checks and exit OK (the "
                              "fleet-wide disable used during "
                              "maintenance windows)")
    p_fleet.add_argument("--sink", default="do_nothing",
                         help="telemetry destination for the result "
                              "record: do_nothing (default), stdout, "
                              "jsonl, prometheus")
    p_fleet.add_argument("--sink-opts", action="append", default=None,
                         metavar="KEY=VALUE",
                         help="sink options (repeatable), e.g. "
                              "path=fleet.jsonl")
    add_slo(p_fleet)

    p_profile = sub.add_parser(
        "profile",
        help="run a traced scenario and report where the simulated "
             "microseconds went")
    p_profile.add_argument("--scenario", default="substrate",
                           choices=["substrate", "fleet"],
                           help="substrate = sequential daemon sweeps "
                                "(exclusive-time weights); fleet = the "
                                "sharded scheduler (charged-CPU weights, "
                                "since shard clocks are frozen under "
                                "deferred charging)")
    p_profile.add_argument("--vms", type=int, default=None,
                           help="pool size (default: 6 substrate, "
                                "24 fleet)")
    p_profile.add_argument("--cycles", type=int, default=3)
    p_profile.add_argument("--top", type=int, default=10,
                           help="hotspot rows to print")
    p_profile.add_argument("--flame-out", metavar="PATH",
                           help="write collapsed-stack text (feed to "
                                "flamegraph.pl or speedscope)")
    p_profile.add_argument("--json-out", metavar="PATH",
                           help="write the machine-readable profile "
                                "(modchecker-profile/1)")

    p_exp = sub.add_parser("experiment",
                           help="run paper experiments (harness)")
    p_exp.add_argument("targets", nargs="*",
                       help="e1 e2 e3 e4 fig4 fig7 fig8 fig9 a1..a7 h1 rw "
                            "(default: all)")
    return parser


def _build(args, module: str | None = None):
    infected = None
    if getattr(args, "infect", None):
        attack, target_module = attack_for_experiment(args.infect)
        if module is not None and target_module != module:
            # the experiment dictates its own module; tell the user
            print(f"note: {args.infect} targets {target_module}; "
                  f"checking that instead of {module}")
        module = target_module
        catalog = build_catalog(seed=args.seed)
        result = attack.apply(catalog[module])
        infected = {args.victim: {module: result.infected}}
    tb = build_testbed(args.vms, seed=args.seed, infected=infected)
    rate = getattr(args, "fault_rate", 0.0)
    if not 0.0 <= rate <= 1.0:
        raise SystemExit(f"error: --fault-rate must be in [0, 1], "
                         f"got {rate}")
    if rate:
        from .hypervisor.faults import FaultConfig, FaultInjector
        from .rng import derive_seed
        injector = FaultInjector(FaultConfig(transient_rate=rate),
                                 seed=derive_seed(args.seed, "cli-faults"))
        injector.install(tb.hypervisor)
        print(f"(faults) injecting transient faults on {rate:.1%} of "
              f"guest reads")
    return tb, module


def _obs_for(args, clock):
    """Observability for this invocation: live when any flag is set."""
    from .obs import NULL_OBS, make_observability
    if (getattr(args, "trace_out", None)
            or getattr(args, "metrics_out", None)
            or getattr(args, "events_out", None)):
        return make_observability(clock)
    return NULL_OBS


def _evidence_for(args):
    """An EvidenceRecorder writing to --evidence-out, when requested."""
    out_dir = getattr(args, "evidence_out", None)
    if not out_dir:
        return None
    from .forensics import EvidenceRecorder
    return EvidenceRecorder(out_dir=out_dir)


def _export_obs(args, obs, evidence=None) -> None:
    """Write the trace / metrics / events files the user asked for."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from .analysis.export import write_chrome_trace
        write_chrome_trace(obs.tracer, trace_out)
        print(f"(obs) wrote {len(obs.tracer.spans)} spans to {trace_out}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if metrics_out.endswith(".json"):
            obs.metrics.write_json(metrics_out)
        else:
            obs.metrics.write_prometheus(metrics_out)
        print(f"(obs) wrote metrics to {metrics_out}")
    events_out = getattr(args, "events_out", None)
    if events_out:
        obs.events.write_jsonl(events_out)
        print(f"(obs) wrote {len(obs.events)} events to {events_out}")
    if evidence is not None and evidence.captures:
        print(f"(forensics) captured {evidence.captures} evidence "
              f"bundle(s) in {evidence.out_dir}")


def _slo_engine(args, obs):
    """Build an SloEngine when --slo / --slo-config asked for one."""
    config_path = getattr(args, "slo_config", None)
    if not (getattr(args, "slo", False) or config_path):
        return None
    from .obs.slo import SloConfig, SloEngine
    if config_path:
        try:
            config = SloConfig.load(config_path)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    else:
        config = SloConfig()
    names = ", ".join(o.name for o in config.objectives)
    print(f"(slo) tracking {names}; windows "
          f"{config.fast_window:.0f}s/{config.slow_window:.0f}s, burn "
          f"thresholds {config.fast_burn}x/{config.slow_burn}x")
    return SloEngine(config, obs=obs)


def _print_slo(status) -> int:
    """Render an SloStatus; returns its exit-code contribution."""
    if status is None:
        return 0
    for obj in status.objectives:
        if not (obj.good or obj.bad):
            continue
        p99 = obj.quantiles.get(0.99, 0.0)
        print(f"(slo) {obj.name}: {obj.state.upper()} "
              f"budget={obj.budget_remaining:+.2f} "
              f"burn={obj.fast_burn:.1f}x/{obj.slow_burn:.1f}x "
              f"good/bad={obj.good}/{obj.bad} p99={p99:.4g}")
    print(f"(slo) verdict: {status.state.upper()} "
          f"(exit contribution {status.exit_code})")
    return status.exit_code


def _retry_policy(args):
    """Map --retry to a RetryPolicy (None disables retries)."""
    from .vmi.retry import DEFAULT_RETRY_POLICY, RetryPolicy
    attempts = getattr(args, "retry", None)
    if attempts is None:
        return DEFAULT_RETRY_POLICY
    if attempts <= 0:
        return None
    return RetryPolicy(max_attempts=attempts)


def _incremental_kwargs(args) -> dict:
    """Map --incremental/--recheck-ttl/--event-driven to ModChecker kwargs."""
    ttl = getattr(args, "recheck_ttl", None)
    if ttl is not None and ttl <= 0:
        raise SystemExit(f"error: --recheck-ttl must be > 0, got {ttl}")
    event_driven = getattr(args, "event_driven", False)
    return {"incremental": getattr(args, "incremental", False)
            or event_driven,
            "recheck_ttl": ttl,
            "event_driven": event_driven}


def _batch_kwargs(args) -> dict:
    """Map --no-batch to ModChecker kwargs."""
    return {"batch": not getattr(args, "no_batch", False)}


def _repair_kwargs(args) -> dict:
    """Map --repair/--repair-attempts to ModChecker kwargs."""
    attempts = getattr(args, "repair_attempts", 3)
    if attempts < 1:
        raise SystemExit(f"error: --repair-attempts must be >= 1, "
                         f"got {attempts}")
    return {"repair_policy": getattr(args, "repair", None) or "detect-only",
            "repair_max_attempts": attempts}


def _print_remediations(remediations) -> None:
    for rec in remediations:
        line = (f"(repair) {rec.vm_name}/{rec.module_name}: "
                f"{rec.status.upper()} after {rec.attempts} attempt(s), "
                f"{rec.hunks_written} hunk(s)/{rec.bytes_written} byte(s) "
                f"written, {rec.raced_writes} raced write(s)")
        if rec.mttr is not None:
            line += f"; MTTR {format_seconds(rec.mttr)}"
        if rec.reason:
            line += f"; {rec.reason}"
        print(line)


def cmd_check(args) -> int:
    tb, module = _build(args, args.module)
    module = module or args.module
    obs = _obs_for(args, tb.clock)
    evidence = _evidence_for(args)
    mc = ModChecker(tb.hypervisor, tb.profile, rva_mode=args.rva_mode,
                    hash_algorithm=args.hash, retry=_retry_policy(args),
                    obs=obs, evidence=evidence, **_incremental_kwargs(args),
                    **_repair_kwargs(args), **_batch_kwargs(args))
    out = mc.check_pool(module, mode=args.pool_mode)
    report = out.report
    _print_remediations(out.remediations)
    _export_obs(args, obs, evidence)
    rows = [[vm, f"{v.matches}/{v.comparisons}",
             "CLEAN" if v.clean else "FLAGGED",
             ", ".join(v.mismatched_regions) or "-"]
            for vm, v in report.verdicts.items()]
    rows += [[vm, "-", "DEGRADED", reason]
             for vm, reason in sorted(report.degraded.items())]
    print(render_table(["VM", "matches", "verdict", "mismatched"], rows,
                       title=f"{module} across {len(report.vm_names)} VMs "
                             f"({args.hash}, {args.rva_mode})"))
    print(f"simulated runtime: {format_seconds(out.timings.total)} "
          f"(searcher {format_seconds(out.timings.searcher)})")
    return 0 if report.all_clean else 1


def cmd_sweep(args) -> int:
    tb, _ = _build(args)
    obs = _obs_for(args, tb.clock)
    mc = ModChecker(tb.hypervisor, tb.profile, retry=_retry_policy(args),
                    obs=obs, **_incremental_kwargs(args),
                    **_repair_kwargs(args), **_batch_kwargs(args))
    outcomes = mc.check_all_modules()
    _export_obs(args, obs)
    rows = []
    dirty = False
    for name, outcome in outcomes.items():
        flagged = outcome.report.flagged()
        dirty |= bool(flagged)
        rows.append([name, "CLEAN" if not flagged else "FLAGGED",
                     ",".join(flagged) or "-"])
        _print_remediations(outcome.remediations)
    print(render_table(["module", "verdict", "flagged VMs"], rows,
                       title=f"catalog sweep over {args.vms} VMs"))
    return 1 if dirty else 0


def cmd_hidden(args) -> int:
    tb, _ = _build(args)
    if args.hide:
        tb.hypervisor.domain(args.victim).kernel.unload_module(args.hide)
        print(f"(demo) unlinked {args.hide} from {args.victim}'s "
              f"PsLoadedModuleList")
    mc = ModChecker(tb.hypervisor, tb.profile)
    dirty = False
    for vm in tb.vm_names:
        hidden = mc.detect_hidden_modules(vm)
        for carved, name in hidden:
            dirty = True
            print(f"{vm}: HIDDEN module at {carved.base:#010x} "
                  f"({len(carved.image)} bytes) -> "
                  f"identified as {name or 'unknown'}")
            if name:
                report = mc.check_carved_module(carved, name)
                verdict = "clean" if report.clean else "TAMPERED"
                print(f"        integrity vs pool: {verdict}")
        if not hidden:
            print(f"{vm}: no hidden modules")
    return 1 if dirty else 0


def cmd_crossview(args) -> int:
    from .attacks import LdrDecoyAttack
    from .core import cross_view
    tb, _ = _build(args)
    if args.hide:
        tb.hypervisor.domain(args.victim).kernel.unload_module(args.hide)
        print(f"(demo) unlinked {args.hide} on {args.victim}")
    if args.decoy:
        LdrDecoyAttack().apply(tb.hypervisor.domain(args.victim).kernel)
        print(f"(demo) planted ghost.sys decoy entry on {args.victim}")
    mc = ModChecker(tb.hypervisor, tb.profile)
    dirty = False
    for vm in tb.vm_names:
        report = cross_view(mc.vmi_for(vm))
        print(report.summary())
        for m in report.carved_only:
            print(f"    hidden image at {m.base:#010x} "
                  f"({len(m.image)} bytes)")
        for e in report.listed_only:
            print(f"    decoy entry {e.name!r} -> DllBase "
                  f"{e.dll_base:#010x} (unbacked)")
        dirty |= not report.consistent
    return 1 if dirty else 0


def cmd_dump(args) -> int:
    from .core import IntegrityChecker, ModuleParser, ModuleSearcher
    from .vmi import DumpAnalyzer, acquire_dump
    tb, module = _build(args, args.module)
    module = module or args.module
    dumps = [acquire_dump(tb.hypervisor, vm, tb.profile)
             for vm in tb.vm_names]
    total = sum(d.resident_bytes for d in dumps) // 1024
    print(f"acquired {len(dumps)} dumps ({total} KiB resident); "
          f"analysing offline ...")
    obs = _obs_for(args, tb.clock)
    parsed = []
    for dump in dumps:
        analyzer = DumpAnalyzer(dump)
        analyzer.obs = obs          # duck-typed; searcher picks it up
        copy = ModuleSearcher(analyzer).copy_module(module)
        parsed.append(ModuleParser(obs=obs).parse(copy))
    report = IntegrityChecker().check_pool(parsed)
    _export_obs(args, obs)
    rows = [[vm, f"{v.matches}/{v.comparisons}",
             "CLEAN" if v.clean else "FLAGGED",
             ", ".join(v.mismatched_regions) or "-"]
            for vm, v in report.verdicts.items()]
    print(render_table(["dump", "matches", "verdict", "mismatched"], rows,
                       title=f"{module}: offline cross-check of "
                             f"{len(dumps)} dumps"))
    return 0 if report.all_clean else 1


def _chaos_engine(args, tb):
    """Build a seeded churn engine from --churn-rate (None when 0)."""
    rate = getattr(args, "churn_rate", 0.0)
    if not 0.0 <= rate <= 1.0:
        raise SystemExit(f"error: --churn-rate must be in [0, 1], "
                         f"got {rate}")
    if not rate:
        return None
    from .cloud import ChaosConfig, ChaosEngine
    engine = ChaosEngine(tb.hypervisor, ChaosConfig.from_churn_rate(rate),
                         seed=args.seed, catalog=tb.catalog)
    print(f"(chaos) lifecycle churn at {rate:.1%} per guest per cycle")
    return engine


def _print_repair_summary(mc) -> None:
    if mc.repair is None:
        return
    st = mc.repair.stats
    line = (f"repair: {st.verified} verified, {st.failed} failed, "
            f"{st.quarantined} quarantined "
            f"({st.attempts} attempt(s), {st.raced_writes} raced write(s))")
    if st.mttr_count:
        line += (f"; MTTR mean {format_seconds(st.mttr_mean)} "
                 f"max {format_seconds(st.mttr_max)}")
    print(line)


def cmd_daemon(args) -> int:
    tb, _ = _build(args)
    obs = _obs_for(args, tb.clock)
    evidence = _evidence_for(args)
    mc = ModChecker(tb.hypervisor, tb.profile, retry=_retry_policy(args),
                    obs=obs, evidence=evidence, **_incremental_kwargs(args),
                    **_repair_kwargs(args), **_batch_kwargs(args))
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=3),
                         interval=args.interval,
                         chaos=_chaos_engine(args, tb),
                         slo=_slo_engine(args, obs))
    for cycle in range(args.cycles):
        alerts = daemon.run_cycle()
        stamp = tb.clock.now
        if alerts:
            for alert in alerts:
                print(str(alert))
        else:
            print(f"[{stamp:10.3f}s] cycle {cycle}: quiet")
        if daemon.quarantined:
            print(f"[{stamp:10.3f}s] quarantined: "
                  f"{', '.join(daemon.quarantined)}")
    _export_obs(args, obs, evidence)
    _print_repair_summary(mc)
    print(f"{len(daemon.log)} alert(s) over {args.cycles} cycles")
    rc = 1 if len(daemon.log) else 0
    return max(rc, _print_slo(daemon.last_slo_status))


def cmd_chaos(args) -> int:
    """Soak the daemon under churn.

    Exit status is the gate: on a clean pool, 0 iff zero integrity
    alerts (no false positives); with ``--admit-infected``, 0 iff the
    infected clone was convicted and nobody else was.
    """
    tb = build_testbed(args.vms, seed=args.seed)
    obs = _obs_for(args, tb.clock)
    evidence = _evidence_for(args)
    mc = ModChecker(tb.hypervisor, tb.profile, retry=_retry_policy(args),
                    obs=obs, evidence=evidence, **_incremental_kwargs(args),
                    **_repair_kwargs(args), **_batch_kwargs(args))
    engine = _chaos_engine(args, tb)
    if engine is None:
        raise SystemExit("error: chaos needs --churn-rate > 0")
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=3),
                         interval=args.interval, chaos=engine,
                         slo=_slo_engine(args, obs))
    infected_vm = None
    for cycle in range(args.cycles):
        if args.admit_infected is not None and cycle == args.admit_infected:
            attack, module = attack_for_experiment(args.infect)
            infection = attack.apply(tb.catalog[module])
            catalog = dict(tb.catalog)
            catalog[module] = infection.infected
            infected_vm = "Mallory"
            engine.create_guest(infected_vm, catalog)
            daemon.admit_vm(infected_vm)
            print(f"[{tb.clock.now:10.3f}s] admitted infected clone "
                  f"{infected_vm} ({args.infect} in {module})")
        alerts = daemon.run_cycle()
        for alert in alerts:
            print(str(alert))
        if not alerts:
            print(f"[{tb.clock.now:10.3f}s] cycle {cycle}: quiet "
                  f"(pool={len(tb.hypervisor.guests())}, "
                  f"open={len(daemon.quarantined)})")
    _export_obs(args, obs, evidence)
    stats = engine.stats
    print(f"churn: {stats.events} events over {stats.steps} steps "
          f"({stats.reboots} reboots, {stats.pauses} pauses, "
          f"{stats.migrations} migrations, {stats.destroys} destroys, "
          f"{stats.creates} creates)")
    integrity = [a for a in daemon.log.alerts
                 if a.kind in ("integrity", "hidden-module", "decoy-entry")]
    degraded = len(daemon.log) - len(integrity)
    _print_repair_summary(mc)
    print(f"{len(integrity)} integrity alert(s), {degraded} degraded "
          f"alert(s) over {args.cycles} cycles")
    if infected_vm is not None:
        caught = any(infected_vm in a.flagged_vms for a in daemon.log.alerts
                     if a.kind == "integrity")
        spurious = [a for a in integrity
                    if infected_vm not in a.flagged_vms]
        print(f"infected clone {infected_vm}: "
              f"{'DETECTED' if caught else 'MISSED'}"
              + (f" (+{len(spurious)} spurious alert(s))"
                 if spurious else ""))
        rc = 0 if caught and not spurious else 1
        return max(rc, _print_slo(daemon.last_slo_status))
    rc = 1 if integrity else 0
    return max(rc, _print_slo(daemon.last_slo_status))


def cmd_fleet(args) -> int:
    """Sharded fleet health check with the node-pipeline contract.

    Exit status: 0 = OK (healthy fleet, or ``--killswitch``), 1 = WARN
    (degraded availability: tripped breakers / starved quorums, but no
    integrity finding), 2 = CRITICAL (an integrity, hidden-module or
    decoy alert anywhere in the fleet), 3 = UNKNOWN (``--sink`` was
    misconfigured; nothing ran).

    With ``--repair``, remediation outcomes count toward the status:
    integrity findings where *every* repair ended verified clean
    downgrade to WARN (the fleet self-healed; the operator still sees
    the finding in the record), while any failed, aborted or
    quarantined repair keeps the fleet CRITICAL.
    """
    from .obs import SinkError, parse_sink, parse_sink_opts
    from .obs.sinks import PromSink
    try:
        sink = parse_sink(args.sink, parse_sink_opts(args.sink_opts))
    except SinkError as exc:
        print(f"fleet UNKNOWN: {exc}", file=sys.stderr)
        return 3
    if args.killswitch:
        print("fleet OK: killswitch active; checks skipped")
        return 0

    from .cloud import build_fleet_testbed
    infected = None
    if args.infect:
        attack, module = attack_for_experiment(args.infect)
        result = attack.apply(build_catalog(seed=args.seed)[module])
        infected = {args.victim: {module: result.infected}}
    try:
        tb = build_fleet_testbed(args.vms, seed=args.seed,
                                 infected=infected)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    rate = args.fault_rate
    if not 0.0 <= rate <= 1.0:
        raise SystemExit(f"error: --fault-rate must be in [0, 1], "
                         f"got {rate}")
    if rate:
        from .hypervisor.faults import FaultConfig, FaultInjector
        from .rng import derive_seed
        FaultInjector(FaultConfig(transient_rate=rate),
                      seed=derive_seed(args.seed, "cli-faults")
                      ).install(tb.hypervisor)
        print(f"(faults) injecting transient faults on {rate:.1%} of "
              f"guest reads")
    obs = _obs_for(args, tb.clock)
    if not obs.enabled and isinstance(sink, PromSink):
        # the prometheus sink scrapes the registry; make it live
        from .obs import make_observability
        obs = make_observability(tb.clock)
    evidence = _evidence_for(args)

    from .cloud import Fleet
    fleet = Fleet(tb.hypervisor, shard_size=args.shard_size,
                  workers=args.workers, interval=args.interval,
                  borrow=not args.no_borrow,
                  chaos=_chaos_engine(args, tb), obs=obs,
                  slo=_slo_engine(args, obs),
                  checker_kwargs={"retry": _retry_policy(args),
                                  "evidence": evidence,
                                  **_incremental_kwargs(args),
                                  **_repair_kwargs(args),
                                  **_batch_kwargs(args)})
    print(f"fleet: {args.vms} VM(s) in {len(fleet.shards)} shard(s), "
          f"{args.workers} worker(s)")
    for _ in range(args.cycles):
        report = fleet.run_cycle()
        for shard_name, alert in report.alerts:
            print(f"  [{shard_name}] {alert}")
        print(f"[{tb.clock.now:10.3f}s] cycle {report.cycle}: "
              f"shards={report.shards} vms={report.vms} "
              f"makespan={report.duration:.4f}s "
              f"borrowed={report.borrowed}")

    integrity = [a for _, a in fleet.alert_log
                 if a.kind in ("integrity", "hidden-module",
                               "decoy-entry")]
    degraded = [a for _, a in fleet.alert_log if a.kind == "degraded"]
    open_breakers = sum(len(s.daemon.health.open_vms())
                        for s in fleet.shards.values())
    stats = fleet.stats
    repairs_bad = (stats.repairs_failed_total
                   + stats.repairs_quarantined_total)
    self_healed = (args.repair is not None and integrity
                   and stats.repairs_verified_total > 0
                   and not repairs_bad)
    if integrity and not self_healed:
        status, rc = "CRITICAL", 2
    elif integrity or degraded or open_breakers:
        status, rc = "WARN", 1
    else:
        status, rc = "OK", 0
    slo_status = fleet.last_slo_status
    if slo_status is not None and slo_status.exit_code > rc:
        # the SLO verdict speaks the same contract and can only
        # escalate: budget exhausted -> WARN, burn critical -> CRITICAL
        rc = slo_status.exit_code
        status = {0: "OK", 1: "WARN", 2: "CRITICAL"}[rc]
    record = {
        "check": "modchecker-fleet",
        "status": status,
        "exit_code": rc,
        "cycles": stats.cycles,
        "shards": len(fleet.shards),
        "vms": len(tb.hypervisor.guests()),
        "checks_total": stats.checks_total,
        "vm_checks_total": stats.vm_checks_total,
        "borrowed_refs_total": stats.borrowed_refs_total,
        "integrity_alerts": len(integrity),
        "degraded_alerts": len(degraded),
        "open_breakers": open_breakers,
        "repairs_verified": stats.repairs_verified_total,
        "repairs_failed": stats.repairs_failed_total,
        "repairs_quarantined": stats.repairs_quarantined_total,
        "checks_per_sec": round(stats.checks_per_sec, 3),
        "p99_cycle_seconds": round(stats.p99_cycle_seconds, 6),
        "sim_seconds": round(tb.clock.now, 3),
    }
    if slo_status is not None:
        record["slo"] = slo_status.to_dict()
    sink.emit(record)
    sink.finalize(obs)
    _export_obs(args, obs, evidence)
    repair_note = ""
    if args.repair is not None:
        repair_note = (f", repairs: {stats.repairs_verified_total} "
                       f"verified / {stats.repairs_failed_total} failed "
                       f"/ {stats.repairs_quarantined_total} quarantined")
    print(f"fleet {status}: {record['vms']} VM(s) in "
          f"{record['shards']} shard(s); "
          f"{record['vm_checks_total']} VM-checks over "
          f"{stats.cycles} cycle(s), "
          f"{len(integrity)} integrity / {len(degraded)} degraded "
          f"alert(s), {open_breakers} open breaker(s){repair_note}")
    _print_slo(slo_status)
    return rc


def cmd_profile(args) -> int:
    """Trace a canonical scenario and report the cost attribution.

    ``substrate`` runs sequential daemon sweeps over a clone pool and
    weighs nodes by exclusive simulated time; ``fleet`` runs the
    sharded scheduler and weighs by charged Dom0 CPU (shard clocks are
    frozen under deferred charging, so span durations there are zero).
    Exit status 0 — profiling is reporting, not a gate.
    """
    from .obs import make_observability
    from .obs.profiler import Profile
    if args.scenario == "substrate":
        vms = args.vms if args.vms is not None else 6
        tb = build_testbed(vms, seed=args.seed)
        obs = make_observability(tb.clock)
        mc = ModChecker(tb.hypervisor, tb.profile, obs=obs)
        daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=3))
        for _ in range(args.cycles):
            daemon.run_cycle()
        weight = "time"
    else:
        from .cloud import Fleet, build_fleet_testbed
        vms = args.vms if args.vms is not None else 24
        tb = build_fleet_testbed(vms, seed=args.seed)
        obs = make_observability(tb.clock)
        fleet = Fleet(tb.hypervisor, shard_size=8, obs=obs)
        fleet.run(args.cycles)
        weight = "cpu"

    profile = Profile.from_tracer(obs.tracer)
    rows = [[r["path"], str(r["calls"]), f"{r['exclusive'] * 1e3:.3f}",
             f"{r['cpu'] * 1e3:.3f}", f"{r['share']:.1%}"]
            for r in profile.hotspots(args.top, weight=weight)]
    print(render_table(
        ["call path", "calls", "excl ms", "cpu ms", "share"], rows,
        title=f"{args.scenario}: top {len(rows)} hotspots by "
              f"{'exclusive sim-time' if weight == 'time' else 'Dom0 CPU'}"
              f" ({vms} VM(s), {args.cycles} cycle(s))"))
    shares = (profile.stage_shares() if weight == "time"
              else profile.op_shares())
    breakdown = ", ".join(f"{name} {share:.1%}" for name, share in
                          sorted(shares.items(), key=lambda kv: -kv[1]))
    print(f"{'stage' if weight == 'time' else 'op'} shares: {breakdown}")
    print(f"totals: {format_seconds(profile.total_seconds)} simulated, "
          f"{format_seconds(profile.total_cpu_seconds)} Dom0 CPU charged "
          f"across {len(obs.tracer.spans)} span(s)")
    if args.flame_out:
        profile.write_collapsed(args.flame_out, weight=weight)
        print(f"(profile) wrote collapsed stacks to {args.flame_out} "
              f"(flamegraph.pl {args.flame_out} > profile.svg)")
    if args.json_out:
        profile.write_json(args.json_out, scenario=args.scenario)
        print(f"(profile) wrote JSON profile to {args.json_out}")
    return 0


def cmd_explain(args) -> int:
    """Render the forensic incident report for a non-clean check.

    Either loads an existing bundle (``--bundle``) or re-runs a seeded
    scenario with evidence capture enabled and explains what it caught.
    Exit status follows the tool convention: 1 iff the report contains
    unexplained (tamper) hunks.
    """
    from .forensics import (EvidenceRecorder, load_bundle,
                            render_incident_report, write_bundle)
    if args.bundle:
        bundle = load_bundle(args.bundle)
        print(render_incident_report(bundle), end="")
        return 1 if bundle.unexplained_hunks else 0
    tb, module = _build(args, args.module)
    module = module or args.module
    from .obs import make_observability
    obs = make_observability(tb.clock)
    recorder = EvidenceRecorder()
    mc = ModChecker(tb.hypervisor, tb.profile, retry=_retry_policy(args),
                    obs=obs, evidence=recorder, **_incremental_kwargs(args),
                    **_batch_kwargs(args))
    out = mc.check_pool(module)
    _export_obs(args, obs)
    if recorder.last is None:
        print(f"pool is clean: {module!r} consistent across "
              f"{len(out.report.vm_names)} VM(s); nothing to explain")
        return 0
    bundle = recorder.last
    if args.bundle_out:
        write_bundle(bundle, args.bundle_out)
        print(f"(forensics) wrote bundle to {args.bundle_out}")
    print(render_incident_report(bundle), end="")
    return 1 if bundle.unexplained_hunks else 0


def cmd_experiment(args) -> int:
    # Reuse the benchmark harness (import lazily: it adds its own path).
    import importlib.util
    from pathlib import Path
    harness_path = Path(__file__).resolve().parents[2] / "benchmarks" \
        / "harness.py"
    if not harness_path.exists():
        print("benchmarks/harness.py not found (installed without the "
              "repository checkout)")
        return 2
    spec = importlib.util.spec_from_file_location("_harness", harness_path)
    harness = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(harness)
    return harness.main(args.targets)


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    handlers = {
        "check": cmd_check,
        "sweep": cmd_sweep,
        "hidden": cmd_hidden,
        "crossview": cmd_crossview,
        "dump": cmd_dump,
        "daemon": cmd_daemon,
        "chaos": cmd_chaos,
        "fleet": cmd_fleet,
        "profile": cmd_profile,
        "explain": cmd_explain,
        "experiment": cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except InsufficientPool as exc:
        # Degradation (e.g. --fault-rate with --retry 0) can shrink the
        # quorum below 2; that is an operational outcome, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
