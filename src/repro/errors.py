"""Exception hierarchy for the ModChecker reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch the whole family with one clause while still being able to
distinguish, say, a guest page fault from a malformed PE image.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PEError", "PEFormatError", "PEBuildError", "RelocationError",
    "MemoryError_", "PhysicalAddressError", "PageFault",
    "AddressSpaceExhausted",
    "GuestError", "ModuleLoadError", "ModuleNotLoadedError",
    "HypervisorError", "DomainNotFound", "DomainStateError",
    "WriteProtectedError",
    "VMIError", "VMIInitError", "SymbolNotFound", "IntrospectionFault",
    "TransientFault", "PagedOutFault", "DomainUnreachable", "RetryExhausted",
    "AttackError", "NoOpcodeCave",
    "ModCheckerError", "InsufficientPool",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# PE format
# ---------------------------------------------------------------------------

class PEError(ReproError):
    """Base class for Portable Executable format errors."""


class PEFormatError(PEError):
    """The byte stream does not parse as a valid PE32 image."""


class PEBuildError(PEError):
    """Inconsistent parameters were supplied to the PE builder."""


class RelocationError(PEError):
    """A base-relocation block is malformed or out of range."""


# ---------------------------------------------------------------------------
# Guest memory
# ---------------------------------------------------------------------------

class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class PhysicalAddressError(MemoryError_):
    """A physical address falls outside the machine's installed frames."""


class PageFault(MemoryError_):
    """Virtual address translation failed (not-present PTE/PDE).

    Carries the faulting virtual address in :attr:`address`.
    """

    def __init__(self, address: int, message: str | None = None) -> None:
        self.address = address
        super().__init__(message or f"page fault at VA {address:#010x}")


class AddressSpaceExhausted(MemoryError_):
    """The kernel virtual address allocator ran out of room."""


# ---------------------------------------------------------------------------
# Guest OS
# ---------------------------------------------------------------------------

class GuestError(ReproError):
    """Base class for guest-kernel simulator errors."""


class ModuleLoadError(GuestError):
    """The guest module loader could not load a PE image."""


class ModuleNotLoadedError(GuestError):
    """A requested module is not present in PsLoadedModuleList."""


# ---------------------------------------------------------------------------
# Hypervisor
# ---------------------------------------------------------------------------

class HypervisorError(ReproError):
    """Base class for VMM errors."""


class DomainNotFound(HypervisorError):
    """No domain with the given id/name exists."""


class DomainStateError(HypervisorError):
    """Operation is invalid for the domain's current lifecycle state."""


class WriteProtectedError(HypervisorError):
    """An unprivileged write targeted a trap-protected guest frame.

    Only the privileged remediation path (:meth:`Hypervisor.
    write_guest_frame` with ``privileged=True``) may modify protected
    frames; everything else must go through the guest's own write path
    and take the trap.
    """


# ---------------------------------------------------------------------------
# VMI
# ---------------------------------------------------------------------------

class VMIError(ReproError):
    """Base class for introspection errors."""


class VMIInitError(VMIError):
    """The VMI instance could not attach to the target domain."""


class SymbolNotFound(VMIError):
    """A kernel symbol was not found in the symbol table."""


class IntrospectionFault(VMIError):
    """Reading guest memory failed (e.g. unmapped page)."""


class TransientFault(IntrospectionFault):
    """A guest read failed for a *transient* reason and may be retried.

    Raised by the fault-injection layer (and, in a real deployment, by
    contended ``xc_map_foreign_range`` calls). A :class:`RetryPolicy`
    treats this family — and only this family — as retryable.
    """


class PagedOutFault(TransientFault):
    """The backing page is temporarily paged out (not-present PTE window).

    Clears once the guest pages the frame back in, i.e. after the fault
    window expires on the simulated clock — backing off and retrying is
    the correct response.
    """


class DomainUnreachable(TransientFault):
    """The whole domain is temporarily unresponsive (paused/migrating).

    Every read of the domain fails until the outage window ends; if the
    window outlasts the retry budget the caller should degrade (drop the
    VM from the quorum) rather than abort the sweep.
    """


class RetryExhausted(IntrospectionFault):
    """A retried guest read still failed after the full retry budget.

    Deliberately *not* a :class:`TransientFault`: once the budget is
    spent the failure is final for this operation, and outer layers must
    degrade (quarantine the VM) instead of stacking more retries.
    """


# ---------------------------------------------------------------------------
# Attacks
# ---------------------------------------------------------------------------

class AttackError(ReproError):
    """An attack could not be applied to the target module."""


class NoOpcodeCave(AttackError):
    """Inline hooking found no opcode cave large enough for the payload."""


# ---------------------------------------------------------------------------
# ModChecker core
# ---------------------------------------------------------------------------

class ModCheckerError(ReproError):
    """Base class for checker-level errors."""


class InsufficientPool(ModCheckerError):
    """Fewer than two VMs expose the module, so no comparison is possible."""
