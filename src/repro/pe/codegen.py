"""Synthetic 32-bit code generator for driver ``.text`` sections.

We have no real ``hal.dll``/``http.sys`` binaries offline, so this
module fabricates instruction streams with the properties ModChecker's
evaluation depends on:

* **embedded absolute addresses** — instructions like
  ``MOV EAX, [addr32]`` / ``CALL [addr32]`` carry 32-bit operands that
  the loader rebases, so two VMs' copies of one module differ exactly at
  these sites (the precondition for Algorithm 2);
* **relative calls** (``E8 rel32``) that need *no* relocation and must
  survive the RVA adjustment untouched;
* **function structure** — prologue/epilogue framing with zero-byte
  padding between functions ("opcode caves"), which the inline-hooking
  attack (experiment E2) uses to hide its payload;
* a guaranteed ``DEC ECX`` (opcode ``49``) in the entry function, the
  exact instruction experiment E1 rewrites to ``SUB ECX, 1``
  (``83 E9 01``).

The encodings are genuine x86-32 so attack payloads splice in
seamlessly, but the generator is *not* a compiler: bodies are random
instruction salads, which is all integrity hashing needs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..rng import make_rng

__all__ = [
    "AbsRef",
    "FunctionInfo",
    "Cave",
    "CodeLayout",
    "generate_code",
    "OPC_DEC_ECX",
    "PROLOGUE",
    "EPILOGUE",
]

OPC_DEC_ECX = 0x49
PROLOGUE = bytes([0x55, 0x8B, 0xEC])       # push ebp; mov ebp, esp
EPILOGUE = bytes([0x5D, 0xC3])             # pop ebp; ret


@dataclass(frozen=True)
class AbsRef:
    """A 32-bit absolute-address operand slot awaiting layout.

    ``slot_offset`` is the offset of the 4-byte operand *within the
    code blob*; the final stored value is
    ``image_base + rva(target_section) + target_offset`` and the slot
    gets a HIGHLOW relocation entry.
    """

    slot_offset: int
    target_section: str
    target_offset: int


@dataclass(frozen=True)
class FunctionInfo:
    """One generated function: half-open byte range plus instruction map."""

    name: str
    offset: int
    size: int
    instruction_offsets: tuple[int, ...]

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class Cave:
    """A run of zero padding between functions (an "opcode cave")."""

    offset: int
    size: int


@dataclass
class CodeLayout:
    """Output of :func:`generate_code` — code plus its metadata."""

    code: bytearray
    refs: list[AbsRef] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    caves: list[Cave] = field(default_factory=list)

    def function(self, name: str) -> FunctionInfo:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def largest_cave(self) -> Cave | None:
        return max(self.caves, key=lambda c: c.size, default=None)


# Simple opcodes with no operands / immediate-only operands. Each entry
# is an encoder: rng -> bytes.
def _enc_nop(rng: np.random.Generator) -> bytes:
    return b"\x90"


def _enc_inc_dec(rng: np.random.Generator) -> bytes:
    # inc/dec reg — 0x40..0x4F, but avoid 0x49 (DEC ECX) so its
    # occurrences are exactly where we plant them deliberately.
    op = 0x40 + int(rng.integers(0, 16))
    if op == OPC_DEC_ECX:
        op = 0x48
    return bytes([op])


def _enc_push_pop(rng: np.random.Generator) -> bytes:
    return bytes([0x50 + int(rng.integers(0, 16))])


def _enc_mov_rr(rng: np.random.Generator) -> bytes:
    return bytes([0x8B, 0xC0 | int(rng.integers(0, 64))])


def _enc_xor_rr(rng: np.random.Generator) -> bytes:
    return bytes([0x33, 0xC0 | int(rng.integers(0, 64))])


def _enc_test_rr(rng: np.random.Generator) -> bytes:
    return bytes([0x85, 0xC0 | int(rng.integers(0, 64))])


def _enc_alu_imm8(rng: np.random.Generator) -> bytes:
    # 83 /r imm8 family (add/sub/cmp with sign-extended imm8)
    modrm = 0xC0 | (int(rng.integers(0, 8)) << 3) | int(rng.integers(0, 8))
    return bytes([0x83, modrm, int(rng.integers(1, 128))])


def _enc_jcc8(rng: np.random.Generator) -> bytes:
    # jcc rel8 with rel8=0: a conditional branch to fall-through —
    # valid encoding, layout-independent target.
    return bytes([0x70 + int(rng.integers(0, 16)), 0x00])


def _enc_jcc32(rng: np.random.Generator) -> bytes:
    # 0F 8x rel32 near-conditional form, rel32=0.
    return bytes([0x0F, 0x80 + int(rng.integers(0, 16)), 0, 0, 0, 0])


_PLAIN_ENCODERS = (
    _enc_nop, _enc_inc_dec, _enc_push_pop, _enc_mov_rr,
    _enc_xor_rr, _enc_test_rr, _enc_alu_imm8, _enc_jcc8, _enc_jcc32,
)

# Absolute-operand instruction templates: (prefix bytes, description).
# The 4-byte operand slot follows the prefix immediately.
_ABS_TEMPLATES = (
    b"\xA1",          # mov eax, [abs32]
    b"\xA3",          # mov [abs32], eax
    b"\x8B\x0D",      # mov ecx, [abs32]
    b"\xFF\x15",      # call dword ptr [abs32]
    b"\xFF\x25",      # jmp  dword ptr [abs32]
    b"\x68",          # push imm32 (address of a data object)
)


def generate_code(
    *,
    n_functions: int = 12,
    avg_function_size: int = 160,
    abs_ref_density: float = 0.08,
    rel_call_density: float = 0.05,
    data_section: str = ".data",
    data_size: int = 0x800,
    seed: int | None = None,
    entry_name: str = "DriverEntry",
) -> CodeLayout:
    """Generate a deterministic ``.text`` blob.

    ``abs_ref_density`` / ``rel_call_density`` are per-instruction
    probabilities of emitting an absolute-address instruction (which
    records an :class:`AbsRef`) or a ``CALL rel32`` to an already-placed
    function. The entry function is always first, carries the canonical
    prologue and one guaranteed ``DEC ECX`` followed by at least two
    more instruction bytes (the byte window experiment E1 overwrites).
    """
    if n_functions < 1:
        raise ValueError("need at least one function")
    rng = make_rng(seed)
    layout = CodeLayout(code=bytearray())
    code = layout.code

    def emit(b: bytes) -> int:
        off = len(code)
        code.extend(b)
        return off

    for fn_index in range(n_functions):
        name = entry_name if fn_index == 0 else f"fn_{fn_index:03d}"
        start = len(code)
        instr_offsets: list[int] = []

        instr_offsets.append(emit(PROLOGUE[:1]))
        instr_offsets.append(emit(PROLOGUE[1:]))

        if fn_index == 0:
            # Deterministic E1 target: DEC ECX then filler the overwrite
            # can spill into.
            instr_offsets.append(emit(bytes([OPC_DEC_ECX])))
            instr_offsets.append(emit(b"\x90"))
            instr_offsets.append(emit(b"\x90"))

        target = max(16, int(rng.normal(avg_function_size,
                                        avg_function_size / 4)))
        while len(code) - start < target:
            roll = rng.random()
            if roll < abs_ref_density:
                template = _ABS_TEMPLATES[int(rng.integers(0, len(_ABS_TEMPLATES)))]
                off = emit(template)
                slot = len(code)
                target_off = int(rng.integers(0, max(4, data_size - 4)))
                layout.refs.append(AbsRef(slot, data_section, target_off))
                emit(struct.pack("<I", 0))          # placeholder, builder fills
                instr_offsets.append(off)
            elif roll < abs_ref_density + rel_call_density and layout.functions:
                callee = layout.functions[int(rng.integers(0, len(layout.functions)))]
                off = emit(b"\xE8")
                next_ip = len(code) + 4
                emit(struct.pack("<i", callee.offset - next_ip))
                instr_offsets.append(off)
            else:
                enc = _PLAIN_ENCODERS[int(rng.integers(0, len(_PLAIN_ENCODERS)))]
                instr_offsets.append(emit(enc(rng)))

        instr_offsets.append(emit(EPILOGUE[:1]))   # pop ebp
        instr_offsets.append(emit(EPILOGUE[1:]))   # ret
        size = len(code) - start
        layout.functions.append(
            FunctionInfo(name, start, size, tuple(instr_offsets)))

        # Opcode cave: pad to 16-byte alignment, plus an occasional
        # deliberately roomy cave so inline hooking always finds space.
        pad = (-len(code)) % 16
        if fn_index % 4 == 1 or pad < 8:
            pad += 16 * int(rng.integers(1, 4))
        if pad:
            layout.caves.append(Cave(len(code), pad))
            emit(b"\x00" * pad)

    return layout
