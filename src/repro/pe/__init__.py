"""PE32 substrate: structures, builder, parser, relocations, codegen.

This package plays the role of the real Portable Executable toolchain
in the paper's environment — the format of every in-memory Windows
kernel module that ModChecker inspects (paper §IV-B, Fig. 3).
"""

from . import constants
from .builder import DriverBlueprint, ImportSpec, PEBuilder, build_driver
from .checksum import pe_checksum
from .disasm import (DisassemblyError, instruction_length,
                     instructions_covering, walk_instructions)
from .exports import build_export_block, parse_exports
from .imports import ImportedSymbol, parse_imports
from .codegen import (AbsRef, Cave, CodeLayout, FunctionInfo, generate_code,
                      OPC_DEC_ECX)
from .parser import PEImage, Region, map_file_to_memory
from .relocations import (apply_relocations, build_reloc_section,
                          parse_reloc_section, relocation_delta_sites)
from .structures import (DataDirectory, DosHeader, FileHeader, OptionalHeader,
                         SectionHeader)

__all__ = [
    "constants",
    "DriverBlueprint", "ImportSpec", "PEBuilder", "build_driver",
    "pe_checksum",
    "DisassemblyError", "instruction_length", "instructions_covering",
    "walk_instructions",
    "build_export_block", "parse_exports",
    "ImportedSymbol", "parse_imports",
    "AbsRef", "Cave", "CodeLayout", "FunctionInfo", "generate_code",
    "OPC_DEC_ECX",
    "PEImage", "Region", "map_file_to_memory",
    "apply_relocations", "build_reloc_section", "parse_reloc_section",
    "relocation_delta_sites",
    "DataDirectory", "DosHeader", "FileHeader", "OptionalHeader",
    "SectionHeader",
]
