"""PE32 driver image builder.

Synthesizes complete, structurally-faithful kernel-module files — the
stand-in for the real ``hal.dll``/``http.sys``/``dummy.sys`` binaries
the paper infects. A built driver has:

* DOS header + the canonical DOS stub ("This program cannot be run in
  DOS mode." — the bytes experiment E3 patches);
* NT headers (FILE + OPTIONAL with all 16 data directories, valid
  ``CheckSum``);
* ``.text`` from the synthetic code generator (absolute-address
  operands + relocations), ``.rdata`` with a real import block
  (descriptors, hint/name table, IAT) and a function-pointer table,
  ``.data``, an executable ``INIT`` section, and a genuine ``.reloc``
  section encoding every fixup site;
* file layout aligned to ``FileAlignment`` and memory layout aligned to
  ``SectionAlignment`` exactly as the XP-era linker would emit.

The result is a :class:`DriverBlueprint` carrying both the raw file
bytes (what the guest loader maps) and the ground-truth metadata
(functions, caves, fixups) that the attack simulators consult — the
"attacker has a disassembler" assumption.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import PEBuildError
from ..rng import derive_seed, make_rng
from . import constants as C
from .checksum import stamp_checksum
from .exports import build_export_block
from .codegen import Cave, CodeLayout, FunctionInfo, generate_code
from .relocations import build_reloc_section
from .structures import (DosHeader, FileHeader, OptionalHeader,
                         SectionHeader)

__all__ = ["ImportSpec", "DriverBlueprint", "PEBuilder", "build_driver"]


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class ImportSpec:
    """One imported DLL and the symbols pulled from it."""

    dll: str
    symbols: tuple[str, ...]


_DEFAULT_IMPORTS = (
    ImportSpec("ntoskrnl.exe", ("ExAllocatePoolWithTag", "ExFreePoolWithTag",
                                "KeBugCheckEx", "IoCreateDevice")),
    ImportSpec("HAL.dll", ("KfAcquireSpinLock", "KfReleaseSpinLock")),
)


@dataclass
class DriverBlueprint:
    """A fully-built driver: raw file bytes + ground-truth metadata."""

    name: str
    file_bytes: bytes
    e_lfanew: int
    dos_header: DosHeader
    file_header: FileHeader
    optional_header: OptionalHeader
    sections: list[SectionHeader]
    fixup_rvas: list[int]
    text_rva: int
    init_rva: int
    code_layout: CodeLayout
    init_layout: CodeLayout
    imports: tuple[ImportSpec, ...]
    iat_rva: int
    export_dir_rva: int = 0
    iat_slots: list[tuple[str, str, int]] = field(default_factory=list)
    #: file offset of the DOS stub message within file_bytes
    stub_offset: int = 0

    # -- convenience views ---------------------------------------------------

    @property
    def image_base(self) -> int:
        return self.optional_header.image_base

    @property
    def size_of_image(self) -> int:
        return self.optional_header.size_of_image

    def section(self, name: str) -> SectionHeader:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError(name)

    def functions_rva(self) -> list[tuple[str, int, int]]:
        """(name, rva, size) for every generated ``.text`` function."""
        return [(fn.name, self.text_rva + fn.offset, fn.size)
                for fn in self.code_layout.functions]

    def entry_function(self) -> FunctionInfo:
        return self.code_layout.functions[0]

    def caves_rva(self) -> list[Cave]:
        """Opcode caves translated to image RVAs."""
        return [Cave(self.text_rva + cave.offset, cave.size)
                for cave in self.code_layout.caves]


class PEBuilder:
    """Assembles one driver image. See module docstring for the layout."""

    def __init__(
        self,
        name: str,
        *,
        seed: int | None = None,
        image_base: int = 0x0001_0000,
        n_functions: int = 12,
        avg_function_size: int = 160,
        data_size: int = 0x800,
        imports: tuple[ImportSpec, ...] = _DEFAULT_IMPORTS,
        timestamp: int = 0x4F5A_2C00,      # fixed, like a real link date
        dos_stub_message: bytes = C.DOS_STUB_MESSAGE,
    ) -> None:
        if not name:
            raise PEBuildError("driver needs a name")
        self.name = name
        self.seed = derive_seed(seed, "pe-builder", name)
        self.image_base = image_base
        self.n_functions = n_functions
        self.avg_function_size = avg_function_size
        self.data_size = data_size
        self.imports = imports
        self.timestamp = timestamp
        self.dos_stub_message = dos_stub_message

    # -- pieces ---------------------------------------------------------------

    def _build_dos(self) -> tuple[DosHeader, bytes, int]:
        """DOS header + stub; returns (header, stub bytes, e_lfanew)."""
        stub = bytearray()
        # Tiny real-mode program: print message via int 21h, exit.
        stub += bytes([0x0E, 0x1F, 0xBA, 0x0E, 0x00, 0xB4, 0x09, 0xCD,
                       0x21, 0xB8, 0x01, 0x4C, 0xCD, 0x21])
        stub += self.dos_stub_message
        total = C.DOS_HEADER_SIZE + len(stub)
        e_lfanew = _align(total, 8)
        stub += b"\x00" * (e_lfanew - total)
        fields = [0x0090, 0x0003, 0x0000, 0x0004, 0x0000, 0xFFFF, 0x0000,
                  0x00B8, 0x0000, 0x0000, 0x0000, 0x0040, 0x0000, 0x0000]
        fields += [0] * (29 - len(fields))
        dos = DosHeader(e_fields=tuple(fields), e_lfanew=e_lfanew)
        return dos, bytes(stub), e_lfanew

    def _build_import_block(self, rdata_rva: int, base_off: int,
                            ) -> tuple[bytes, int, list[tuple[str, str, int]]]:
        """Import descriptors + hint/name table + IAT inside ``.rdata``.

        Returns (blob, IAT offset within blob, IAT slot records). On
        disk the IAT thunks hold hint/name RVAs; the guest loader
        overwrites them with resolved addresses, just like Windows.
        """
        n_syms = sum(len(spec.symbols) for spec in self.imports)
        n_dlls = len(self.imports)
        desc_size = 20 * (n_dlls + 1)
        # layout within blob: descriptors | OFT arrays | IAT arrays |
        # hint/name entries | dll name strings
        oft_off = desc_size
        thunks_bytes = 4 * (n_syms + n_dlls)       # +1 null per dll
        iat_off = oft_off + thunks_bytes
        names_off = iat_off + thunks_bytes

        hint_names: list[bytes] = []
        hint_name_offs: list[int] = []
        cursor = names_off
        for spec in self.imports:
            for sym in spec.symbols:
                entry = struct.pack("<H", 0) + sym.encode() + b"\x00"
                if len(entry) % 2:
                    entry += b"\x00"
                hint_name_offs.append(cursor)
                hint_names.append(entry)
                cursor += len(entry)
        dll_name_offs: list[int] = []
        dll_names: list[bytes] = []
        for spec in self.imports:
            raw = spec.dll.encode() + b"\x00"
            dll_name_offs.append(cursor)
            dll_names.append(raw)
            cursor += len(raw)

        blob = bytearray(cursor)
        iat_slots: list[tuple[str, str, int]] = []
        thunk_cursor = 0
        sym_index = 0
        descs = bytearray()
        for d, spec in enumerate(self.imports):
            oft_rva = rdata_rva + base_off + oft_off + 4 * thunk_cursor
            iat_rva = rdata_rva + base_off + iat_off + 4 * thunk_cursor
            descs += struct.pack("<IIIII", oft_rva, self.timestamp, 0,
                                 rdata_rva + base_off + dll_name_offs[d],
                                 iat_rva)
            for sym in spec.symbols:
                hn_rva = rdata_rva + base_off + hint_name_offs[sym_index]
                o = oft_off + 4 * thunk_cursor
                i = iat_off + 4 * thunk_cursor
                blob[o:o + 4] = struct.pack("<I", hn_rva)
                blob[i:i + 4] = struct.pack("<I", hn_rva)
                iat_slots.append((spec.dll, sym,
                                  rdata_rva + base_off + i))
                sym_index += 1
                thunk_cursor += 1
            thunk_cursor += 1                      # null terminator thunk
        descs += b"\x00" * 20                      # null descriptor
        blob[:desc_size] = descs.ljust(desc_size, b"\x00")
        for off, entry in zip(hint_name_offs, hint_names):
            blob[off:off + len(entry)] = entry
        for off, raw in zip(dll_name_offs, dll_names):
            blob[off:off + len(raw)] = raw
        return bytes(blob), iat_off, iat_slots

    # -- assembly --------------------------------------------------------------

    def build(self) -> DriverBlueprint:
        rng = make_rng(self.seed)
        dos, stub, e_lfanew = self._build_dos()

        text_layout = generate_code(
            n_functions=self.n_functions,
            avg_function_size=self.avg_function_size,
            data_size=self.data_size,
            seed=derive_seed(self.seed, "text"),
            entry_name="DriverEntry")
        init_layout = generate_code(
            n_functions=2, avg_function_size=64,
            data_size=self.data_size,
            seed=derive_seed(self.seed, "init"),
            entry_name="DriverInit")

        sec_align = C.DEFAULT_SECTION_ALIGNMENT
        file_align = C.DEFAULT_FILE_ALIGNMENT

        # --- provisional layout: assign RVAs in canonical order -------------
        headers_size_est = (e_lfanew + 4 + FileHeader.SIZE
                            + OptionalHeader.SIZE + 5 * SectionHeader.SIZE)
        size_of_headers = _align(headers_size_est, file_align)

        text_rva = _align(max(size_of_headers, sec_align), sec_align)
        text_data = bytearray(text_layout.code)

        rdata_rva = _align(text_rva + len(text_data), sec_align)
        # .rdata = strings | export block | function-pointer table |
        #          import block
        strings = bytearray()
        strings += f"\\Driver\\{self.name}\x00".encode()
        strings += f"{self.name} (c) UNO reproduction\x00".encode()
        strings += b"\x00" * ((-len(strings)) % 4)
        export_off = len(strings)
        export_blob = build_export_block(
            self.name,
            [(fn.name, text_rva + fn.offset) for fn in text_layout.functions],
            rdata_rva + export_off, timestamp=self.timestamp)
        export_blob += b"\x00" * ((-len(export_blob)) % 4)
        fnptr_off = export_off + len(export_blob)
        fn_table = bytearray()
        for fn in text_layout.functions:
            fn_table += struct.pack("<I", 0)       # patched below (abs addr)
        import_off = fnptr_off + len(fn_table)
        import_blob, iat_rel_off, iat_slots = self._build_import_block(
            rdata_rva, import_off)
        rdata_data = bytearray(strings + export_blob + fn_table + import_blob)
        iat_rva = rdata_rva + import_off + iat_rel_off
        export_dir_rva = rdata_rva + export_off

        data_rva = _align(rdata_rva + len(rdata_data), sec_align)
        data_data = bytearray(rng.integers(0, 256, size=self.data_size,
                                           dtype="uint8").tobytes())
        # a few pointer slots inside .data (fixups) referencing .text
        n_data_ptrs = 6
        for k in range(n_data_ptrs):
            off = 16 * k
            data_data[off:off + 4] = struct.pack("<I", 0)

        init_rva = _align(data_rva + len(data_data), sec_align)
        init_data = bytearray(init_layout.code)

        reloc_rva = _align(init_rva + len(init_data), sec_align)

        section_rvas = {".text": text_rva, ".rdata": rdata_rva,
                        ".data": data_rva, "INIT": init_rva}

        # --- resolve absolute references & collect fixups --------------------
        fixup_rvas: list[int] = []

        def patch_abs(buf: bytearray, slot_off: int, sec_rva: int,
                      target_rva: int) -> None:
            buf[slot_off:slot_off + 4] = struct.pack(
                "<I", (self.image_base + target_rva) & 0xFFFFFFFF)
            fixup_rvas.append(sec_rva + slot_off)

        for ref in text_layout.refs:
            patch_abs(text_data, ref.slot_offset, text_rva,
                      section_rvas[ref.target_section] + ref.target_offset)
        for ref in init_layout.refs:
            patch_abs(init_data, ref.slot_offset, init_rva,
                      section_rvas[ref.target_section] + ref.target_offset)
        for i, fn in enumerate(text_layout.functions):
            patch_abs(rdata_data, fnptr_off + 4 * i, rdata_rva,
                      text_rva + fn.offset)
        for k in range(n_data_ptrs):
            fn = text_layout.functions[k % len(text_layout.functions)]
            patch_abs(data_data, 16 * k, data_rva, text_rva + fn.offset)

        reloc_data = bytearray(build_reloc_section(fixup_rvas))
        size_of_image = _align(reloc_rva + max(len(reloc_data), 1), sec_align)

        # --- section headers --------------------------------------------------
        raw_cursor = size_of_headers

        def make_section(name: str, rva: int, data: bytearray,
                         characteristics: int) -> SectionHeader:
            nonlocal raw_cursor
            raw_size = _align(len(data), file_align)
            hdr = SectionHeader(
                name=name, virtual_size=len(data), virtual_address=rva,
                size_of_raw_data=raw_size, pointer_to_raw_data=raw_cursor,
                characteristics=characteristics)
            raw_cursor += raw_size
            return hdr

        sec_text = make_section(".text", text_rva, text_data,
                                C.TEXT_CHARACTERISTICS)
        sec_rdata = make_section(".rdata", rdata_rva, rdata_data,
                                 C.RDATA_CHARACTERISTICS)
        sec_data = make_section(".data", data_rva, data_data,
                                C.DATA_CHARACTERISTICS)
        sec_init = make_section("INIT", init_rva, init_data,
                                C.TEXT_CHARACTERISTICS | C.SCN_MEM_DISCARDABLE)
        sec_reloc = make_section(".reloc", reloc_rva, reloc_data,
                                 C.RELOC_CHARACTERISTICS)
        sections = [sec_text, sec_rdata, sec_data, sec_init, sec_reloc]

        file_header = FileHeader(
            number_of_sections=len(sections),
            time_date_stamp=self.timestamp,
            characteristics=(C.FILE_EXECUTABLE_IMAGE | C.FILE_32BIT_MACHINE
                             | C.FILE_LINE_NUMS_STRIPPED
                             | C.FILE_LOCAL_SYMS_STRIPPED))

        optional = OptionalHeader(
            size_of_code=sec_text.size_of_raw_data + sec_init.size_of_raw_data,
            size_of_initialized_data=(sec_rdata.size_of_raw_data
                                      + sec_data.size_of_raw_data
                                      + sec_reloc.size_of_raw_data),
            address_of_entry_point=text_rva + text_layout.functions[0].offset,
            base_of_code=text_rva,
            base_of_data=rdata_rva,
            image_base=self.image_base,
            size_of_image=size_of_image,
            size_of_headers=size_of_headers,
        )
        optional = optional.with_directory(C.DIR_EXPORT, export_dir_rva,
                                           len(export_blob))
        optional = optional.with_directory(C.DIR_IMPORT,
                                           rdata_rva + import_off,
                                           len(import_blob))
        optional = optional.with_directory(C.DIR_BASERELOC, reloc_rva,
                                           len(reloc_data))

        # --- serialize the file ------------------------------------------------
        out = bytearray()
        out += dos.pack()
        out += stub
        assert len(out) == e_lfanew
        out += C.NT_SIGNATURE
        out += file_header.pack()
        out += optional.pack()
        for sec in sections:
            out += sec.pack()
        out += b"\x00" * (size_of_headers - len(out))
        for sec, data in zip(sections, (text_data, rdata_data, data_data,
                                        init_data, reloc_data)):
            assert len(out) == sec.pointer_to_raw_data
            out += bytes(data).ljust(sec.size_of_raw_data, b"\x00")

        stamp_checksum(out, e_lfanew)
        # Re-read optional header so the blueprint carries the stamped
        # checksum value.
        opt_off = e_lfanew + 4 + FileHeader.SIZE
        optional = OptionalHeader.unpack(
            bytes(out[opt_off:opt_off + OptionalHeader.SIZE]))

        return DriverBlueprint(
            name=self.name, file_bytes=bytes(out), e_lfanew=e_lfanew,
            dos_header=dos, file_header=file_header, optional_header=optional,
            sections=sections, fixup_rvas=sorted(fixup_rvas),
            text_rva=text_rva, init_rva=init_rva,
            code_layout=text_layout, init_layout=init_layout,
            imports=self.imports, iat_rva=iat_rva,
            export_dir_rva=export_dir_rva, iat_slots=iat_slots,
            stub_offset=C.DOS_HEADER_SIZE + 14)


def build_driver(name: str, **kwargs) -> DriverBlueprint:
    """One-call convenience wrapper around :class:`PEBuilder`."""
    return PEBuilder(name, **kwargs).build()
