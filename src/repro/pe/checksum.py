"""PE optional-header checksum (the ``CheckSum`` field).

Implements the classic MS algorithm (16-bit one's-complement style sum
over the whole file with the checksum field itself zeroed, plus the file
length). Drivers are required to carry a valid checksum; the builder
stamps it and tests verify round-trips. Attack E4's header rewrite
deliberately leaves the checksum stale — one more header discrepancy for
ModChecker to notice.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["pe_checksum", "CHECKSUM_FIELD_OFFSET_IN_OPTIONAL"]

#: Offset of CheckSum within IMAGE_OPTIONAL_HEADER (PE32).
CHECKSUM_FIELD_OFFSET_IN_OPTIONAL = 64


def pe_checksum(data: bytes, checksum_file_offset: int) -> int:
    """Compute the PE image checksum of ``data``.

    ``checksum_file_offset`` is the file offset of the 4-byte CheckSum
    field, which is treated as zero during summation (so a stamped file
    validates against itself).
    """
    buf = bytearray(data)
    if checksum_file_offset + 4 > len(buf):
        raise ValueError("checksum field outside file")
    buf[checksum_file_offset:checksum_file_offset + 4] = b"\x00\x00\x00\x00"
    if len(buf) % 2:
        buf.append(0)

    words = np.frombuffer(bytes(buf), dtype="<u2").astype(np.uint64)
    total = int(words.sum())
    # Fold carries back into 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (total + len(data)) & 0xFFFFFFFF


def stamp_checksum(file_bytes: bytearray, e_lfanew: int) -> int:
    """Compute and write the checksum into a built PE file; return it."""
    # CheckSum lives at e_lfanew + 4 (signature) + 20 (file header) + 64.
    off = e_lfanew + 4 + 20 + CHECKSUM_FIELD_OFFSET_IN_OPTIONAL
    value = pe_checksum(bytes(file_bytes), off)
    file_bytes[off:off + 4] = struct.pack("<I", value)
    return value
