"""Import-table parsing: ``IMAGE_IMPORT_DESCRIPTOR`` chains.

The builder writes a real import block (descriptors, hint/name table,
IAT); this module reads it back from image bytes, so the guest loader
can resolve imports the way Windows does — from the file alone, with no
out-of-band metadata. Layout per descriptor (20 bytes)::

    +0  OriginalFirstThunk   RVA of the lookup (OFT) array
    +4  TimeDateStamp
    +8  ForwarderChain
    +12 Name                 RVA of the DLL name string
    +16 FirstThunk           RVA of the IAT array (loader overwrites)

Both thunk arrays hold RVAs of ``IMAGE_IMPORT_BY_NAME`` (WORD hint +
ASCII name) and end with a zero thunk.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import PEFormatError

__all__ = ["ImportedSymbol", "parse_imports"]

_DESCRIPTOR = struct.Struct("<IIIII")
#: sanity bound: more imports than this means a corrupted table
MAX_IMPORTS = 4096


@dataclass(frozen=True)
class ImportedSymbol:
    """One resolved-at-load import: which DLL, which name, which slot."""

    dll: str
    symbol: str
    iat_slot_rva: int
    hint: int = 0


def _read_cstr(image: bytes, rva: int, limit: int = 256) -> str:
    if rva >= len(image):
        raise PEFormatError(f"string RVA {rva:#x} outside image")
    end = image.find(b"\x00", rva, rva + limit)
    if end < 0:
        raise PEFormatError(f"unterminated string at {rva:#x}")
    return image[rva:end].decode("ascii", errors="replace")


def parse_imports(image: bytes, dir_rva: int,
                  dir_size: int) -> list[ImportedSymbol]:
    """Decode the import directory of a memory-mapped image.

    Uses the OFT (lookup) array for names — the IAT may already have
    been overwritten by a loader — and returns IAT slot RVAs in
    descriptor order. Bounds-checked against hostile images.
    """
    if dir_size == 0:
        return []
    if dir_rva + _DESCRIPTOR.size > len(image):
        raise PEFormatError("import directory outside image")

    out: list[ImportedSymbol] = []
    pos = dir_rva
    while True:
        if pos + _DESCRIPTOR.size > len(image):
            raise PEFormatError("import descriptor table truncated")
        oft, _stamp, _fwd, name_rva, iat = _DESCRIPTOR.unpack_from(image, pos)
        if oft == 0 and name_rva == 0 and iat == 0:
            break                                # null terminator
        dll = _read_cstr(image, name_rva)
        lookup = oft or iat                      # some linkers omit OFT
        index = 0
        while True:
            slot_rva = lookup + 4 * index
            if slot_rva + 4 > len(image):
                raise PEFormatError(f"{dll}: thunk array runs off image")
            thunk, = struct.unpack_from("<I", image, slot_rva)
            if thunk == 0:
                break
            if thunk & 0x8000_0000:
                # import by ordinal: no name string
                out.append(ImportedSymbol(dll, f"#{thunk & 0xFFFF}",
                                          iat + 4 * index,
                                          hint=thunk & 0xFFFF))
            else:
                if thunk + 2 > len(image):
                    raise PEFormatError(f"{dll}: hint/name outside image")
                hint, = struct.unpack_from("<H", image, thunk)
                symbol = _read_cstr(image, thunk + 2)
                out.append(ImportedSymbol(dll, symbol, iat + 4 * index,
                                          hint=hint))
            index += 1
            if len(out) > MAX_IMPORTS:
                raise PEFormatError("implausibly many imports")
        pos += _DESCRIPTOR.size
    return out
