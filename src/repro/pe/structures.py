"""PE32 header structures: real little-endian byte (de)serialisers.

Each dataclass mirrors one on-disk/in-memory structure from the PE/COFF
specification (Fig. 3 of the paper shows how they chain together):

``IMAGE_DOS_HEADER`` → ``e_lfanew`` → ``IMAGE_NT_HEADERS`` (Signature +
``IMAGE_FILE_HEADER`` + ``IMAGE_OPTIONAL_HEADER``) → an array of
``IMAGE_SECTION_HEADER``.

The serialisers produce genuine byte layouts so images round-trip
through raw guest memory: ModChecker's parser reads these bytes back
out of a foreign VM exactly as the real tool reads a real driver.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from ..errors import PEFormatError
from . import constants as C

__all__ = [
    "DosHeader",
    "FileHeader",
    "DataDirectory",
    "OptionalHeader",
    "SectionHeader",
    "pack_section_name",
    "unpack_section_name",
]


_DOS_FMT = "<2s29HI"            # e_magic, 29 WORD fields, e_lfanew
_FILE_FMT = "<HHIIIHH"
_OPT_FIXED_FMT = "<HBBIIIIIIIIIHHHHHHIIIIHHIIIIII"
_SECTION_FMT = "<8sIIIIIIHHI"


def pack_section_name(name: str) -> bytes:
    """Encode a section name into its fixed 8-byte field (NUL padded)."""
    raw = name.encode("ascii")
    if len(raw) > 8:
        raise PEFormatError(f"section name too long: {name!r}")
    return raw.ljust(8, b"\x00")


def unpack_section_name(raw: bytes) -> str:
    """Decode the fixed 8-byte name field back into a string."""
    return raw.rstrip(b"\x00").decode("ascii", errors="replace")


@dataclass(frozen=True)
class DosHeader:
    """``IMAGE_DOS_HEADER`` — 64 bytes.

    Only ``e_magic`` ("MZ") and ``e_lfanew`` (file offset of the NT
    headers) matter to a PE loader; the 29 intermediate WORDs are kept
    verbatim so hashing the header region is meaningful.
    """

    e_magic: bytes = C.DOS_MAGIC
    e_fields: tuple[int, ...] = field(default_factory=lambda: (0,) * 29)
    e_lfanew: int = 0

    SIZE = C.DOS_HEADER_SIZE

    def pack(self) -> bytes:
        if len(self.e_fields) != 29:
            raise PEFormatError("DOS header must carry exactly 29 WORD fields")
        return struct.pack(_DOS_FMT, self.e_magic, *self.e_fields, self.e_lfanew)

    @classmethod
    def unpack(cls, data: bytes) -> "DosHeader":
        if len(data) < cls.SIZE:
            raise PEFormatError("short read for IMAGE_DOS_HEADER")
        fields = struct.unpack(_DOS_FMT, bytes(data[: cls.SIZE]))
        hdr = cls(e_magic=fields[0], e_fields=tuple(fields[1:30]),
                  e_lfanew=fields[30])
        if hdr.e_magic != C.DOS_MAGIC:
            raise PEFormatError(
                f"bad DOS magic {hdr.e_magic!r} (expected {C.DOS_MAGIC!r})")
        return hdr


@dataclass(frozen=True)
class FileHeader:
    """``IMAGE_FILE_HEADER`` — 20 bytes (a.k.a. the COFF header)."""

    machine: int = C.MACHINE_I386
    number_of_sections: int = 0
    time_date_stamp: int = 0
    pointer_to_symbol_table: int = 0
    number_of_symbols: int = 0
    size_of_optional_header: int = C.OPTIONAL_HEADER_SIZE_PE32
    characteristics: int = C.FILE_EXECUTABLE_IMAGE | C.FILE_32BIT_MACHINE

    SIZE = C.FILE_HEADER_SIZE

    def pack(self) -> bytes:
        return struct.pack(
            _FILE_FMT, self.machine, self.number_of_sections,
            self.time_date_stamp, self.pointer_to_symbol_table,
            self.number_of_symbols, self.size_of_optional_header,
            self.characteristics)

    @classmethod
    def unpack(cls, data: bytes) -> "FileHeader":
        if len(data) < cls.SIZE:
            raise PEFormatError("short read for IMAGE_FILE_HEADER")
        f = struct.unpack(_FILE_FMT, bytes(data[: cls.SIZE]))
        return cls(*f)


@dataclass(frozen=True)
class DataDirectory:
    """One ``IMAGE_DATA_DIRECTORY`` entry: (VirtualAddress, Size)."""

    virtual_address: int = 0
    size: int = 0

    SIZE = 8

    def pack(self) -> bytes:
        return struct.pack("<II", self.virtual_address, self.size)

    @classmethod
    def unpack(cls, data: bytes) -> "DataDirectory":
        va, size = struct.unpack("<II", bytes(data[:8]))
        return cls(va, size)


@dataclass(frozen=True)
class OptionalHeader:
    """``IMAGE_OPTIONAL_HEADER`` (PE32 variant) — 224 bytes.

    "Optional" is historical; it is mandatory for images. Carries the
    loader-relevant fields: ``image_base`` (preferred load address,
    whose delta from the actual base drives relocation), section/file
    alignment, ``size_of_image`` and the 16 data directories.
    """

    magic: int = C.OPTIONAL_MAGIC_PE32
    major_linker_version: int = 7
    minor_linker_version: int = 10
    size_of_code: int = 0
    size_of_initialized_data: int = 0
    size_of_uninitialized_data: int = 0
    address_of_entry_point: int = 0
    base_of_code: int = 0
    base_of_data: int = 0
    image_base: int = 0x0001_0000
    section_alignment: int = C.DEFAULT_SECTION_ALIGNMENT
    file_alignment: int = C.DEFAULT_FILE_ALIGNMENT
    major_os_version: int = 5
    minor_os_version: int = 1          # 5.1 == Windows XP
    major_image_version: int = 5
    minor_image_version: int = 1
    major_subsystem_version: int = 5
    minor_subsystem_version: int = 1
    win32_version_value: int = 0
    size_of_image: int = 0
    size_of_headers: int = 0
    checksum: int = 0
    subsystem: int = C.SUBSYSTEM_NATIVE
    dll_characteristics: int = 0
    size_of_stack_reserve: int = 0x40000
    size_of_stack_commit: int = 0x1000
    size_of_heap_reserve: int = 0x100000
    size_of_heap_commit: int = 0x1000
    loader_flags: int = 0
    number_of_rva_and_sizes: int = C.DATA_DIRECTORY_COUNT
    data_directories: tuple[DataDirectory, ...] = field(
        default_factory=lambda: tuple(
            DataDirectory() for _ in range(C.DATA_DIRECTORY_COUNT)))

    SIZE = C.OPTIONAL_HEADER_SIZE_PE32

    def pack(self) -> bytes:
        if len(self.data_directories) != C.DATA_DIRECTORY_COUNT:
            raise PEFormatError("optional header needs exactly 16 directories")
        fixed = struct.pack(
            _OPT_FIXED_FMT,
            self.magic, self.major_linker_version, self.minor_linker_version,
            self.size_of_code, self.size_of_initialized_data,
            self.size_of_uninitialized_data, self.address_of_entry_point,
            self.base_of_code, self.base_of_data, self.image_base,
            self.section_alignment, self.file_alignment,
            self.major_os_version, self.minor_os_version,
            self.major_image_version, self.minor_image_version,
            self.major_subsystem_version, self.minor_subsystem_version,
            self.win32_version_value, self.size_of_image,
            self.size_of_headers, self.checksum, self.subsystem,
            self.dll_characteristics, self.size_of_stack_reserve,
            self.size_of_stack_commit, self.size_of_heap_reserve,
            self.size_of_heap_commit, self.loader_flags,
            self.number_of_rva_and_sizes)
        dirs = b"".join(d.pack() for d in self.data_directories)
        out = fixed + dirs
        if len(out) != self.SIZE:
            raise PEFormatError(
                f"optional header packed to {len(out)} bytes, expected {self.SIZE}")
        return out

    @classmethod
    def unpack(cls, data: bytes) -> "OptionalHeader":
        if len(data) < cls.SIZE:
            raise PEFormatError("short read for IMAGE_OPTIONAL_HEADER")
        fixed_size = struct.calcsize(_OPT_FIXED_FMT)
        f = struct.unpack(_OPT_FIXED_FMT, bytes(data[:fixed_size]))
        if f[0] != C.OPTIONAL_MAGIC_PE32:
            raise PEFormatError(
                f"unsupported optional-header magic {f[0]:#06x} (PE32 only)")
        dirs = []
        for i in range(C.DATA_DIRECTORY_COUNT):
            off = fixed_size + i * DataDirectory.SIZE
            dirs.append(DataDirectory.unpack(data[off:off + 8]))
        return cls(*f, data_directories=tuple(dirs))

    def with_directory(self, index: int, va: int, size: int) -> "OptionalHeader":
        """Return a copy with data directory ``index`` set to (va, size)."""
        dirs = list(self.data_directories)
        dirs[index] = DataDirectory(va, size)
        return replace(self, data_directories=tuple(dirs))


@dataclass(frozen=True)
class SectionHeader:
    """``IMAGE_SECTION_HEADER`` — 40 bytes.

    ``virtual_address``/``virtual_size`` describe the section's
    in-memory placement (what Module-Parser consumes per Algorithm 1);
    ``pointer_to_raw_data``/``size_of_raw_data`` describe the on-disk
    placement; ``characteristics`` flags executable/read-only status.
    """

    name: str = ""
    virtual_size: int = 0
    virtual_address: int = 0
    size_of_raw_data: int = 0
    pointer_to_raw_data: int = 0
    pointer_to_relocations: int = 0
    pointer_to_linenumbers: int = 0
    number_of_relocations: int = 0
    number_of_linenumbers: int = 0
    characteristics: int = 0

    SIZE = C.SECTION_HEADER_SIZE

    def pack(self) -> bytes:
        return struct.pack(
            _SECTION_FMT, pack_section_name(self.name), self.virtual_size,
            self.virtual_address, self.size_of_raw_data,
            self.pointer_to_raw_data, self.pointer_to_relocations,
            self.pointer_to_linenumbers, self.number_of_relocations,
            self.number_of_linenumbers, self.characteristics)

    @classmethod
    def unpack(cls, data: bytes) -> "SectionHeader":
        if len(data) < cls.SIZE:
            raise PEFormatError("short read for IMAGE_SECTION_HEADER")
        f = struct.unpack(_SECTION_FMT, bytes(data[: cls.SIZE]))
        return cls(unpack_section_name(f[0]), *f[1:])

    @property
    def is_executable(self) -> bool:
        """True when the section holds executable code (MEM_EXECUTE)."""
        return bool(self.characteristics & C.SCN_MEM_EXECUTE)

    @property
    def is_writable(self) -> bool:
        return bool(self.characteristics & C.SCN_MEM_WRITE)

    @property
    def is_readonly_code(self) -> bool:
        """True for read-only executable content — what ModChecker hashes."""
        return self.is_executable and not self.is_writable
