"""PE32 format constants.

Values are taken from the Microsoft PE/COFF specification ("Peering
inside the PE", MSDN — reference [23] of the paper). Only the subset a
32-bit XP-era kernel module exercises is defined, but the values are the
real ones so images built here are structurally faithful.
"""

from __future__ import annotations

# --- magic numbers ---------------------------------------------------------

DOS_MAGIC = b"MZ"                # IMAGE_DOS_HEADER.e_magic
NT_SIGNATURE = b"PE\x00\x00"     # IMAGE_NT_HEADERS.Signature
OPTIONAL_MAGIC_PE32 = 0x010B     # IMAGE_OPTIONAL_HEADER.Magic (PE32)

# --- sizes (bytes) ---------------------------------------------------------

DOS_HEADER_SIZE = 64
FILE_HEADER_SIZE = 20
OPTIONAL_HEADER_SIZE_PE32 = 224  # incl. 16 data directories
SECTION_HEADER_SIZE = 40
DATA_DIRECTORY_COUNT = 16
PAGE_SIZE = 0x1000

# --- IMAGE_FILE_HEADER.Machine ---------------------------------------------

MACHINE_I386 = 0x014C

# --- IMAGE_FILE_HEADER.Characteristics -------------------------------------

FILE_RELOCS_STRIPPED = 0x0001
FILE_EXECUTABLE_IMAGE = 0x0002
FILE_LINE_NUMS_STRIPPED = 0x0004
FILE_LOCAL_SYMS_STRIPPED = 0x0008
FILE_32BIT_MACHINE = 0x0100
FILE_DLL = 0x2000

# --- IMAGE_OPTIONAL_HEADER.Subsystem ---------------------------------------

SUBSYSTEM_NATIVE = 0x0001        # drivers are "native" subsystem images

# --- IMAGE_SECTION_HEADER.Characteristics ----------------------------------

SCN_CNT_CODE = 0x00000020
SCN_CNT_INITIALIZED_DATA = 0x00000040
SCN_CNT_UNINITIALIZED_DATA = 0x00000080
SCN_MEM_DISCARDABLE = 0x02000000
SCN_MEM_EXECUTE = 0x20000000
SCN_MEM_READ = 0x40000000
SCN_MEM_WRITE = 0x80000000

#: Characteristics of a typical ``.text`` section.
TEXT_CHARACTERISTICS = SCN_CNT_CODE | SCN_MEM_EXECUTE | SCN_MEM_READ
#: Characteristics of a typical read-only data section.
RDATA_CHARACTERISTICS = SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ
#: Characteristics of a typical writable data section.
DATA_CHARACTERISTICS = SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_WRITE
#: Characteristics of a ``.reloc`` section.
RELOC_CHARACTERISTICS = (
    SCN_CNT_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_DISCARDABLE
)

# --- data directory indices -------------------------------------------------

DIR_EXPORT = 0
DIR_IMPORT = 1
DIR_BASERELOC = 5

# --- base relocation types ---------------------------------------------------

REL_BASED_ABSOLUTE = 0           # padding entry, no fixup
REL_BASED_HIGHLOW = 3            # full 32-bit fixup (the only one XP drivers need)

# --- DOS stub ----------------------------------------------------------------

#: The canonical DOS stub message every MS linker emits. Experiment E3
#: patches the "DOS" inside it to "CHK".
DOS_STUB_MESSAGE = b"This program cannot be run in DOS mode.\r\r\n$"

#: Default alignment values used by the XP-era linker for drivers.
DEFAULT_SECTION_ALIGNMENT = 0x1000   # in-memory alignment (one page)
DEFAULT_FILE_ALIGNMENT = 0x200

#: Canonical kernel-module section names in layout order.
CANONICAL_SECTIONS = (".text", ".rdata", ".data", "INIT", ".reloc")
