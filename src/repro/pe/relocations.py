"""Base relocations: ``IMAGE_BASE_RELOCATION`` blocks (``.reloc``).

A PE image stores absolute 32-bit addresses computed against its
*preferred* ``ImageBase``. When the loader maps the image somewhere
else it adds ``delta = actual_base - preferred_base`` to every fixup
site listed in the ``.reloc`` section. This module builds, parses and
applies those blocks with the real on-disk encoding:

* each block covers one 4 KiB page: ``DWORD VirtualAddress`` (page RVA),
  ``DWORD SizeOfBlock``, then ``WORD`` entries of ``type << 12 | offset``;
* blocks are padded with a ``REL_BASED_ABSOLUTE`` entry to a DWORD
  boundary, exactly as linkers emit them.

The loader's application of these fixups is what makes the same module
differ byte-for-byte between two VMs — the situation Algorithm 2 undoes.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import RelocationError
from .constants import PAGE_SIZE, REL_BASED_ABSOLUTE, REL_BASED_HIGHLOW

__all__ = [
    "build_reloc_section",
    "parse_reloc_section",
    "apply_relocations",
    "relocation_delta_sites",
]


def build_reloc_section(fixup_rvas: Iterable[int]) -> bytes:
    """Encode HIGHLOW fixup RVAs into ``.reloc`` section bytes.

    ``fixup_rvas`` are image-relative addresses of 32-bit slots to be
    rebased. They are grouped per page and sorted, matching linker
    output. Returns ``b""`` for an empty iterable (a valid, if unusual,
    reloc section).
    """
    rvas = sorted(set(int(r) for r in fixup_rvas))
    if any(r < 0 for r in rvas):
        raise RelocationError("negative fixup RVA")
    out = bytearray()
    i = 0
    while i < len(rvas):
        page = rvas[i] & ~(PAGE_SIZE - 1)
        entries: list[int] = []
        while i < len(rvas) and (rvas[i] & ~(PAGE_SIZE - 1)) == page:
            offset = rvas[i] - page
            entries.append((REL_BASED_HIGHLOW << 12) | offset)
            i += 1
        if len(entries) % 2:                      # pad block to DWORD size
            entries.append(REL_BASED_ABSOLUTE << 12)
        size = 8 + 2 * len(entries)
        out += struct.pack("<II", page, size)
        out += struct.pack(f"<{len(entries)}H", *entries)
    return bytes(out)


def parse_reloc_section(data: bytes) -> list[int]:
    """Decode ``.reloc`` bytes back into the sorted list of fixup RVAs.

    Inverse of :func:`build_reloc_section`; padding entries are
    discarded. Raises :class:`RelocationError` on truncated or
    malformed blocks.
    """
    rvas: list[int] = []
    pos = 0
    data = bytes(data)
    while pos + 8 <= len(data):
        page, size = struct.unpack_from("<II", data, pos)
        if size == 0:
            break                                  # linker zero-terminator
        if size < 8 or size % 2 or pos + size > len(data):
            raise RelocationError(
                f"malformed relocation block at {pos} (size {size})")
        count = (size - 8) // 2
        entries = struct.unpack_from(f"<{count}H", data, pos + 8)
        for entry in entries:
            rtype, offset = entry >> 12, entry & 0x0FFF
            if rtype == REL_BASED_ABSOLUTE:
                continue
            if rtype != REL_BASED_HIGHLOW:
                raise RelocationError(f"unsupported relocation type {rtype}")
            rvas.append(page + offset)
        pos += size
    return sorted(rvas)


def apply_relocations(image: bytearray, fixup_rvas: Sequence[int],
                      delta: int) -> int:
    """Add ``delta`` to every 32-bit slot named in ``fixup_rvas``.

    ``image`` is the memory-mapped module (RVA-indexed). Arithmetic
    wraps at 2**32 like the real loader's. Returns the number of slots
    patched. Vectorised with numpy: the fixup list for a large driver
    can run to thousands of sites, and this runs once per module load
    in every simulated VM.
    """
    if delta % (1 << 32) == 0 or not fixup_rvas:
        return 0
    arr = np.frombuffer(image, dtype=np.uint8)     # writable view
    idx = np.asarray(fixup_rvas, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() + 4 > len(image)):
        raise RelocationError("fixup site outside image")
    # Gather the 4 bytes of each slot into little-endian uint32s.
    slots = (arr[idx].astype(np.uint32)
             | arr[idx + 1].astype(np.uint32) << 8
             | arr[idx + 2].astype(np.uint32) << 16
             | arr[idx + 3].astype(np.uint32) << 24)
    slots = (slots + np.uint32(delta & 0xFFFFFFFF)).astype(np.uint32)
    arr[idx] = (slots & 0xFF).astype(np.uint8)
    arr[idx + 1] = (slots >> 8 & 0xFF).astype(np.uint8)
    arr[idx + 2] = (slots >> 16 & 0xFF).astype(np.uint8)
    arr[idx + 3] = (slots >> 24 & 0xFF).astype(np.uint8)
    return int(idx.size)


def relocation_delta_sites(a: bytes, b: bytes) -> list[int]:
    """Offsets where two equally-sized byte strings differ.

    Diagnostic helper used by tests and the RVA-adjustment ablation:
    for two clean relocated copies, every differing offset must fall
    inside a 4-byte window starting at some fixup site.
    """
    if len(a) != len(b):
        raise RelocationError("buffers differ in length")
    av = np.frombuffer(bytes(a), dtype=np.uint8)
    bv = np.frombuffer(bytes(b), dtype=np.uint8)
    return np.nonzero(av != bv)[0].tolist()
