"""``IMAGE_EXPORT_DIRECTORY`` — real export tables.

Every catalog driver exports its generated functions through a genuine
export directory (40-byte header + address/name/ordinal tables + name
strings), exactly as ``ntoskrnl.exe``/``hal.dll`` export the symbols
drivers import. The guest loader resolves imports by *parsing these
bytes out of the exporter's in-memory image* — no Python-side symbol
table crosses the guest boundary, so an introspection tool could do the
same resolution from outside.

Layout written by :func:`build_export_block` (all RVAs image-relative)::

    +0   IMAGE_EXPORT_DIRECTORY (40 bytes)
    +40  AddressOfFunctions:   DWORD[n]   (function RVAs)
    ...  AddressOfNames:       DWORD[n]   (name-string RVAs)
    ...  AddressOfNameOrdinals: WORD[n]
    ...  Name + exported-name strings (NUL terminated)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import PEFormatError

__all__ = ["ExportDirectory", "build_export_block", "parse_exports",
           "EXPORT_DIRECTORY_SIZE"]

EXPORT_DIRECTORY_SIZE = 40
_DIR = struct.Struct("<IIHHIIIIIII")


@dataclass(frozen=True)
class ExportDirectory:
    """Decoded IMAGE_EXPORT_DIRECTORY header."""

    characteristics: int
    time_date_stamp: int
    major_version: int
    minor_version: int
    name_rva: int
    ordinal_base: int
    number_of_functions: int
    number_of_names: int
    address_of_functions: int
    address_of_names: int
    address_of_name_ordinals: int

    def pack(self) -> bytes:
        return _DIR.pack(self.characteristics, self.time_date_stamp,
                         self.major_version, self.minor_version,
                         self.name_rva, self.ordinal_base,
                         self.number_of_functions, self.number_of_names,
                         self.address_of_functions, self.address_of_names,
                         self.address_of_name_ordinals)

    @classmethod
    def unpack(cls, data: bytes) -> "ExportDirectory":
        if len(data) < EXPORT_DIRECTORY_SIZE:
            raise PEFormatError("short read for IMAGE_EXPORT_DIRECTORY")
        return cls(*_DIR.unpack(bytes(data[:EXPORT_DIRECTORY_SIZE])))


def build_export_block(dll_name: str, exports: list[tuple[str, int]],
                       block_rva: int, *, timestamp: int = 0) -> bytes:
    """Serialise an export block for ``exports`` = [(name, function RVA)].

    ``block_rva`` is where the block will live in the image (needed
    because the tables hold absolute RVAs). Names are emitted in
    sorted order, as the PE spec requires for binary search.
    """
    ordered = sorted(exports, key=lambda e: e[0])
    n = len(ordered)
    funcs_off = EXPORT_DIRECTORY_SIZE
    names_off = funcs_off + 4 * n
    ords_off = names_off + 4 * n
    strings_off = ords_off + 2 * n

    strings = bytearray()
    name_rvas = []
    dll_name_rva = block_rva + strings_off
    strings += dll_name.encode("ascii") + b"\x00"
    for name, _rva in ordered:
        name_rvas.append(block_rva + strings_off + len(strings))
        strings += name.encode("ascii") + b"\x00"

    directory = ExportDirectory(
        characteristics=0, time_date_stamp=timestamp,
        major_version=0, minor_version=0,
        name_rva=dll_name_rva, ordinal_base=1,
        number_of_functions=n, number_of_names=n,
        address_of_functions=block_rva + funcs_off,
        address_of_names=block_rva + names_off,
        address_of_name_ordinals=block_rva + ords_off)

    out = bytearray(directory.pack())
    out += struct.pack(f"<{n}I", *(rva for _name, rva in ordered)) if n \
        else b""
    out += struct.pack(f"<{n}I", *name_rvas) if n else b""
    out += struct.pack(f"<{n}H", *range(n)) if n else b""
    out += strings
    return bytes(out)


def parse_exports(image: bytes, dir_rva: int, dir_size: int,
                  ) -> tuple[str, dict[str, int]]:
    """Parse an export directory out of a memory-mapped image.

    Returns (dll name, {export name: function RVA}). Bounds-checked so
    a hostile image can't make the reader run away.
    """
    if dir_rva + EXPORT_DIRECTORY_SIZE > len(image):
        raise PEFormatError("export directory outside image")
    directory = ExportDirectory.unpack(image[dir_rva:])
    n = directory.number_of_names
    if n > 0x10000:
        raise PEFormatError(f"implausible export count {n}")
    for table_rva, width in ((directory.address_of_functions, 4),
                             (directory.address_of_names, 4),
                             (directory.address_of_name_ordinals, 2)):
        if table_rva + width * max(n, directory.number_of_functions) \
                > len(image):
            raise PEFormatError("export table outside image")

    def read_cstr(rva: int) -> str:
        end = image.index(b"\x00", rva)
        return image[rva:end].decode("ascii", errors="replace")

    funcs = struct.unpack_from(
        f"<{directory.number_of_functions}I", image,
        directory.address_of_functions)
    name_rvas = struct.unpack_from(f"<{n}I", image,
                                   directory.address_of_names)
    ordinals = struct.unpack_from(f"<{n}H", image,
                                  directory.address_of_name_ordinals)
    exports: dict[str, int] = {}
    for name_rva, ordinal in zip(name_rvas, ordinals):
        if ordinal >= len(funcs):
            raise PEFormatError(f"export ordinal {ordinal} out of range")
        exports[read_cstr(name_rva)] = funcs[ordinal]
    return read_cstr(directory.name_rva), exports
