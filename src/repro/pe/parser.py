"""PE32 image parsing — the format side of the paper's Module-Parser.

:class:`PEImage` consumes a *memory-mapped* module image (RVA-indexed
bytes, exactly what Module-Searcher copies out of a guest VM) and walks
the header chain of the paper's Algorithm 1: verify ``MZ``, follow
``e_lfanew``, verify ``PE\\0\\0``, read the FILE and OPTIONAL headers,
then ``NumberOfSections`` section headers, then slice each section's
data via ``VirtualAddress``/``VirtualSize``.

It also exposes the **region map** ModChecker hashes:

======================  =====================================================
region name             bytes covered
======================  =====================================================
``IMAGE_DOS_HEADER``    offset 0 .. ``e_lfanew`` (64-byte header **plus** the
                        DOS stub — the paper's E3 experiment shows the stub
                        text is part of their DOS-header hash)
``IMAGE_NT_HEADER``     signature + ``IMAGE_FILE_HEADER``
``IMAGE_OPTIONAL_HEADER``  the 224-byte PE32 optional header
``SECTION_HEADER[<n>]`` one 40-byte header per section
``<section name>``      section data, executable sections only
======================  =====================================================

:func:`map_file_to_memory` performs the *mapping* half of a loader:
copy headers, then place each section's raw data at its RVA.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PEFormatError
from . import constants as C
from .structures import DosHeader, FileHeader, OptionalHeader, SectionHeader

__all__ = ["Region", "PEImage", "map_file_to_memory"]

#: Upper bound accepted for NumberOfSections; real images stay tiny and
#: a huge value in a corrupted/hostile image must not make the parser
#: allocate unbounded memory.
MAX_SECTIONS = 96


@dataclass(frozen=True)
class Region:
    """A named, half-open byte range of the image used for hashing."""

    name: str
    start: int
    end: int

    def slice(self, buf: bytes) -> bytes:
        return bytes(buf[self.start:self.end])

    @property
    def size(self) -> int:
        return self.end - self.start


class PEImage:
    """A parsed memory-mapped PE32 module."""

    def __init__(self, buf: bytes) -> None:
        self.buf = bytes(buf)
        self.dos_header = DosHeader.unpack(self.buf)
        e_lfanew = self.dos_header.e_lfanew
        if not (DosHeader.SIZE <= e_lfanew <= len(self.buf) - 4):
            raise PEFormatError(f"e_lfanew {e_lfanew:#x} out of range")
        self.e_lfanew = e_lfanew
        if self.buf[e_lfanew:e_lfanew + 4] != C.NT_SIGNATURE:
            raise PEFormatError("missing PE signature")
        file_off = e_lfanew + 4
        self.file_header = FileHeader.unpack(self.buf[file_off:])
        if self.file_header.number_of_sections > MAX_SECTIONS:
            raise PEFormatError(
                f"implausible NumberOfSections "
                f"{self.file_header.number_of_sections}")
        opt_off = file_off + FileHeader.SIZE
        if self.file_header.size_of_optional_header < OptionalHeader.SIZE:
            raise PEFormatError("optional header too small for PE32")
        self.optional_header = OptionalHeader.unpack(self.buf[opt_off:])
        self.optional_offset = opt_off

        sec_off = opt_off + self.file_header.size_of_optional_header
        self.section_table_offset = sec_off
        self.sections: list[SectionHeader] = []
        for i in range(self.file_header.number_of_sections):
            off = sec_off + i * SectionHeader.SIZE
            if off + SectionHeader.SIZE > len(self.buf):
                raise PEFormatError("section table truncated")
            self.sections.append(SectionHeader.unpack(self.buf[off:]))

        for sec in self.sections:
            if sec.virtual_address + sec.virtual_size > len(self.buf):
                raise PEFormatError(
                    f"section {sec.name!r} extends past image end")

    # -- accessors -------------------------------------------------------------

    def section(self, name: str) -> SectionHeader:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError(name)

    def section_data(self, name: str) -> bytes:
        sec = self.section(name)
        return self.buf[sec.virtual_address:sec.virtual_address
                        + sec.virtual_size]

    def executable_sections(self) -> list[SectionHeader]:
        """Sections whose Characteristics flag MEM_EXECUTE (Algorithm 1's
        selection criterion)."""
        return [s for s in self.sections if s.is_executable]

    # -- hashing regions ---------------------------------------------------------

    def header_regions(self) -> list[Region]:
        """The header regions ModChecker hashes, in file order."""
        regions = [
            Region("IMAGE_DOS_HEADER", 0, self.e_lfanew),
            Region("IMAGE_NT_HEADER", self.e_lfanew,
                   self.e_lfanew + 4 + FileHeader.SIZE),
            Region("IMAGE_OPTIONAL_HEADER", self.optional_offset,
                   self.optional_offset
                   + self.file_header.size_of_optional_header),
        ]
        for i, sec in enumerate(self.sections):
            off = self.section_table_offset + i * SectionHeader.SIZE
            regions.append(Region(f"SECTION_HEADER[{sec.name}]", off,
                                  off + SectionHeader.SIZE))
        return regions

    def code_regions(self) -> list[Region]:
        """Executable section-data regions (what Algorithm 2 adjusts)."""
        return [Region(sec.name, sec.virtual_address,
                       sec.virtual_address + sec.virtual_size)
                for sec in self.executable_sections()]

    def all_regions(self) -> list[Region]:
        return self.header_regions() + self.code_regions()


def map_file_to_memory(file_bytes: bytes) -> bytearray:
    """Map an on-disk PE file into its in-memory image layout.

    Returns a buffer of ``SizeOfImage`` bytes: headers at offset 0, each
    section's raw data copied to its ``VirtualAddress``, gaps
    zero-filled — what a loader produces *before* applying relocations.
    """
    # Parse the *file* layout; header chain offsets are identical.
    dos = DosHeader.unpack(file_bytes)
    e_lfanew = dos.e_lfanew
    if file_bytes[e_lfanew:e_lfanew + 4] != C.NT_SIGNATURE:
        raise PEFormatError("missing PE signature")
    fh = FileHeader.unpack(file_bytes[e_lfanew + 4:])
    opt = OptionalHeader.unpack(file_bytes[e_lfanew + 4 + FileHeader.SIZE:])
    image = bytearray(opt.size_of_image)
    image[:opt.size_of_headers] = file_bytes[:opt.size_of_headers]
    sec_off = e_lfanew + 4 + FileHeader.SIZE + fh.size_of_optional_header
    for i in range(fh.number_of_sections):
        sec = SectionHeader.unpack(
            file_bytes[sec_off + i * SectionHeader.SIZE:])
        raw = file_bytes[sec.pointer_to_raw_data:
                         sec.pointer_to_raw_data + sec.size_of_raw_data]
        # VirtualSize may exceed raw size (zero-filled tail) or trail it.
        n = min(len(raw), opt.size_of_image - sec.virtual_address)
        image[sec.virtual_address:sec.virtual_address + n] = raw[:n]
    return image
