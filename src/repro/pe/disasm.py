"""Length-decoder for the generator's x86-32 subset.

A real attacker (and tools like OllyDbg or Detours) must find
instruction boundaries from raw bytes to know how many instructions a
5-byte hook clobbers. This module decodes the exact instruction subset
:mod:`repro.pe.codegen` emits plus the attack-injected ones, so the
inline-hook machinery can operate bytes-only — and a property test
cross-checks every decoded boundary against the generator's ground
truth.

Not a general x86 decoder: unknown opcodes raise, loudly, rather than
guessing (guessing is how real hooking engines corrupt code).
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["DisassemblyError", "instruction_length", "walk_instructions",
           "instructions_covering"]


class DisassemblyError(ReproError):
    """An opcode outside the supported subset."""


def instruction_length(code: bytes, offset: int = 0) -> int:
    """Length in bytes of the instruction at ``offset``."""
    if offset >= len(code):
        raise DisassemblyError("offset beyond code")
    op = code[offset]

    # one-byte: nop, inc/dec reg, push/pop reg, pushad/popad,
    # prologue/epilogue pieces, ret, int3, cave zero-fill
    if op == 0x90 or 0x40 <= op <= 0x5F or op in (0x55, 0x5D, 0xC3,
                                                  0x60, 0x61, 0xCC, 0x00):
        return 1
    # two-byte reg/reg forms: mov/xor/test/mov-ebp-esp
    if op in (0x8B, 0x33, 0x85):
        if offset + 1 >= len(code):
            raise DisassemblyError("truncated modrm")
        modrm = code[offset + 1]
        if modrm >= 0xC0:                    # register-direct
            return 2
        if op == 0x8B and modrm & 0xC7 == 0x05:   # mov r32, [disp32]
            return 6
        raise DisassemblyError(
            f"unsupported modrm {modrm:#04x} for opcode {op:#04x}")
    # 83 /r imm8 ALU group (register-direct only in our subset)
    if op == 0x83:
        if offset + 1 >= len(code) or code[offset + 1] < 0xC0:
            raise DisassemblyError("unsupported 83 form")
        return 3
    # moffs forms: mov eax,[abs32] / mov [abs32],eax
    if op in (0xA1, 0xA3):
        return 5
    # push imm32
    if op == 0x68:
        return 5
    # call/jmp rel32
    if op in (0xE8, 0xE9):
        return 5
    # jmp $ (EB imm8) and jcc rel8
    if op == 0xEB or 0x70 <= op <= 0x7F:
        return 2
    # 0F-prefixed: jcc rel32
    if op == 0x0F:
        if offset + 1 >= len(code):
            raise DisassemblyError("truncated 0F prefix")
        ext = code[offset + 1]
        if 0x80 <= ext <= 0x8F:
            return 6
        raise DisassemblyError(f"unsupported 0F {ext:#04x}")
    # FF /2 call [abs32], FF /4 jmp [abs32]
    if op == 0xFF:
        if offset + 1 >= len(code):
            raise DisassemblyError("truncated FF")
        modrm = code[offset + 1]
        if modrm in (0x15, 0x25):
            return 6
        raise DisassemblyError(f"unsupported FF modrm {modrm:#04x}")
    raise DisassemblyError(f"unknown opcode {op:#04x} at {offset:#x}")


def walk_instructions(code: bytes, start: int, end: int) -> list[int]:
    """Instruction start offsets in ``[start, end)``.

    Raises :class:`DisassemblyError` if decoding desynchronises past
    ``end`` or meets an unknown opcode.
    """
    offsets = []
    cursor = start
    while cursor < end:
        offsets.append(cursor)
        cursor += instruction_length(code, cursor)
    if cursor != end:
        raise DisassemblyError(
            f"decode desynchronised: landed at {cursor:#x}, "
            f"expected {end:#x}")
    return offsets


def instructions_covering(code: bytes, start: int, end: int,
                          n_bytes: int) -> int:
    """Bytes of whole instructions covering the first ``n_bytes``.

    What a hooking engine computes before overwriting an entry point:
    the smallest instruction-aligned prefix >= ``n_bytes``.
    """
    covered = 0
    for off in walk_instructions(code, start, end):
        if covered >= n_bytes:
            break
        covered = off - start + instruction_length(code, off)
    if covered < n_bytes:
        raise DisassemblyError(
            f"function too short to cover {n_bytes} bytes")
    return covered
