"""The guest's disk: a minimal driver filesystem.

The paper's infections modify the module *file* and reboot ("Upon
system restart, the newly modified hal.dll file was loaded into
memory"). Giving each guest its own file store makes that a real code
path: attacks write infected bytes to the victim's disk, the kernel
(re)loads modules *from its own filesystem*, and the SVV baseline reads
the same disk the guest booted from — which is exactly why SVV cannot
see disk-first infections.

Only what the experiments need: flat driver paths, whole-file
read/write, no directories/permissions/journaling.
"""

from __future__ import annotations

from ..errors import GuestError

__all__ = ["FileNotFound", "GuestFilesystem", "DRIVER_DIR"]

DRIVER_DIR = "system32/drivers"


class FileNotFound(GuestError):
    """No such file on the guest disk."""


class GuestFilesystem:
    """Per-guest file store (name -> bytes)."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self.writes = 0          # forensic counter: disk activity

    @staticmethod
    def driver_path(name: str) -> str:
        return f"{DRIVER_DIR}/{name.lower()}"

    # -- file operations ---------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        self._files[path.lower()] = bytes(data)
        self.writes += 1

    def read(self, path: str) -> bytes:
        try:
            return self._files[path.lower()]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path.lower() in self._files

    def delete(self, path: str) -> None:
        try:
            del self._files[path.lower()]
        except KeyError:
            raise FileNotFound(path) from None

    def listdir(self, prefix: str = "") -> list[str]:
        prefix = prefix.lower()
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- driver conveniences -------------------------------------------------------

    def install_driver(self, name: str, file_bytes: bytes) -> None:
        self.write(self.driver_path(name), file_bytes)

    def read_driver(self, name: str) -> bytes:
        return self.read(self.driver_path(name))

    def drivers(self) -> list[str]:
        n = len(DRIVER_DIR) + 1
        return [p[n:] for p in self.listdir(DRIVER_DIR + "/")]

    def drivers_installed(self) -> list[str]:
        """Driver names in *install* order (= the kernel's load order).

        ``drivers()`` sorts for display; reboot must reload in install
        order because exporters (ntoskrnl, hal) precede their importers.
        """
        prefix = DRIVER_DIR + "/"
        n = len(prefix)
        return [p[n:] for p in self._files if p.startswith(prefix)]
