"""Windows-like guest OS simulator: kernel, loader, module list."""

from .catalog import STANDARD_CATALOG, DriverSpec, build_catalog
from .filesystem import DRIVER_DIR, FileNotFound, GuestFilesystem
from .kernel import GuestKernel
from .ldr import (LDR_ENTRY_SIZE, LIST_ENTRY_SIZE, LdrDataTableEntry,
                  ListEntry)
from .loader import LoadedModule, ModuleLoader
from .unicode_string import UnicodeString

__all__ = [
    "STANDARD_CATALOG", "DriverSpec", "build_catalog",
    "DRIVER_DIR", "FileNotFound", "GuestFilesystem",
    "GuestKernel",
    "LDR_ENTRY_SIZE", "LIST_ENTRY_SIZE", "LdrDataTableEntry", "ListEntry",
    "LoadedModule", "ModuleLoader",
    "UnicodeString",
]
