"""The guest kernel's PE module loader.

Performs, in order, exactly what the XP loader does to a driver image
and what the paper's introduction describes ("the module loader
replaces [RVAs] with corresponding absolute addresses when it is loaded
into memory"):

1. allocate kernel VA space for ``SizeOfImage`` (base differs per VM);
2. map the file: headers + each section at its ``VirtualAddress``;
3. apply ``.reloc`` fixups with ``delta = base - ImageBase``;
4. resolve imports, overwriting IAT slots with the exporting module's
   addresses in *this* VM;
5. copy the finished image into guest memory; and
6. allocate and link an ``LDR_DATA_TABLE_ENTRY`` into
   ``PsLoadedModuleList``.

Step 3 is why clean clones of one module differ byte-for-byte across
VMs; step 4 is why the IAT (in ``.rdata``) additionally differs by the
*exporter's* base — which ModChecker tolerates by hashing only headers
and executable sections.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ModuleLoadError
from ..mem.address_space import KernelAddressSpace
from ..pe.builder import DriverBlueprint
from ..pe.constants import DIR_BASERELOC, DIR_EXPORT, DIR_IMPORT
from ..pe.exports import parse_exports
from ..pe.imports import parse_imports
from ..pe.parser import PEImage, map_file_to_memory
from ..pe.relocations import apply_relocations, parse_reloc_section
from .ldr import (XP_SP2_LAYOUT, LdrDataTableEntry, LdrLayout, ListEntry,
                  link_tail, unlink)
from .unicode_string import UnicodeString

__all__ = ["LoadedModule", "ModuleLoader"]


@dataclass
class LoadedModule:
    """Guest-side record of one loaded module."""

    name: str
    base: int
    size_of_image: int
    entry_point: int
    ldr_entry_va: int
    exports: dict[str, int]      # symbol -> VA in this guest


class ModuleLoader:
    """Loads :class:`DriverBlueprint` images into one guest kernel."""

    def __init__(self, address_space: KernelAddressSpace,
                 ps_loaded_module_list_va: int,
                 layout: LdrLayout = XP_SP2_LAYOUT) -> None:
        self.aspace = address_space
        self.head_va = ps_loaded_module_list_va
        self.layout = layout
        #: (dll name lowercased, symbol) -> VA; fed by loaded modules.
        self.export_table: dict[tuple[str, str], int] = {}

    # -- export bookkeeping -----------------------------------------------------

    def _register_exports(self, name: str, image: bytes,
                          base: int) -> dict[str, int]:
        """Register exports by parsing the image's export directory.

        The directory tables hold RVAs (never rebased), so the same
        symbol resolves to the same RVA in every VM — resolved
        addresses differ between VMs only by the exporter's base.
        Images without an export directory export nothing, as on
        Windows.
        """
        pe = PEImage(bytes(image))
        exp_dir = pe.optional_header.data_directories[DIR_EXPORT]
        exports: dict[str, int] = {}
        if exp_dir.size:
            dll_name, by_name = parse_exports(bytes(image),
                                              exp_dir.virtual_address,
                                              exp_dir.size)
            if dll_name.lower() != name.lower():
                raise ModuleLoadError(
                    f"{name}: export directory names {dll_name!r}")
            for symbol, rva in by_name.items():
                exports[symbol] = base + rva
                self.export_table[(name.lower(), symbol)] = base + rva
        return exports

    def _resolve_import(self, dll: str, symbol: str,
                        importer_name: str) -> int:
        """Resolve ``dll!symbol`` against already-loaded exporters.

        Unknown symbols map deterministically onto one of the
        exporter's functions (stable across VMs), mimicking ordinal
        resolution; a missing exporter is a load error, as on Windows.
        """
        key = (dll.lower(), symbol)
        if key in self.export_table:
            return self.export_table[key]
        candidates = [(d, s) for (d, s) in self.export_table if d == dll.lower()]
        if not candidates:
            raise ModuleLoadError(
                f"{importer_name}: import {dll}!{symbol} — "
                f"exporter not loaded")
        pick = candidates[hash(symbol) % len(candidates)]
        return self.export_table[pick]

    # -- loading -----------------------------------------------------------------

    def load(self, blueprint: DriverBlueprint, *,
             resolve_imports: bool = True) -> LoadedModule:
        """Load a built driver (everything still parsed from its bytes)."""
        return self.load_bytes(blueprint.name, blueprint.file_bytes,
                               resolve_imports=resolve_imports)

    def load_bytes(self, name: str, file_bytes: bytes, *,
                   resolve_imports: bool = True) -> LoadedModule:
        """Load a driver from raw file bytes — the real loader's input.

        Relocations, the export directory and the import table are all
        parsed out of the image itself; no build-time metadata crosses
        into the guest.
        """
        image = map_file_to_memory(file_bytes)
        pe = PEImage(bytes(image))

        base = self.aspace.alloc_driver_image(len(image), name)
        delta = (base - pe.optional_header.image_base) & 0xFFFFFFFF

        reloc_dir = pe.optional_header.data_directories[DIR_BASERELOC]
        if reloc_dir.size:
            raw = image[reloc_dir.virtual_address:
                        reloc_dir.virtual_address + reloc_dir.size]
            fixups = parse_reloc_section(bytes(raw))
            apply_relocations(image, fixups, delta)
        elif delta:
            raise ModuleLoadError(
                f"{name}: needs rebasing but has no .reloc")

        if resolve_imports:
            imp_dir = pe.optional_header.data_directories[DIR_IMPORT]
            for imp in parse_imports(bytes(image), imp_dir.virtual_address,
                                     imp_dir.size):
                va = self._resolve_import(imp.dll, imp.symbol, name)
                image[imp.iat_slot_rva:imp.iat_slot_rva + 4] = \
                    struct.pack("<I", va)

        self.aspace.write(base, bytes(image))
        exports = self._register_exports(name, image, base)

        entry_point = base + pe.optional_header.address_of_entry_point
        ldr_va = self._install_ldr_entry(name, base, len(image),
                                         entry_point)
        return LoadedModule(name, base, len(image), entry_point,
                            ldr_va, exports)

    def _install_ldr_entry(self, name: str, base: int, size: int,
                           entry_point: int) -> int:
        full_name = f"\\SystemRoot\\System32\\drivers\\{name}"
        # One pool allocation holding the entry followed by both name
        # payloads, like the kernel's single ExAllocatePool for the node.
        base_hdr_stub = UnicodeString.for_text(name, 0)[1]
        full_hdr_stub = UnicodeString.for_text(full_name, 0)[1]
        total = (self.layout.entry_size + len(full_hdr_stub)
                 + len(base_hdr_stub))
        node_va = self.aspace.alloc_fixed(total, f"ldr:{name}")
        full_buf_va = node_va + self.layout.entry_size
        base_buf_va = full_buf_va + len(full_hdr_stub)

        full_us, full_payload = UnicodeString.for_text(full_name, full_buf_va)
        base_us, base_payload = UnicodeString.for_text(name, base_buf_va)

        entry = LdrDataTableEntry(
            in_load_order=ListEntry(0, 0),
            in_memory_order=ListEntry(0, 0),
            in_init_order=ListEntry(0, 0),
            dll_base=base, entry_point=entry_point, size_of_image=size,
            full_dll_name=full_us, base_dll_name=base_us)
        self.aspace.write(node_va, entry.pack(self.layout))
        self.aspace.write(full_buf_va, full_payload)
        self.aspace.write(base_buf_va, base_payload)
        link_tail(self.aspace.write, self.aspace.read, self.head_va, node_va)
        return node_va

    def unload(self, module: LoadedModule) -> None:
        """Unlink the module's LDR entry (image pages are left mapped,
        matching how the pool block may linger — ModChecker only trusts
        the list)."""
        unlink(self.aspace.write, self.aspace.read, module.ldr_entry_va)
        for key in [k for k, v in self.export_table.items()
                    if k[0] == module.name.lower()]:
            del self.export_table[key]
