"""The driver catalog: the "single 32-bit Windows XP SP2 installation".

The paper clones all 15 DomUs from one installation so every VM holds
byte-identical module *files*. We reproduce that by building each
driver blueprint **once** per cloud (fixed seed) and handing the same
blueprints to every guest — only load addresses then differ.

The set mirrors the modules the paper exercises (``hal.dll`` for E1/E2,
``http.sys`` for the performance runs, ``dummy.sys`` — the "Hello
World" driver — for E3/E4) plus enough bystanders that
Module-Searcher's list walk is non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pe.builder import DriverBlueprint, ImportSpec, PEBuilder
from ..rng import derive_seed

__all__ = ["DriverSpec", "STANDARD_CATALOG", "build_catalog"]


@dataclass(frozen=True)
class DriverSpec:
    """Build parameters for one catalog driver."""

    name: str
    n_functions: int
    avg_function_size: int
    data_size: int
    imports: tuple[ImportSpec, ...] | None = None   # None = builder default


#: Load order matters: exporters (ntoskrnl, hal) come first so imports
#: resolve, mirroring the boot-driver ordering.
STANDARD_CATALOG: tuple[DriverSpec, ...] = (
    DriverSpec("ntoskrnl.exe", 48, 220, 0x2000, imports=()),
    DriverSpec("hal.dll", 24, 180, 0x1000,
               imports=(ImportSpec("ntoskrnl.exe",
                                   ("KeBugCheckEx", "ExAllocatePoolWithTag")),)),
    DriverSpec("ndis.sys", 32, 190, 0x1800),
    DriverSpec("tcpip.sys", 40, 200, 0x1800),
    DriverSpec("http.sys", 36, 210, 0x1400),
    DriverSpec("ntfs.sys", 40, 200, 0x1800),
    DriverSpec("win32k.sys", 44, 210, 0x2000),
    DriverSpec("disk.sys", 12, 140, 0x800),
    DriverSpec("atapi.sys", 12, 140, 0x800),
    DriverSpec("dummy.sys", 6, 100, 0x400),   # the paper's Hello-World driver
)


def build_catalog(seed: int | None = None,
                  specs: tuple[DriverSpec, ...] = STANDARD_CATALOG,
                  ) -> dict[str, DriverBlueprint]:
    """Build every driver once; returns name -> blueprint, in load order.

    The per-driver seed is derived from the catalog seed and the driver
    name, so adding a driver never perturbs the others' bytes.
    """
    catalog: dict[str, DriverBlueprint] = {}
    for spec in specs:
        kwargs = dict(
            seed=derive_seed(seed, "catalog", spec.name),
            n_functions=spec.n_functions,
            avg_function_size=spec.avg_function_size,
            data_size=spec.data_size,
        )
        if spec.imports is not None:
            kwargs["imports"] = spec.imports
        catalog[spec.name] = PEBuilder(spec.name, **kwargs).build()
    return catalog
