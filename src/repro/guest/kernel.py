"""Guest kernel simulator: boot, module list, loading, symbols.

One :class:`GuestKernel` stands in for a running 32-bit Windows XP SP2
instance. ``boot()`` lays the kernel globals (including the
``PsLoadedModuleList`` head) into guest physical memory and loads the
driver catalog; afterwards everything ModChecker needs is discoverable
*purely from the guest's memory bytes plus CR3* — the kernel object
keeps Python-side records only for tests and ground truth.

The exported symbol map plays the role of the OS profile libvmi needs
(``PsLoadedModuleList``'s VA); it is identical across clones because
the fixed kernel area is allocated deterministically before any
per-VM-randomised driver placement happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModuleNotLoadedError
from ..mem.address_space import KernelAddressSpace
from ..mem.physical import PhysicalMemory
from ..pe.builder import DriverBlueprint
from ..rng import derive_seed
from .filesystem import GuestFilesystem
from .ldr import LDR_LAYOUTS, LIST_ENTRY_SIZE, ListEntry
from .loader import LoadedModule, ModuleLoader

__all__ = ["GuestKernel"]

#: Default guest RAM. The paper gives each XP guest ~1 GiB; our guests
#: only ever touch kernel structures and modules, so 64 MiB of
#: *addressable* space is plenty and the sparse backing keeps actual
#: usage to a few hundred KiB.
DEFAULT_GUEST_RAM = 64 * 1024 * 1024


@dataclass
class GuestKernel:
    """A booted guest: physical memory + kernel structures + modules."""

    name: str
    seed: int | None = None
    ram_bytes: int = DEFAULT_GUEST_RAM
    randomize_module_bases: bool = True
    os_flavor: str = "xp-sp2"     # key into LDR_LAYOUTS

    memory: PhysicalMemory = field(init=False)
    fs: GuestFilesystem = field(init=False)
    aspace: KernelAddressSpace = field(init=False)
    loader: ModuleLoader = field(init=False)
    symbols: dict[str, int] = field(init=False, default_factory=dict)
    modules: dict[str, LoadedModule] = field(init=False, default_factory=dict)
    booted: bool = field(init=False, default=False)
    #: how many times this kernel has booted (0 = first boot); each
    #: reboot re-randomises module placement from a generation-derived
    #: seed, so the whole boot history is a pure function of the seed
    generation: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        try:
            self.layout = LDR_LAYOUTS[self.os_flavor]
        except KeyError:
            raise ValueError(
                f"unknown os_flavor {self.os_flavor!r}; "
                f"known: {sorted(LDR_LAYOUTS)}") from None
        self.memory = PhysicalMemory(self.ram_bytes)
        self.fs = GuestFilesystem()
        self.aspace = KernelAddressSpace(
            self.memory, seed=self._aspace_seed(),
            randomize_module_bases=self.randomize_module_bases)

    def _aspace_seed(self) -> int:
        """Per-boot address-space seed: generation 0 keeps the original
        derivation, so pre-existing layouts are bit-identical."""
        tags = ["aspace", self.name]
        if self.generation:
            tags.append(f"gen{self.generation}")
        return derive_seed(self.seed, *tags)

    # -- lifecycle ---------------------------------------------------------------

    def boot(self, catalog: dict[str, DriverBlueprint] | None = None) -> None:
        """Install the catalog on disk, lay out kernel globals, load.

        The catalog plays the role of the installation media: its files
        land on this guest's own filesystem first, and every module is
        then loaded *from that disk* — so later disk infections +
        reloads follow the same path the paper's evaluation used.
        """
        if self.booted:
            raise RuntimeError(f"{self.name} already booted")
        for name, blueprint in (catalog or {}).items():
            self.fs.install_driver(name, blueprint.file_bytes)
        globals_va = self.aspace.alloc_fixed(0x1000, "kernel-globals")
        head_va = globals_va        # PsLoadedModuleList at the page start
        # Empty list: head points at itself.
        self.aspace.write(head_va, ListEntry(head_va, head_va).pack())
        self.symbols["PsLoadedModuleList"] = head_va
        self.loader = ModuleLoader(self.aspace, head_va, self.layout)
        self.booted = True
        for name in (catalog or {}):
            self.load_module_from_disk(name)

    def reboot(self) -> None:
        """Power-cycle the guest: fresh memory, modules reload from disk.

        Memory and page tables are rebuilt from scratch and every driver
        present on the guest's *own disk* is loaded again through the
        normal loader path — at new randomised bases (the per-boot
        seed), exactly like a real restart. Disk contents survive, so a
        disk-level infection survives the reboot too (the paper's
        "modified hal.dll was loaded into memory upon system restart").
        The kernel-globals page is the first fixed allocation of every
        boot, so ``PsLoadedModuleList`` keeps its VA and the OS profile
        stays valid across generations.
        """
        if not self.booted:
            raise RuntimeError("boot() first")
        drivers = self.fs.drivers_installed()
        self.generation += 1
        self.memory = PhysicalMemory(self.ram_bytes)
        self.aspace = KernelAddressSpace(
            self.memory, seed=self._aspace_seed(),
            randomize_module_bases=self.randomize_module_bases)
        self.symbols = {}
        self.modules = {}
        self.booted = False
        self.boot(None)                      # disk already holds the files
        for name in drivers:
            self.load_module_from_disk(name)

    @property
    def cr3(self) -> int:
        return self.aspace.cr3

    # -- modules -----------------------------------------------------------------

    def load_module(self, blueprint: DriverBlueprint) -> LoadedModule:
        """Install the blueprint's file on disk and load it."""
        if not self.booted:
            raise RuntimeError("boot() first")
        self.fs.install_driver(blueprint.name, blueprint.file_bytes)
        return self.load_module_from_disk(blueprint.name)

    def load_module_from_disk(self, name: str) -> LoadedModule:
        """Load a driver from this guest's own filesystem."""
        if not self.booted:
            raise RuntimeError("boot() first")
        module = self.loader.load_bytes(name, self.fs.read_driver(name))
        self.modules[name] = module
        return module

    def reload_module(self, name: str) -> LoadedModule:
        """Unload and re-load from disk — the paper's 'system restart'
        for one module (picks up any disk infection)."""
        self.unload_module(name)
        return self.load_module_from_disk(name)

    def unload_module(self, name: str) -> None:
        module = self.modules.pop(name, None)
        if module is None:
            raise ModuleNotLoadedError(f"{name} not loaded in {self.name}")
        self.loader.unload(module)

    def module(self, name: str) -> LoadedModule:
        try:
            return self.modules[name]
        except KeyError:
            raise ModuleNotLoadedError(
                f"{name} not loaded in {self.name}") from None

    # -- ground-truth helpers (tests/examples only) ----------------------------------

    def read_module_image(self, name: str) -> bytes:
        """The module's current in-memory image (ground truth view)."""
        module = self.module(name)
        return self.aspace.read(module.base, module.size_of_image)

    def list_entry_count(self) -> int:
        """Walk the list the slow way; used to validate invariants."""
        head_va = self.symbols["PsLoadedModuleList"]
        count = 0
        cursor = ListEntry.unpack(
            self.aspace.read(head_va, LIST_ENTRY_SIZE)).flink
        while cursor != head_va:
            count += 1
            if count > 4096:
                raise RuntimeError("loaded-module list does not terminate")
            cursor = ListEntry.unpack(
                self.aspace.read(cursor, LIST_ENTRY_SIZE)).flink
        return count
