"""``PsLoadedModuleList`` and ``LDR_DATA_TABLE_ENTRY``.

The kernel maintains its loaded-module list as a doubly linked list of
``LDR_DATA_TABLE_ENTRY`` nodes (paper Fig. 2). The list head is a bare
``LIST_ENTRY`` at the VA of the exported global ``PsLoadedModuleList``;
each node's *first* field is its ``InLoadOrderLinks`` LIST_ENTRY, so a
link pointer is also the address of the owning structure — the property
Module-Searcher relies on when walking FLINK pointers.

Field offsets match 32-bit Windows XP::

    +0x00 InLoadOrderLinks            LIST_ENTRY (Flink, Blink)
    +0x08 InMemoryOrderLinks          LIST_ENTRY
    +0x10 InInitializationOrderLinks  LIST_ENTRY
    +0x18 DllBase                     PVOID
    +0x1c EntryPoint                  PVOID
    +0x20 SizeOfImage                 ULONG
    +0x24 FullDllName                 UNICODE_STRING
    +0x2c BaseDllName                 UNICODE_STRING
    +0x34 Flags                       ULONG
    +0x38 LoadCount                   USHORT
    +0x3a TlsIndex                    USHORT
    ...                               (padded to 0x50 here)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .unicode_string import UnicodeString

__all__ = [
    "LIST_ENTRY_SIZE", "LDR_ENTRY_SIZE",
    "OFF_INLOADORDER", "OFF_DLLBASE", "OFF_ENTRYPOINT", "OFF_SIZEOFIMAGE",
    "OFF_FULLDLLNAME", "OFF_BASEDLLNAME", "OFF_FLAGS", "OFF_LOADCOUNT",
    "LdrLayout", "LDR_LAYOUTS", "XP_SP2_LAYOUT",
    "ListEntry", "LdrDataTableEntry",
]

LIST_ENTRY_SIZE = 8
LDR_ENTRY_SIZE = 0x50

OFF_INLOADORDER = 0x00
OFF_INMEMORYORDER = 0x08
OFF_ININITORDER = 0x10
OFF_DLLBASE = 0x18
OFF_ENTRYPOINT = 0x1C
OFF_SIZEOFIMAGE = 0x20
OFF_FULLDLLNAME = 0x24
OFF_BASEDLLNAME = 0x2C
OFF_FLAGS = 0x34
OFF_LOADCOUNT = 0x38
OFF_TLSINDEX = 0x3A

_LIST = struct.Struct("<II")


@dataclass(frozen=True)
class LdrLayout:
    """Field offsets of ``LDR_DATA_TABLE_ENTRY`` for one kernel build.

    Real kernel builds move these fields around between versions, which
    is exactly why libvmi needs a per-build OS profile. The
    ``InLoadOrderLinks`` LIST_ENTRY stays at offset 0 in every build —
    that invariant is what makes FLINK pointers double as structure
    addresses.
    """

    name: str = "WinXP-SP2-x86"
    off_inmemoryorder: int = OFF_INMEMORYORDER
    off_ininitorder: int = OFF_ININITORDER
    off_dllbase: int = OFF_DLLBASE
    off_entrypoint: int = OFF_ENTRYPOINT
    off_sizeofimage: int = OFF_SIZEOFIMAGE
    off_fulldllname: int = OFF_FULLDLLNAME
    off_basedllname: int = OFF_BASEDLLNAME
    off_flags: int = OFF_FLAGS
    off_loadcount: int = OFF_LOADCOUNT
    off_tlsindex: int = OFF_TLSINDEX
    entry_size: int = LDR_ENTRY_SIZE

    def offsets(self) -> dict[str, int]:
        """The profile-dictionary view (what libvmi configs carry)."""
        return {
            "LDR_DATA_TABLE_ENTRY.InLoadOrderLinks": 0,
            "LDR_DATA_TABLE_ENTRY.DllBase": self.off_dllbase,
            "LDR_DATA_TABLE_ENTRY.EntryPoint": self.off_entrypoint,
            "LDR_DATA_TABLE_ENTRY.SizeOfImage": self.off_sizeofimage,
            "LDR_DATA_TABLE_ENTRY.FullDllName": self.off_fulldllname,
            "LDR_DATA_TABLE_ENTRY.BaseDllName": self.off_basedllname,
            "LDR_DATA_TABLE_ENTRY.size": self.entry_size,
            "LIST_ENTRY.size": LIST_ENTRY_SIZE,
        }


XP_SP2_LAYOUT = LdrLayout()

#: A second build with shifted fields (a service-pack's worth of drift):
#: parsing it with the XP profile reads garbage, which the profile
#: tests demonstrate.
WIN2003_LAYOUT = LdrLayout(
    name="Win2003-x86",
    off_inmemoryorder=0x08, off_ininitorder=0x10,
    off_dllbase=0x20, off_entrypoint=0x24, off_sizeofimage=0x28,
    off_fulldllname=0x2C, off_basedllname=0x34,
    off_flags=0x3C, off_loadcount=0x40, off_tlsindex=0x42,
    entry_size=0x58)

LDR_LAYOUTS: dict[str, LdrLayout] = {
    "xp-sp2": XP_SP2_LAYOUT,
    "win2003": WIN2003_LAYOUT,
}


@dataclass(frozen=True)
class ListEntry:
    """A LIST_ENTRY: forward and backward links."""

    flink: int
    blink: int

    SIZE = LIST_ENTRY_SIZE

    def pack(self) -> bytes:
        return _LIST.pack(self.flink, self.blink)

    @classmethod
    def unpack(cls, data: bytes) -> "ListEntry":
        return cls(*_LIST.unpack(bytes(data[:cls.SIZE])))


@dataclass(frozen=True)
class LdrDataTableEntry:
    """Decoded LDR_DATA_TABLE_ENTRY (names resolved separately)."""

    in_load_order: ListEntry
    in_memory_order: ListEntry
    in_init_order: ListEntry
    dll_base: int
    entry_point: int
    size_of_image: int
    full_dll_name: UnicodeString
    base_dll_name: UnicodeString
    flags: int = 0
    load_count: int = 1
    tls_index: int = 0

    SIZE = LDR_ENTRY_SIZE

    def pack(self, layout: LdrLayout = XP_SP2_LAYOUT) -> bytes:
        out = bytearray(layout.entry_size)
        out[OFF_INLOADORDER:OFF_INLOADORDER + 8] = self.in_load_order.pack()
        out[layout.off_inmemoryorder:
            layout.off_inmemoryorder + 8] = self.in_memory_order.pack()
        out[layout.off_ininitorder:
            layout.off_ininitorder + 8] = self.in_init_order.pack()
        struct.pack_into("<I", out, layout.off_dllbase, self.dll_base)
        struct.pack_into("<I", out, layout.off_entrypoint, self.entry_point)
        struct.pack_into("<I", out, layout.off_sizeofimage,
                         self.size_of_image)
        out[layout.off_fulldllname:
            layout.off_fulldllname + 8] = self.full_dll_name.pack()
        out[layout.off_basedllname:
            layout.off_basedllname + 8] = self.base_dll_name.pack()
        struct.pack_into("<I", out, layout.off_flags, self.flags)
        struct.pack_into("<HH", out, layout.off_loadcount,
                         self.load_count, self.tls_index)
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes,
               layout: LdrLayout = XP_SP2_LAYOUT) -> "LdrDataTableEntry":
        data = bytes(data[:layout.entry_size])
        dll_base, = struct.unpack_from("<I", data, layout.off_dllbase)
        entry_point, = struct.unpack_from("<I", data, layout.off_entrypoint)
        size_of_image, = struct.unpack_from("<I", data,
                                            layout.off_sizeofimage)
        flags, = struct.unpack_from("<I", data, layout.off_flags)
        load_count, tls_index = struct.unpack_from("<HH", data,
                                                   layout.off_loadcount)
        return cls(
            in_load_order=ListEntry.unpack(data[OFF_INLOADORDER:]),
            in_memory_order=ListEntry.unpack(data[layout.off_inmemoryorder:]),
            in_init_order=ListEntry.unpack(data[layout.off_ininitorder:]),
            dll_base=dll_base, entry_point=entry_point,
            size_of_image=size_of_image,
            full_dll_name=UnicodeString.unpack(data[layout.off_fulldllname:]),
            base_dll_name=UnicodeString.unpack(data[layout.off_basedllname:]),
            flags=flags, load_count=load_count, tls_index=tls_index)


def _write_ptr(write, va: int, value: int) -> None:
    write(va, struct.pack("<I", value))


def link_tail(write, read, head_va: int, node_va: int) -> None:
    """Insert ``node_va`` at the tail of the list headed at ``head_va``.

    ``write(va, bytes)`` / ``read(va, n) -> bytes`` access guest memory.
    Pointer fields are written individually — exactly the four stores
    ``InsertTailList`` performs — so the head==tail (empty list) case
    composes correctly.
    """
    head = ListEntry.unpack(read(head_va, LIST_ENTRY_SIZE))
    last_va = head.blink
    _write_ptr(write, node_va + OFF_INLOADORDER, head_va)       # node.Flink
    _write_ptr(write, node_va + OFF_INLOADORDER + 4, last_va)   # node.Blink
    _write_ptr(write, last_va, node_va)                          # last.Flink
    _write_ptr(write, head_va + 4, node_va)                      # head.Blink


def unlink(write, read, node_va: int) -> None:
    """Remove a node from its list (``RemoveEntryList``)."""
    node = ListEntry.unpack(read(node_va + OFF_INLOADORDER, LIST_ENTRY_SIZE))
    _write_ptr(write, node.blink, node.flink)       # prev.Flink = node.Flink
    _write_ptr(write, node.flink + 4, node.blink)   # next.Blink = node.Blink
