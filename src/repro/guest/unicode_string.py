"""``UNICODE_STRING`` — the counted UTF-16 string of the NT kernel.

Layout (32-bit)::

    +0x00  USHORT Length         # bytes, excluding terminator
    +0x02  USHORT MaximumLength  # buffer capacity in bytes
    +0x04  PVOID  Buffer         # VA of the UTF-16LE payload

``BaseDllName``/``FullDllName`` inside ``LDR_DATA_TABLE_ENTRY`` are
UNICODE_STRINGs, so Module-Searcher must chase ``Buffer`` through guest
memory to learn a module's name — one extra introspection read per list
node, faithfully reproduced here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["UnicodeString", "UNICODE_STRING_SIZE"]

UNICODE_STRING_SIZE = 8
_HDR = struct.Struct("<HHI")


@dataclass(frozen=True)
class UnicodeString:
    """Parsed UNICODE_STRING header (payload read separately)."""

    length: int
    maximum_length: int
    buffer: int

    SIZE = UNICODE_STRING_SIZE

    def pack(self) -> bytes:
        return _HDR.pack(self.length, self.maximum_length, self.buffer)

    @classmethod
    def unpack(cls, data: bytes) -> "UnicodeString":
        length, maximum, buffer = _HDR.unpack(bytes(data[:cls.SIZE]))
        return cls(length, maximum, buffer)

    @classmethod
    def for_text(cls, text: str, buffer_va: int) -> tuple["UnicodeString", bytes]:
        """Build the header + UTF-16LE payload for ``text`` at ``buffer_va``.

        The payload carries a NUL terminator not counted in ``Length``,
        like strings produced by ``RtlInitUnicodeString``.
        """
        payload = text.encode("utf-16-le")
        header = cls(len(payload), len(payload) + 2, buffer_va)
        return header, payload + b"\x00\x00"

    def decode(self, payload: bytes) -> str:
        """Decode a payload previously read from ``Buffer``."""
        return payload[: self.length].decode("utf-16-le", errors="replace")
