"""Component timing records for the Fig. 7/8 runtime breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComponentTimings", "RunTiming"]


@dataclass
class ComponentTimings:
    """Simulated seconds spent in each ModChecker component."""

    searcher: float = 0.0
    parser: float = 0.0
    checker: float = 0.0

    @property
    def total(self) -> float:
        return self.searcher + self.parser + self.checker

    def __add__(self, other: "ComponentTimings") -> "ComponentTimings":
        return ComponentTimings(self.searcher + other.searcher,
                                self.parser + other.parser,
                                self.checker + other.checker)

    def as_dict(self) -> dict[str, float]:
        return {"searcher": self.searcher, "parser": self.parser,
                "checker": self.checker, "total": self.total}


@dataclass
class RunTiming:
    """One experiment point: VM count, load state, component times."""

    n_vms: int
    loaded: bool
    timings: ComponentTimings
    per_vm_searcher: list[float] = field(default_factory=list)

    def row(self) -> tuple:
        t = self.timings
        return (self.n_vms, t.searcher, t.parser, t.checker, t.total)
