"""Guest workloads — the paper's HeavyLoad stand-in.

HeavyLoad "is capable of stressing all the resources (such as CPU, RAM
and disk) of an MS Windows machine" (§V-C-1). A workload here simply
sets a domain's resource-demand knobs; the contention scheduler turns
CPU demand into Dom0 slowdown (Fig. 8) and the in-guest monitor turns
all three into its Fig. 9 time series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypervisor.domain import Domain

__all__ = ["Workload", "IDLE", "HEAVY_LOAD", "CPU_ONLY", "apply_workload",
           "clear_workload"]


@dataclass(frozen=True)
class Workload:
    """A named resource-demand profile."""

    name: str
    cpu: float = 0.0
    mem: float = 0.0
    disk: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("cpu", "mem", "disk"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} load must be in [0, 1]")


IDLE = Workload("idle", cpu=0.0, mem=0.0, disk=0.0)
#: All resources pegged — the paper's HeavyLoad configuration.
HEAVY_LOAD = Workload("heavyload", cpu=1.0, mem=0.9, disk=0.8)
CPU_ONLY = Workload("cpu-stress", cpu=1.0, mem=0.0, disk=0.0)


def apply_workload(domain: Domain, workload: Workload) -> None:
    """Start the workload on a guest (sets its demand knobs)."""
    domain.set_load(cpu=workload.cpu, mem=workload.mem, disk=workload.disk)
    domain.tags["workload"] = workload.name


def clear_workload(domain: Domain) -> None:
    """Stop any workload (back to idle)."""
    apply_workload(domain, IDLE)
