"""Performance modelling: cost model, workloads, in-guest monitor."""

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .monitor import GuestResourceMonitor, MonitorTrace, ResourceSample
from .timing import ComponentTimings, RunTiming
from .workload import (CPU_ONLY, HEAVY_LOAD, IDLE, Workload, apply_workload,
                       clear_workload)

__all__ = [
    "DEFAULT_COST_MODEL", "CostModel",
    "GuestResourceMonitor", "MonitorTrace", "ResourceSample",
    "ComponentTimings", "RunTiming",
    "CPU_ONLY", "HEAVY_LOAD", "IDLE", "Workload", "apply_workload",
    "clear_workload",
]
