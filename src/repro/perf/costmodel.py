"""The introspection/processing cost model.

All Fig. 7–9 runtimes are simulated: each primitive operation charges a
fixed CPU cost to Dom0 through the hypervisor (which stretches it under
contention). The constants below are calibrated to the *relative*
magnitudes the paper reports, not to any absolute hardware:

* mapping a foreign guest frame (``xc_map_foreign_range`` + copy) is
  the expensive primitive — it dominates Module-Searcher, which "has to
  access the memory by pages; an action that requires an iterative
  access of the memory until the whole module is copied" (§V-C-1);
* page-table walks are two small mapped reads;
* parsing, MD5 hashing and RVA adjustment are local Dom0 buffer passes,
  costed per byte — cheap next to foreign mapping, which is why the
  paper's Fig. 7 shows Parser and Integrity-Checker almost flat.

Change the numbers and the figures rescale; the *shapes* (linearity,
component ordering, the Fig. 8 knee) are structural.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]

_US = 1e-6  # one microsecond, in seconds


@dataclass(frozen=True)
class CostModel:
    """Per-operation Dom0 CPU costs, in seconds."""

    # -- introspection primitives (charged by the VMI layer) ------------
    page_map: float = 120.0 * _US      # map one foreign frame + copy out
    translate_walk: float = 14.0 * _US  # PDE+PTE reads for one VA page
    small_read: float = 4.0 * _US      # bookkeeping per read call
    #: hypervisor-side checksum of one guest frame (hypercall + in-VMM
    #: hash at memory bandwidth) — no foreign mapping, no copy-out,
    #: which is the whole point of the incremental page sweep
    page_checksum: float = 9.0 * _US

    # -- Dom0-local processing (charged by ModChecker components) -------
    parse_per_byte: float = 0.0015 * _US   # header walk + section slicing
    hash_per_byte: float = 0.004 * _US     # MD5 over a local buffer
    rva_scan_per_byte: float = 0.006 * _US  # Algorithm 2 byte scan
    compare_per_pair: float = 30.0 * _US   # per-module-pair fixed overhead

    # -- event-driven monitoring (charged by the VMI layer) -------------
    #: arm EPT write-protection on one guest frame (one hypercall,
    #: amortised EPT walk; cheaper than a foreign mapping, pricier than
    #: a mapped read)
    page_protect: float = 6.0 * _US
    #: deliver one coalesced write trap out of the shared ring (Dom0
    #: side; the fixed ring-poll cost per drain is a ``small_read``)
    trap_deliver: float = 2.0 * _US

    # -- resilience (charged by the VMI retry layer) --------------------
    retry_probe: float = 8.0 * _US     # re-issue one failed guest read

    # -- remediation (charged by the repair engine via VMI) -------------
    #: privileged write of one guest frame's worth of bytes (map the
    #: frame writable + copy in + flush); pricier than a protect but
    #: cheaper than a full foreign-map copy-out, since the repair path
    #: writes only the tampered hunks, not whole images
    page_write: float = 18.0 * _US

    def searcher_page_cost(self, *, translated: bool, mapped: bool) -> float:
        """Cost of fetching one VA page (cache flags from the VMI layer)."""
        cost = self.small_read
        if translated:
            cost += self.translate_walk
        if mapped:
            cost += self.page_map
        return cost

    def range_read_cost(self, *, walked: int, mapped: int) -> float:
        """Aggregate cost of one batched VA-range read.

        Identical by construction to what the scalar per-page loop
        charges for the same read: ``walked`` translate walks plus
        ``mapped`` foreign maps plus the one ``small_read`` every read
        call pays. The batch path charges this in a single
        ``charge_dom0`` call — same total, one contention-stretch.
        """
        return (walked * self.translate_walk + mapped * self.page_map
                + self.small_read)

    def range_checksum_cost(self, *, walked: int, pages: int) -> float:
        """Aggregate cost of one batched page sweep over ``pages`` pages.

        The batched twin of per-page ``translate_walk`` +
        ``page_checksum`` charges (checksum sweeps pay no
        ``small_read`` — they move digests, not bytes).
        """
        return walked * self.translate_walk + pages * self.page_checksum


#: Shared default so every component prices work identically.
DEFAULT_COST_MODEL = CostModel()
