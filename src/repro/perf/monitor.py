"""In-guest resource monitor — the paper's "light-weight tool in Python".

§V-C-2: a tool running *inside* a guest continuously records CPU state
(idle/privileged/user time), memory state (free physical/virtual
memory, page faults), disk and network state, shipping readings to
remote storage so the local disk stays quiet. The experiment: keep the
guest idle, run ModChecker against it, and show the series do not
perturb during the introspection windows (Fig. 9).

The monitor derives each sample from the domain's true resource-demand
state plus sensor noise. Because the hypervisor's introspection path is
read-only and consumes no guest CPU, introspection windows genuinely do
not feed back into guest state — the monitor *would* show a
perturbation if someone added an in-guest agent (see the failure-
injection test, which does exactly that via the ``agent_overhead``
knob).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hypervisor.domain import Domain
from ..hypervisor.clock import SimClock
from ..rng import derive_seed, make_rng

__all__ = ["ResourceSample", "MonitorTrace", "GuestResourceMonitor"]


@dataclass(frozen=True)
class ResourceSample:
    """One reading of the guest's resource counters."""

    t: float                    # simulated seconds
    cpu_idle_pct: float
    cpu_user_pct: float
    cpu_privileged_pct: float
    mem_free_physical_pct: float
    mem_free_virtual_pct: float
    page_faults_per_s: float
    disk_queue_length: float
    disk_io_per_s: float
    net_packets_per_s: float


@dataclass
class MonitorTrace:
    """A recorded monitoring session (the "remote storage")."""

    vm_name: str
    samples: list[ResourceSample] = field(default_factory=list)
    #: [(start, end)] simulated-time spans when VMI accessed the guest
    introspection_windows: list[tuple[float, float]] = field(
        default_factory=list)

    def series(self, attr: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays for one sample attribute."""
        t = np.array([s.t for s in self.samples])
        v = np.array([getattr(s, attr) for s in self.samples])
        return t, v

    def _in_window(self, t: float) -> bool:
        return any(t0 <= t <= t1 for t0, t1 in self.introspection_windows)

    def split_by_window(self, attr: str) -> tuple[np.ndarray, np.ndarray]:
        """(values inside windows, values outside)."""
        inside, outside = [], []
        for s in self.samples:
            (inside if self._in_window(s.t) else outside).append(
                getattr(s, attr))
        return np.array(inside), np.array(outside)

    def perturbation(self, attr: str) -> float:
        """|mean inside − mean outside| in units of the outside std.

        The paper's conclusion "no significant perturbation" means this
        stays within ordinary sensor noise (≈ a couple of sigma).
        """
        inside, outside = self.split_by_window(attr)
        if inside.size == 0 or outside.size < 2:
            return 0.0
        sigma = float(outside.std())
        if sigma == 0:
            return 0.0 if np.allclose(inside.mean(), outside.mean()) else np.inf
        return abs(float(inside.mean()) - float(outside.mean())) / sigma


class GuestResourceMonitor:
    """Samples one domain's resource state on the simulated clock."""

    def __init__(self, domain: Domain, clock: SimClock, *,
                 seed: int | None = None,
                 agent_overhead: float = 0.0) -> None:
        """``agent_overhead`` adds in-guest CPU per sample — zero for
        ModChecker (out-of-VM), nonzero to model an in-guest scanner for
        the contrast experiment."""
        self.domain = domain
        self.clock = clock
        self.rng = make_rng(derive_seed(seed, "monitor", domain.name))
        self.agent_overhead = agent_overhead
        self.trace = MonitorTrace(vm_name=domain.name)

    def sample(self) -> ResourceSample:
        """Take one reading now (guest state + sensor noise)."""
        d = self.domain
        noise = self.rng.normal
        busy = min(1.0, d.cpu_load + self.agent_overhead)
        user = 100.0 * busy * 0.80 + noise(0, 0.4)
        priv = 100.0 * busy * 0.15 + 1.5 + noise(0, 0.3)
        idle = max(0.0, 100.0 - user - priv + noise(0, 0.4))
        mem_used = 0.30 + 0.55 * d.mem_load
        sample = ResourceSample(
            t=self.clock.now,
            cpu_idle_pct=min(100.0, idle),
            cpu_user_pct=max(0.0, user),
            cpu_privileged_pct=max(0.0, priv),
            mem_free_physical_pct=max(0.0, 100.0 * (1 - mem_used)
                                      + noise(0, 0.2)),
            mem_free_virtual_pct=max(0.0, 100.0 * (1 - 0.5 * mem_used)
                                     + noise(0, 0.2)),
            page_faults_per_s=max(0.0, 40.0 + 800.0 * d.mem_load
                                  + noise(0, 6.0)),
            disk_queue_length=max(0.0, 0.05 + 4.0 * d.disk_load
                                  + noise(0, 0.03)),
            disk_io_per_s=max(0.0, 5.0 + 300.0 * d.disk_load
                              + noise(0, 2.0)),
            net_packets_per_s=max(0.0, 12.0 + noise(0, 2.0)),
        )
        self.trace.samples.append(sample)
        return sample

    def run(self, duration: float, interval: float,
            events: list[tuple[float, object]] | None = None) -> MonitorTrace:
        """Sample for ``duration`` simulated seconds every ``interval``.

        ``events`` is a list of ``(at_time_offset, callable)``; each
        callable runs once when the clock passes its offset, and the
        span it occupies on the clock is recorded as an introspection
        window (this is how the Fig. 9 experiment injects ModChecker
        runs into the timeline).
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        start = self.clock.now
        pending = sorted(events or [], key=lambda e: e[0])
        while self.clock.now - start < duration:
            self.sample()
            while pending and self.clock.now - start >= pending[0][0]:
                _, action = pending.pop(0)
                w0 = self.clock.now
                action()
                self.trace.introspection_windows.append((w0, self.clock.now))
                self.sample()
            self.clock.advance(interval)
        return self.trace
