"""Telemetry sinks for the operational CLI (the ``--sink`` contract).

Health-check CLIs compose into node pipelines by separating the *exit
code* (the machine-readable verdict) from the *telemetry destination*:
the check always exits OK/WARN/CRITICAL, and ``--sink`` says where the
structured result record goes — nowhere by default, so a cron line
stays quiet. Destinations take ``KEY=VALUE`` options via repeatable
``--sink-opts`` flags.

=============  =========================================================
``do_nothing``  discard the record (the default; alias ``null``)
``stdout``      print the record as one deterministic JSON line
``jsonl``       append the record to ``path=FILE`` as a JSONL row
``prometheus``  write the run's metrics registry to ``path=FILE`` in
                Prometheus text format (plus the record as ``# HELP``
                -style comments is *not* done — the registry already
                carries the fleet series)
=============  =========================================================

:func:`parse_sink` maps a name + option mapping onto a :class:`Sink`;
unknown names or missing/unknown options raise :class:`SinkError`,
which the CLI turns into UNKNOWN (exit 3) before any work runs.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["Sink", "NullSink", "StdoutSink", "JsonlSink", "PromSink",
           "SinkError", "parse_sink", "parse_sink_opts", "SINK_NAMES"]


class SinkError(ValueError):
    """Unknown sink name or invalid sink options (a usage error)."""


class Sink:
    """One telemetry destination for a check's result record."""

    name = "sink"

    def emit(self, record: dict) -> None:
        """Deliver one structured result record."""
        raise NotImplementedError

    def finalize(self, obs) -> None:
        """Flush anything derived from the run's observability bundle."""


class NullSink(Sink):
    """Discard everything (the default: exit codes carry the verdict)."""

    name = "do_nothing"

    def emit(self, record: dict) -> None:
        pass


class StdoutSink(Sink):
    """One deterministic JSON line per record on stdout."""

    name = "stdout"

    def emit(self, record: dict) -> None:
        print(json.dumps(record, sort_keys=True, separators=(",", ":")))


class JsonlSink(Sink):
    """Append records to a JSONL file (``path=FILE``)."""

    name = "jsonl"

    def __init__(self, path: str) -> None:
        self.path = Path(path)

    def emit(self, record: dict) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")


class PromSink(Sink):
    """Write the run's metrics registry as Prometheus text (``path=FILE``).

    The record itself is ignored: everything it summarises is already a
    series in the registry (see the vocabulary in
    :mod:`repro.obs.bridge`), and node exporters scrape files, not
    JSON.
    """

    name = "prometheus"

    def __init__(self, path: str) -> None:
        self.path = Path(path)

    def emit(self, record: dict) -> None:
        pass

    def finalize(self, obs) -> None:
        obs.metrics.write_prometheus(self.path)


#: The closed sink vocabulary (``null`` aliases ``do_nothing``).
SINK_NAMES = ("do_nothing", "null", "stdout", "jsonl", "prometheus")


def parse_sink_opts(pairs: list[str] | None) -> dict[str, str]:
    """``KEY=VALUE`` strings (repeatable ``--sink-opts``) -> mapping."""
    opts: dict[str, str] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SinkError(
                f"--sink-opts takes KEY=VALUE, got {pair!r}")
        opts[key] = value
    return opts


def parse_sink(name: str, opts: dict[str, str] | None = None) -> Sink:
    """Resolve a ``--sink`` name + options to a live :class:`Sink`."""
    opts = dict(opts or {})

    def need(key: str) -> str:
        try:
            return opts.pop(key)
        except KeyError:
            raise SinkError(
                f"sink {name!r} needs --sink-opts {key}=...") from None

    if name in ("do_nothing", "null"):
        sink: Sink = NullSink()
    elif name == "stdout":
        sink = StdoutSink()
    elif name == "jsonl":
        sink = JsonlSink(need("path"))
    elif name == "prometheus":
        sink = PromSink(need("path"))
    else:
        raise SinkError(
            f"unknown sink {name!r} (choose from "
            f"{', '.join(SINK_NAMES)})")
    if opts:
        raise SinkError(
            f"sink {name!r} does not take option(s): "
            f"{', '.join(sorted(opts))}")
    return sink
