"""Metrics registry: counters, gauges and histograms with exporters.

A minimal, dependency-free metrics layer shaped like the Prometheus
client data model: a :class:`MetricsRegistry` owns named metric
*families* (:class:`Counter`, :class:`Gauge`, :class:`Histogram`), each
family holds one sample per label combination, and the registry renders

* **Prometheus exposition text** (:meth:`MetricsRegistry.to_prometheus`)
  — ``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
  histogram buckets with an ``+Inf`` bound and ``_sum`` / ``_count``
  series — parseable by any Prometheus scraper; and
* **JSON snapshots** (:meth:`MetricsRegistry.snapshot`) for CI
  artifacts and notebook diffing.

Counters additionally support :meth:`Counter.set_to` for bridging
sources that already keep cumulative totals (e.g.
:class:`~repro.vmi.core.VMIStats`), enforcing monotonicity so a bridge
bug cannot silently publish a counter that goes backwards.

The disabled path is :data:`NULL_METRICS`: every family accessor
returns one shared no-op metric, so un-exported runs pay nothing.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = ["DEFAULT_BUCKETS", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "NullMetrics", "NULL_METRICS"]

#: Default latency buckets, in (simulated) seconds.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"        # canonical Prometheus spelling, not 'nan'
    return repr(float(value))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()
                   ) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in items)
    return "{" + body + "}"


class _Metric:
    """One metric family: a name, help text and labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    @staticmethod
    def _key(labels: dict[str, object]) -> LabelKey:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter(_Metric):
    """Monotonically non-decreasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._samples: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_to(self, value: float, **labels: object) -> None:
        """Publish a cumulative total from an external monotone source.

        Bridges sources that already count (``VMIStats``,
        ``FaultStats``); raises if the new total is below the published
        one, which would make the counter lie to rate() queries.
        """
        key = self._key(labels)
        current = self._samples.get(key, 0.0)
        if value < current:
            raise ValueError(
                f"counter {self.name}{dict(key)} went backwards: "
                f"{current} -> {value}")
        self._samples[key] = float(value)

    def value(self, **labels: object) -> float:
        return self._samples.get(self._key(labels), 0.0)

    def _render(self) -> list[str]:
        return [f"{self.name}{_render_labels(key)} {_format_value(v)}"
                for key, v in sorted(self._samples.items())]

    def _snapshot(self) -> list[dict]:
        return [{"labels": dict(key), "value": v}
                for key, v in sorted(self._samples.items())]


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._samples: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._samples[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._samples.get(self._key(labels), 0.0)

    _render = Counter._render
    _snapshot = Counter._snapshot


class _HistSample:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets   # per-bucket, not cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Observations bucketed by upper bound, Prometheus-style."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help)
        cleaned = sorted(set(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket")
        if math.isinf(cleaned[-1]):
            cleaned.pop()                      # +Inf is implicit
        self.buckets = tuple(cleaned)
        self._samples: dict[LabelKey, _HistSample] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        sample = self._samples.get(key)
        if sample is None:
            sample = self._samples[key] = _HistSample(len(self.buckets) + 1)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                sample.bucket_counts[i] += 1
                break
        else:
            sample.bucket_counts[-1] += 1      # the +Inf bucket
        sample.sum += value
        sample.count += 1

    def sum(self, **labels: object) -> float:
        sample = self._samples.get(self._key(labels))
        return sample.sum if sample else 0.0

    def count(self, **labels: object) -> int:
        sample = self._samples.get(self._key(labels))
        return sample.count if sample else 0

    def _render(self) -> list[str]:
        lines: list[str] = []
        for key, sample in sorted(self._samples.items()):
            cumulative = 0
            for bound, n in zip(self.buckets, sample.bucket_counts):
                cumulative += n
                labels = _render_labels(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += sample.bucket_counts[-1]
            labels = _render_labels(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_format_value(sample.sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{sample.count}")
        return lines

    def _snapshot(self) -> list[dict]:
        # Cumulative le-keyed buckets, exactly like the Prometheus
        # exposition (`+Inf` included) — a JSON snapshot and a scraped
        # `_bucket` series must agree sample-for-sample, and raw
        # per-bucket counts silently broke that round trip.
        out: list[dict] = []
        for key, sample in sorted(self._samples.items()):
            buckets: dict[str, int] = {}
            cumulative = 0
            for bound, n in zip(self.buckets, sample.bucket_counts):
                cumulative += n
                buckets[_format_value(bound)] = cumulative
            buckets["+Inf"] = cumulative + sample.bucket_counts[-1]
            out.append({"labels": dict(key), "buckets": buckets,
                        "sum": sample.sum, "count": sample.count})
        return out


class MetricsRegistry:
    """Owns metric families; renders Prometheus text and JSON snapshots."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exporters -------------------------------------------------------

    def to_prometheus(self) -> str:
        """Render the whole registry in Prometheus exposition format."""
        out: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                out.append(f"# HELP {metric.name} {metric.help}")
            out.append(f"# TYPE {metric.name} {metric.kind}")
            out.extend(metric._render())
        return "\n".join(out) + ("\n" if out else "")

    def snapshot(self) -> dict:
        """JSON-able snapshot of every family and sample."""
        return {metric.name: {"type": metric.kind, "help": metric.help,
                              "samples": metric._snapshot()}
                for metric in self._metrics.values()}

    def write_prometheus(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_prometheus())
        return path

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2,
                                   sort_keys=True))
        return path


class _NullMetric:
    """Shared no-op standing in for every family when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def set_to(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """Disabled registry: every accessor returns the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> _NullMetric:
        return _NULL_METRIC

    def to_prometheus(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}

    def __iter__(self):
        return iter(())

    def __len__(self) -> int:
        return 0


#: Shared no-op registry — the default wired through the pipeline.
NULL_METRICS = NullMetrics()
