"""Observability: tracing + metrics + audit events over the pipeline.

One :class:`Observability` bundle (a tracer, a metrics registry and a
structured event log) threads through the whole VMI -> Searcher ->
Parser -> Checker -> daemon pipeline. The default is :data:`NULL_OBS` —
shared no-ops — so an un-instrumented run pays nothing; enable with::

    from repro.obs import make_observability
    obs = make_observability(hv.clock)
    mc = ModChecker(hv, profile, obs=obs)
    mc.check_pool("hal.dll")
    obs.metrics.write_prometheus("metrics.prom")
    obs.events.write_jsonl("audit.jsonl")
    # repro.analysis.export.write_chrome_trace(obs.tracer, "trace.json")

See ``docs/OBSERVABILITY.md`` for the span, metric and event
vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..hypervisor.clock import SimClock
from .bridge import (BREAKER_STATE_VALUES, STAGES, record_breaker_states,
                     record_chaos_stats, record_daemon_cycle,
                     record_fault_stats, record_fleet_cycle,
                     record_manifest_stats, record_membership,
                     record_pool_report, record_repair_stats,
                     record_slo_status, record_stage_timings,
                     record_trap_stats, record_vmi_instance)
from .events import EVENT_NAMES, NULL_EVENTS, Event, EventLog, NullEventLog
from .sinks import (SINK_NAMES, JsonlSink, NullSink, PromSink, Sink,
                    SinkError, StdoutSink, parse_sink, parse_sink_opts)
from .metrics import (DEFAULT_BUCKETS, NULL_METRICS, Counter, Gauge,
                      Histogram, MetricsRegistry, NullMetrics)
from .profiler import PATH_SEP, Profile, ProfileNode
from .slo import (DEFAULT_OBJECTIVES, SLO_EXIT_CODES, LogHistogram,
                  ObjectiveStatus, SloConfig, SloEngine, SloObjective,
                  SloStatus, SloTracker)
from .trace import (NULL_TRACER, OP_NAMES, SPAN_NAMES, Charge, NullTracer,
                    Span, Tracer)

__all__ = [
    "Observability", "NULL_OBS", "make_observability",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SPAN_NAMES",
    "Charge", "OP_NAMES",
    "Profile", "ProfileNode", "PATH_SEP",
    "LogHistogram", "SloObjective", "SloConfig", "SloTracker",
    "SloEngine", "SloStatus", "ObjectiveStatus", "DEFAULT_OBJECTIVES",
    "SLO_EXIT_CODES",
    "MetricsRegistry", "NullMetrics", "NULL_METRICS",
    "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "EventLog", "NullEventLog", "NULL_EVENTS", "Event", "EVENT_NAMES",
    "STAGES", "BREAKER_STATE_VALUES", "record_stage_timings",
    "record_pool_report", "record_vmi_instance", "record_fault_stats",
    "record_daemon_cycle", "record_breaker_states", "record_membership",
    "record_chaos_stats", "record_manifest_stats", "record_trap_stats",
    "record_fleet_cycle", "record_repair_stats", "record_slo_status",
    "Sink", "NullSink", "StdoutSink", "JsonlSink", "PromSink",
    "SinkError", "parse_sink", "parse_sink_opts", "SINK_NAMES",
]


@dataclass(frozen=True)
class Observability:
    """Tracer + metrics + event log travelling together through the stack."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | NullMetrics
    events: EventLog | NullEventLog = field(default=NULL_EVENTS)

    @property
    def enabled(self) -> bool:
        """True when any side will actually record anything."""
        return (self.tracer.enabled or self.metrics.enabled
                or self.events.enabled)


#: The zero-cost default: no-op tracer, no-op metrics, no-op events.
NULL_OBS = Observability(tracer=NULL_TRACER, metrics=NULL_METRICS)


def make_observability(clock: SimClock, *,
                       events_capacity: int = 65536,
                       events_sink: str | Path | None = None,
                       ) -> Observability:
    """A live bundle recording against ``clock``.

    ``events_sink`` opens a write-through JSONL file for the audit log
    (complete even after the in-memory ring evicts).
    """
    return Observability(tracer=Tracer(clock), metrics=MetricsRegistry(),
                         events=EventLog(clock, capacity=events_capacity,
                                         sink=events_sink))
