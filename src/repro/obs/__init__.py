"""Observability: tracing + metrics over the simulated pipeline.

One :class:`Observability` bundle (a tracer and a metrics registry)
threads through the whole VMI -> Searcher -> Parser -> Checker -> daemon
pipeline. The default is :data:`NULL_OBS` — shared no-ops — so an
un-instrumented run pays nothing; enable with::

    from repro.obs import make_observability
    obs = make_observability(hv.clock)
    mc = ModChecker(hv, profile, obs=obs)
    mc.check_pool("hal.dll")
    obs.metrics.write_prometheus("metrics.prom")
    # repro.analysis.export.write_chrome_trace(obs.tracer, "trace.json")

See ``docs/OBSERVABILITY.md`` for the span and metric vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypervisor.clock import SimClock
from .bridge import (BREAKER_STATE_VALUES, STAGES, record_breaker_states,
                     record_chaos_stats, record_daemon_cycle,
                     record_fault_stats, record_membership,
                     record_pool_report, record_stage_timings,
                     record_vmi_instance)
from .metrics import (DEFAULT_BUCKETS, NULL_METRICS, Counter, Gauge,
                      Histogram, MetricsRegistry, NullMetrics)
from .trace import NULL_TRACER, SPAN_NAMES, NullTracer, Span, Tracer

__all__ = [
    "Observability", "NULL_OBS", "make_observability",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "SPAN_NAMES",
    "MetricsRegistry", "NullMetrics", "NULL_METRICS",
    "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "STAGES", "BREAKER_STATE_VALUES", "record_stage_timings",
    "record_pool_report", "record_vmi_instance", "record_fault_stats",
    "record_daemon_cycle", "record_breaker_states", "record_membership",
    "record_chaos_stats",
]


@dataclass(frozen=True)
class Observability:
    """A tracer + metrics registry travelling together through the stack."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry | NullMetrics

    @property
    def enabled(self) -> bool:
        """True when either side will actually record anything."""
        return self.tracer.enabled or self.metrics.enabled


#: The zero-cost default: no-op tracer, no-op metrics.
NULL_OBS = Observability(tracer=NULL_TRACER, metrics=NULL_METRICS)


def make_observability(clock: SimClock) -> Observability:
    """A live bundle recording against ``clock``."""
    return Observability(tracer=Tracer(clock), metrics=MetricsRegistry())
