"""SLO engine: HDR-style quantiles, error budgets, burn-rate alerts.

The fleet exit-code contract (PR 7) answers *is the fleet healthy right
now*; this module answers the operator's longer-horizon question: *is
the service meeting its objectives over time, and how fast is it
spending its error budget?* Three layers:

:class:`LogHistogram`
    An HDR-style log-bucketed histogram: bucket ``i`` covers
    ``(min_value * growth**(i-1), min_value * growth**i]``, so any
    recorded value is reproduced to a relative error bounded by the
    bucket growth factor (``growth - 1``) at *every* quantile — unlike
    the fixed-bucket Prometheus histograms in :mod:`repro.obs.metrics`,
    whose p999 collapses to a bucket boundary. Histograms are sparse,
    mergeable (merging per-shard histograms equals the pooled
    histogram, exactly), and JSON-serialisable.

:class:`SloTracker`
    Per-scope (per shard, per daemon) sliding-window objective
    tracking. Each :class:`SloObjective` names a signal
    (``cycle_latency``, ``detection_latency``, ``mttr``,
    ``coverage``), a threshold, and a goal (the required good
    fraction). Every recorded value is classified good/bad against the
    threshold and fed both the histogram and a sliding event window.

:class:`SloEngine`
    The roll-up: one tracker per scope, Google-SRE-style **multi-window
    burn rates** (a fast 5-minute-equivalent and a slow 1-hour-
    equivalent window on the *simulated* clock), error budgets over the
    slow window, edge-triggered ``slo.breach`` / ``slo.budget`` audit
    events and ``modchecker_slo_*`` metrics, and the mapping onto the
    fleet exit-code contract: **budget exhausted → WARN (1), burn-rate
    critical → CRITICAL (2)**. A burn rate of ``B`` means the scope is
    spending error budget ``B×`` faster than the objective allows;
    critical requires *both* windows over their thresholds, so a single
    bad cycle long ago cannot page.

Determinism: everything runs on simulated timestamps passed in by the
caller, so for a fixed scenario seed the full alert sequence — breach
edges included — is reproducible bit-for-bit.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from .bridge import record_slo_status

__all__ = ["LogHistogram", "SloObjective", "SloConfig", "ObjectiveStatus",
           "SloStatus", "SloTracker", "SloEngine", "DEFAULT_OBJECTIVES",
           "SLO_EXIT_CODES", "SLO_QUANTILES"]

#: SLO state -> fleet exit-code contract (see ``modchecker fleet``).
SLO_EXIT_CODES = {"ok": 0, "warn": 1, "critical": 2}

#: The quantiles published per objective.
SLO_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class LogHistogram:
    """Sparse log-bucketed histogram with bounded relative error.

    ``growth`` is the geometric bucket width: any value is recalled to
    within a factor of ``sqrt(growth)`` (relative error strictly below
    ``growth - 1``). Bucket 0 is the underflow bucket for values at or
    below ``min_value``. Two histograms with identical parameters merge
    by adding bucket counts — exactly, so per-shard merging commutes
    and associates.
    """

    __slots__ = ("min_value", "growth", "_log_growth", "counts",
                 "count", "sum", "min_seen", "max_seen")

    def __init__(self, *, min_value: float = 1e-6,
                 growth: float = 1.05) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_value = float(min_value)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.counts: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return max(1, math.ceil(
            math.log(value / self.min_value) / self._log_growth))

    def _representative(self, index: int) -> float:
        if index == 0:
            return self.min_value
        # geometric midpoint of (min*g^(i-1), min*g^i]
        return self.min_value * self.growth ** (index - 0.5)

    def observe(self, value: float) -> None:
        """Record one non-negative observation."""
        if value < 0:
            raise ValueError(f"negative observation {value!r}")
        index = self._index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.sum += value
        self.min_seen = min(self.min_seen, value)
        self.max_seen = max(self.max_seen, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) to within the bucket error bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative > rank:
                value = self._representative(index)
                return min(max(value, self.min_seen), self.max_seen)
        return self.max_seen                       # pragma: no cover

    def quantiles(self, qs=SLO_QUANTILES) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (in place); returns self."""
        if (other.min_value != self.min_value
                or other.growth != self.growth):
            raise ValueError(
                "cannot merge histograms with different bucket layouts")
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.sum += other.sum
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)
        return self

    def copy(self) -> "LogHistogram":
        clone = LogHistogram(min_value=self.min_value, growth=self.growth)
        clone.merge(self)
        return clone

    def to_dict(self) -> dict:
        return {"min_value": self.min_value, "growth": self.growth,
                "counts": {str(i): n
                           for i, n in sorted(self.counts.items())},
                "count": self.count, "sum": self.sum,
                "min_seen": self.min_seen if self.count else None,
                "max_seen": self.max_seen if self.count else None}

    @classmethod
    def from_dict(cls, doc: dict) -> "LogHistogram":
        hist = cls(min_value=doc["min_value"], growth=doc["growth"])
        hist.counts = {int(i): int(n) for i, n in doc["counts"].items()}
        hist.count = int(doc["count"])
        hist.sum = float(doc["sum"])
        hist.min_seen = (float(doc["min_seen"])
                         if doc.get("min_seen") is not None else math.inf)
        hist.max_seen = (float(doc["max_seen"])
                         if doc.get("max_seen") is not None else -math.inf)
        return hist


@dataclass(frozen=True)
class SloObjective:
    """One objective: a signal, a threshold and a required good rate."""

    name: str
    #: the good/bad threshold for recorded values (seconds for latency
    #: objectives, a fraction for ``coverage``)
    target: float
    #: required fraction of good events (the SLO itself)
    goal: float = 0.99
    #: flip the comparison: ``coverage`` is good when *above* target
    higher_is_better: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.goal < 1.0:
            raise ValueError(f"goal must be in (0, 1), got {self.goal}")

    def is_good(self, value: float) -> bool:
        if self.higher_is_better:
            return value >= self.target
        return value <= self.target

    @property
    def budget(self) -> float:
        """The allowed bad fraction (the error budget)."""
        return 1.0 - self.goal


#: Default objectives for the shipped pipeline signals.
DEFAULT_OBJECTIVES = (
    SloObjective("cycle_latency", target=30.0, goal=0.99),
    SloObjective("detection_latency", target=120.0, goal=0.95),
    SloObjective("mttr", target=600.0, goal=0.90),
    SloObjective("coverage", target=0.8, goal=0.95,
                 higher_is_better=True),
)


@dataclass(frozen=True)
class SloConfig:
    """Objectives plus the multi-window burn-rate alerting policy."""

    objectives: tuple[SloObjective, ...] = DEFAULT_OBJECTIVES
    #: the fast ("5m-equivalent") burn window, simulated seconds
    fast_window: float = 300.0
    #: the slow ("1h-equivalent") window; also the budget window
    slow_window: float = 3600.0
    #: burn-rate thresholds (Google SRE workbook's 14.4x / 6x defaults)
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("need at least one objective")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError("windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError("fast_window must not exceed slow_window")
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names in {names}")

    def objective(self, name: str) -> SloObjective:
        for obj in self.objectives:
            if obj.name == name:
                return obj
        raise KeyError(f"no objective named {name!r}")

    @classmethod
    def from_dict(cls, doc: dict) -> "SloConfig":
        objectives = tuple(
            SloObjective(
                name=entry["name"], target=float(entry["target"]),
                goal=float(entry.get("goal", 0.99)),
                higher_is_better=bool(entry.get("higher_is_better",
                                                False)))
            for entry in doc.get("objectives", ()))
        kwargs: dict = {}
        if objectives:
            kwargs["objectives"] = objectives
        for key in ("fast_window", "slow_window", "fast_burn",
                    "slow_burn"):
            if key in doc:
                kwargs[key] = float(doc[key])
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str | Path) -> "SloConfig":
        """Parse a JSON config file (see docs/OBSERVABILITY.md)."""
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"cannot read SLO config {path}: {exc}") \
                from exc
        return cls.from_dict(doc)


@dataclass(frozen=True)
class ObjectiveStatus:
    """One objective's evaluated health at one instant."""

    name: str
    state: str                      # "ok" | "warn" | "critical"
    budget_remaining: float         # 1.0 = untouched, <= 0 = exhausted
    fast_burn: float
    slow_burn: float
    good: int                       # events in the slow window
    bad: int
    #: lifetime totals (monotone — windows shrink, these never do, so
    #: the ``modchecker_slo_events_total`` counter publishes from here)
    total_good: int = 0
    total_bad: int = 0
    quantiles: dict[float, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"name": self.name, "state": self.state,
                "budget_remaining": self.budget_remaining,
                "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
                "good": self.good, "bad": self.bad,
                "total_good": self.total_good,
                "total_bad": self.total_bad,
                "quantiles": {f"p{str(q).replace('0.', '')}": v
                              for q, v in self.quantiles.items()}}


_STATE_RANK = {"ok": 0, "warn": 1, "critical": 2}


@dataclass(frozen=True)
class SloStatus:
    """The engine's roll-up: per-objective statuses + worst state."""

    time: float
    objectives: tuple[ObjectiveStatus, ...]

    @property
    def state(self) -> str:
        worst = "ok"
        for obj in self.objectives:
            if _STATE_RANK[obj.state] > _STATE_RANK[worst]:
                worst = obj.state
        return worst

    @property
    def exit_code(self) -> int:
        """The fleet exit-code contract mapping of :attr:`state`."""
        return SLO_EXIT_CODES[self.state]

    def objective(self, name: str) -> ObjectiveStatus:
        for obj in self.objectives:
            if obj.name == name:
                return obj
        raise KeyError(f"no objective named {name!r}")

    def to_dict(self) -> dict:
        return {"time": self.time, "state": self.state,
                "exit_code": self.exit_code,
                "objectives": [o.to_dict() for o in self.objectives]}


class _ObjectiveWindow:
    """Sliding good/bad event window + quantile histogram for one scope."""

    __slots__ = ("events", "hist", "total_good", "total_bad")

    def __init__(self) -> None:
        self.events: deque[tuple[float, bool]] = deque()
        self.hist = LogHistogram()
        self.total_good = 0
        self.total_bad = 0

    def prune(self, horizon: float) -> None:
        while self.events and self.events[0][0] < horizon:
            self.events.popleft()

    def window(self, start: float, end: float) -> tuple[int, int]:
        good = bad = 0
        for time, ok in self.events:
            if start < time <= end:
                if ok:
                    good += 1
                else:
                    bad += 1
        return good, bad


class SloTracker:
    """Objective tracking for one scope (one shard / one daemon)."""

    def __init__(self, config: SloConfig | None = None) -> None:
        self.config = config or SloConfig()
        self._windows: dict[str, _ObjectiveWindow] = {
            obj.name: _ObjectiveWindow() for obj in self.config.objectives}

    def record(self, name: str, value: float, now: float) -> bool:
        """Classify + record one observation; returns good/bad."""
        objective = self.config.objective(name)
        window = self._windows[name]
        good = objective.is_good(value)
        window.events.append((now, good))
        if good:
            window.total_good += 1
        else:
            window.total_bad += 1
        window.hist.observe(value)
        window.prune(now - self.config.slow_window)
        return good

    def histogram(self, name: str) -> LogHistogram:
        return self._windows[name].hist

    def _burn(self, objective: SloObjective, window: _ObjectiveWindow,
              now: float, span: float) -> float:
        good, bad = window.window(now - span, now)
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / objective.budget

    def evaluate(self, now: float) -> SloStatus:
        """Evaluate every objective's budget + burn at time ``now``."""
        cfg = self.config
        statuses = []
        for objective in cfg.objectives:
            window = self._windows[objective.name]
            window.prune(now - cfg.slow_window)
            fast = self._burn(objective, window, now, cfg.fast_window)
            slow = self._burn(objective, window, now, cfg.slow_window)
            good, bad = window.window(now - cfg.slow_window, now)
            budget = 1.0 - slow      # slow burn == budget spent fraction
            if fast >= cfg.fast_burn and slow >= cfg.slow_burn:
                state = "critical"
            elif budget <= 0.0:
                state = "warn"
            else:
                state = "ok"
            statuses.append(ObjectiveStatus(
                name=objective.name, state=state,
                budget_remaining=budget, fast_burn=fast, slow_burn=slow,
                good=good, bad=bad,
                total_good=window.total_good,
                total_bad=window.total_bad,
                quantiles=window.hist.quantiles()))
        return SloStatus(time=now, objectives=tuple(statuses))


class SloEngine:
    """Many scopes, one verdict: trackers + alert edges + publication.

    One :class:`SloTracker` per scope (shards in a fleet; the single
    ``"daemon"`` scope otherwise). :meth:`evaluate` re-evaluates every
    scope, emits **edge-triggered** ``slo.breach`` (entering critical)
    and ``slo.budget`` (budget newly exhausted) audit events, publishes
    the aggregate ``modchecker_slo_*`` metrics, and returns a pooled
    :class:`SloStatus` whose state is the *worst* scope state — one
    burning shard must not hide inside a healthy average.
    """

    def __init__(self, config: SloConfig | None = None, *,
                 obs=None) -> None:
        from . import NULL_OBS      # circular-import guard
        self.config = config or SloConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.trackers: dict[str, SloTracker] = {}
        self._names = {o.name for o in self.config.objectives}
        #: (scope, objective) pairs currently critical / exhausted
        self._critical: set[tuple[str, str]] = set()
        self._exhausted: set[tuple[str, str]] = set()
        #: cumulative breach edges per objective (for the counter)
        self.breaches: dict[str, int] = {}

    def tracker(self, scope: str) -> SloTracker:
        tracker = self.trackers.get(scope)
        if tracker is None:
            tracker = self.trackers[scope] = SloTracker(self.config)
        return tracker

    def record(self, scope: str, name: str, value: float,
               now: float) -> bool | None:
        """Record one observation — or ignore it, if the config does
        not track this signal (the pipeline feeds every signal it has;
        the config chooses which become objectives)."""
        if name not in self._names:
            return None
        return self.tracker(scope).record(name, value, now)

    def _note_edges(self, scope: str, status: SloStatus) -> None:
        events = self.obs.events
        for obj in status.objectives:
            key = (scope, obj.name)
            if obj.state == "critical":
                if key not in self._critical:
                    self._critical.add(key)
                    self.breaches[obj.name] = \
                        self.breaches.get(obj.name, 0) + 1
                    if events.enabled:
                        events.emit("slo.breach", scope=scope,
                                    objective=obj.name,
                                    fast_burn=round(obj.fast_burn, 4),
                                    slow_burn=round(obj.slow_burn, 4))
            else:
                self._critical.discard(key)
            if obj.budget_remaining <= 0.0:
                if key not in self._exhausted:
                    self._exhausted.add(key)
                    if events.enabled:
                        events.emit("slo.budget", scope=scope,
                                    objective=obj.name,
                                    remaining=round(obj.budget_remaining,
                                                    4))
            else:
                self._exhausted.discard(key)

    def evaluate(self, now: float) -> SloStatus:
        """Evaluate all scopes; emit edges + metrics; pooled status."""
        cfg = self.config
        scope_statuses: dict[str, SloStatus] = {}
        for scope in sorted(self.trackers):
            status = self.trackers[scope].evaluate(now)
            self._note_edges(scope, status)
            scope_statuses[scope] = status

        pooled = []
        for objective in cfg.objectives:
            per_scope = [s.objective(objective.name)
                         for s in scope_statuses.values()]
            merged = LogHistogram()
            for tracker in self.trackers.values():
                merged.merge(tracker.histogram(objective.name))
            good = sum(o.good for o in per_scope)
            bad = sum(o.bad for o in per_scope)
            worst = max(per_scope, key=lambda o: _STATE_RANK[o.state],
                        default=None)
            pooled.append(ObjectiveStatus(
                name=objective.name,
                state=worst.state if worst else "ok",
                budget_remaining=min(
                    (o.budget_remaining for o in per_scope), default=1.0),
                fast_burn=max((o.fast_burn for o in per_scope),
                              default=0.0),
                slow_burn=max((o.slow_burn for o in per_scope),
                              default=0.0),
                good=good, bad=bad,
                total_good=sum(o.total_good for o in per_scope),
                total_bad=sum(o.total_bad for o in per_scope),
                quantiles=merged.quantiles()))
        status = SloStatus(time=now, objectives=tuple(pooled))
        if self.obs.metrics.enabled:
            record_slo_status(self.obs.metrics, status,
                              breaches=self.breaches)
        return status
