"""Simulated-clock tracing: nested spans over :class:`SimClock`.

The paper's whole evaluation (Figs. 7-9) is a *where-does-the-time-go*
story — Module-Searcher vs. Module-Parser vs. Integrity-Checker, per VM
and per module. This module makes that breakdown a first-class,
machine-readable artifact: a :class:`Tracer` records nested spans with
simulated timestamps, and :func:`repro.analysis.export.write_chrome_trace`
turns them into a Chrome ``about:tracing`` / Perfetto-loadable JSON file.

Span names are a closed vocabulary (:data:`SPAN_NAMES`) so dashboards
and CI checks can rely on them:

========================  ====================================================
``vmi.read_page``         one foreign-frame map (cache misses only)
``retry.attempt``         one re-issued guest read after a transient fault
``searcher.walk``         one full PsLoadedModuleList traversal
``searcher.copy``         find + copy one module image out of one guest
``parser.parse``          Algorithm 1 over one copied image
``checker.compare``       the full vote/compare phase of one check
``modchecker.fetch``      the acquisition phase over a VM pool
``modchecker.check``      one end-to-end check (fetch + compare + vote)
``daemon.cycle``          one daemon sweep cycle
========================  ====================================================

Timestamps come from the *simulated* clock, so a trace is deterministic
for a given seed and reconciles exactly with the cost-model timing
breakdowns. The disabled path is :data:`NULL_TRACER`, a shared no-op
whose ``span()`` returns one reusable context manager — hot call sites
additionally guard on ``tracer.enabled`` so a disabled run builds no
attribute dicts at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hypervisor.clock import SimClock

__all__ = ["SPAN_NAMES", "OP_NAMES", "Span", "Charge", "Tracer",
           "NullTracer", "NULL_TRACER"]

#: The span vocabulary emitted by the instrumented pipeline.
SPAN_NAMES = (
    "vmi.read_page", "retry.attempt", "searcher.walk", "searcher.copy",
    "parser.parse", "checker.compare", "modchecker.fetch",
    "modchecker.check", "daemon.cycle",
)

#: The page-op vocabulary of cost-model charge records (closed, like
#: :data:`SPAN_NAMES`). Each name maps one :class:`~repro.perf.costmodel.
#: CostModel` charge site in :class:`~repro.vmi.core.VMIInstance`:
#:
#: ==================  ==================================================
#: ``page_translate``  one guest page-table walk (``translate_walk``)
#: ``page_copy``       one foreign-frame map + copy-out (``page_map``)
#: ``page_checksum``   one hypervisor-side page digest
#: ``page_protect``    one frame armed with EPT write-protection
#: ``trap_deliver``    coalesced write traps drained (per-trap cost)
#: ``page_write``      one privileged remediation frame write
#: ``small_read``      one sub-page read / trap-ring poll
#: ``retry_probe``     one re-issued read after a transient fault
#: ==================  ==================================================
OP_NAMES = (
    "page_translate", "page_copy", "page_checksum", "page_protect",
    "trap_deliver", "page_write", "small_read", "retry_probe",
)


@dataclass
class Span:
    """One timed region on the simulated clock."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds inside the span (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def category(self) -> str:
        """The dotted prefix, e.g. ``vmi`` for ``vmi.read_page``."""
        return self.name.split(".", 1)[0]

    def set(self, **attrs: object) -> "Span":
        """Attach attributes after entry (e.g. counts known at exit)."""
        self.attrs.update(attrs)
        return self


@dataclass(frozen=True)
class Charge:
    """One cost-model charge, tagged with the innermost open span.

    Charges are *flat* records of raw Dom0 CPU-seconds, independent of
    the simulated clock's contention stretch — so they stay valid even
    inside :meth:`~repro.hypervisor.xen.Hypervisor.deferred_charges`
    contexts (fleet / parallel scheduling), where span durations are
    zero because the clock is frozen. The profiler
    (:mod:`repro.obs.profiler`) attributes each charge to a (vm,
    module, op) triple by walking the tagged span's ancestry.
    """

    op: str
    cpu: float
    span_id: int | None


class _SpanContext:
    """Context manager created by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, object]) -> None:
        self.tracer = tracer
        self.span = Span(name=name, span_id=tracer._take_id(),
                         parent_id=tracer._parent_id(),
                         start=tracer.clock.now, attrs=attrs)

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.end = self.tracer.clock.now
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self.span)
        return False


class Tracer:
    """Records nested :class:`Span` regions against one simulated clock.

    Usage::

        tracer = Tracer(hv.clock)
        with tracer.span("searcher.walk", vm="Dom1") as s:
            ...
            s.set(entries=10)
        tracer.spans          # all spans, in start order
    """

    enabled = True

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        #: every span ever started, in start order
        self.spans: list[Span] = []
        #: every cost-model charge recorded, in emission order
        self.charges: list[Charge] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # -- bookkeeping for _SpanContext -----------------------------------

    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _parent_id(self) -> int | None:
        return self._stack[-1].span_id if self._stack else None

    def _push(self, span: Span) -> None:
        self.spans.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Exits happen strictly LIFO (context managers), but be tolerant
        # of a caller that leaks an un-exited span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- public API ------------------------------------------------------

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a span; ``with tracer.span(...) as s`` yields the Span."""
        return _SpanContext(self, name, attrs)

    def charge(self, op: str, cpu: float) -> None:
        """Record one cost-model charge against the innermost open span.

        ``op`` must be in :data:`OP_NAMES`; ``cpu`` is raw Dom0
        CPU-seconds (pre-contention). Hot call sites guard on
        ``tracer.enabled`` so a disabled run never reaches here.
        """
        if op not in OP_NAMES:
            raise ValueError(
                f"unknown charge op {op!r}; the vocabulary is closed "
                f"(see repro.obs.trace.OP_NAMES)")
        span_id = self._stack[-1].span_id if self._stack else None
        self.charges.append(Charge(op=op, cpu=cpu, span_id=span_id))

    def total_by_op(self) -> dict[str, float]:
        """Summed raw CPU-seconds per charge op."""
        totals: dict[str, float] = {}
        for c in self.charges:
            totals[c.op] = totals.get(c.op, 0.0) + c.cpu
        return totals

    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def finished_spans(self) -> list[Span]:
        return [s for s in self.spans if s.finished]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def total_by_name(self) -> dict[str, float]:
        """Summed duration per span name (finished spans only)."""
        totals: dict[str, float] = {}
        for s in self.finished_spans():
            totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return totals

    def clear(self) -> None:
        self.spans.clear()
        self.charges.clear()
        self._stack.clear()


class _NullSpanContext:
    """Reusable no-op span context; one shared instance, zero state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpanContext":
        return self

    # mimic the Span surface a caller might poke at
    attrs: dict[str, object] = {}


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same shared no-op.

    Hot call sites (per-page reads) additionally guard on
    ``tracer.enabled`` so the disabled pipeline does not even build the
    keyword-attribute dicts.
    """

    enabled = False
    spans: list[Span] = []          # always empty; shared, never mutated
    charges: list[Charge] = []      # likewise

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        return _NULL_SPAN

    def charge(self, op: str, cpu: float) -> None:
        pass

    def total_by_op(self) -> dict[str, float]:
        return {}

    @property
    def active(self) -> None:
        return None

    def finished_spans(self) -> list[Span]:
        return []

    def total_by_name(self) -> dict[str, float]:
        return {}

    def clear(self) -> None:
        pass


#: Shared no-op tracer — the default wired through the whole pipeline.
NULL_TRACER = NullTracer()
