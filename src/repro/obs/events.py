"""Structured audit log: JSON-lines events on the simulated clock.

Tracing (:mod:`repro.obs.trace`) answers *where the time went*; metrics
(:mod:`repro.obs.metrics`) answer *how much of everything happened*.
Neither answers the forensic question an incident responder asks after
an alert fires: *what exactly happened, in what order, and was it all
part of the same check?* This module supplies that third pillar: an
:class:`EventLog` of discrete, structured events with **correlation
IDs**, so every record produced during one daemon cycle — the chaos
event that rebooted a guest, the breaker that tripped, the pair
comparisons, the verdict, the alert — is joinable into one causal
story.

Event names are a closed vocabulary (:data:`EVENT_NAMES`), mirroring
the closed span vocabulary, so downstream tooling (the CI vocabulary
lint, dashboards, the evidence bundles of :mod:`repro.forensics`) can
rely on them:

=======================  ==============================================
``check.start``          one pool/target check begins
``check.verdict``        that check's verdict landed
``pair.compared``        one pairwise module comparison
``module.acquired``      Searcher+Parser outcome for one VM
``module.carved``        one anti-DKOM carving sweep of one VM
``breaker.tripped``      a VM's circuit breaker opened
``membership.changed``   a VM was admitted / evicted / seen rebooting
``chaos.applied``        the chaos engine applied a lifecycle event
``alert.raised``         the daemon raised an alert
``daemon.cycle``         one daemon sweep cycle completed
``manifest.hit``         incremental sweep validated a cached manifest
``manifest.invalidated`` manifests dropped (reason in the attrs)
``trap.protected``       a manifest's pages were write-protected
``trap.delivered``       coalesced write traps drained for one VM
``trap.fallback``        trap validation fell back to sweep work
``fleet.cycle``          one fleet scheduler round over all shards
``shard.changed``        a shard was created / retired / admitted / evicted
``quorum.borrowed``      a starved shard borrowed sibling references
``repair.attempted``     one write-back attempt of a remediation
``repair.verified``      re-verification confirmed the repair clean
``repair.failed``        a repair attempt failed re-verification
``repair.quarantined``   retry budget spent; VM escalated to quarantine
``slo.breach``           an objective's burn rate went critical
``slo.budget``           an objective's error budget was exhausted
=======================  ==============================================

Correlation works through a context stack: the daemon mints one
``check_id`` per cycle and wraps the cycle in
:meth:`EventLog.correlate`; every ``emit`` inside — including the ones
made layers down in ModChecker, the integrity checker and the carving
sweep — inherits that id. A standalone ``check_pool`` call (no daemon)
mints its own. Timestamps come from the *simulated* clock and the log
carries a monotone sequence number, so for a fixed scenario seed two
runs serialise to byte-identical JSONL.

Retention is a bounded ring (``capacity`` events); an optional JSONL
file sink receives every event write-through, so the file is complete
even when the ring has evicted. The disabled path is
:data:`NULL_EVENTS`, a shared no-op whose ``emit`` does nothing — hot
call sites additionally guard on ``events.enabled`` so a disabled run
builds no attribute dicts at all.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from ..hypervisor.clock import SimClock

__all__ = ["EVENT_NAMES", "Event", "EventLog", "NullEventLog",
           "NULL_EVENTS"]

#: The closed event-name vocabulary of the audit log.
EVENT_NAMES = (
    "check.start", "check.verdict", "pair.compared", "module.acquired",
    "module.carved", "breaker.tripped", "membership.changed",
    "chaos.applied", "alert.raised", "daemon.cycle",
    "manifest.hit", "manifest.invalidated",
    "trap.protected", "trap.delivered", "trap.fallback",
    "fleet.cycle", "shard.changed", "quorum.borrowed",
    "repair.attempted", "repair.verified", "repair.failed",
    "repair.quarantined",
    "slo.breach", "slo.budget",
)


@dataclass(frozen=True)
class Event:
    """One audit-log record on the simulated clock."""

    time: float
    seq: int
    name: str
    check_id: str | None = None
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """The dotted prefix, e.g. ``chaos`` for ``chaos.applied``."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> dict:
        doc: dict[str, object] = {"t": self.time, "seq": self.seq,
                                  "event": self.name}
        if self.check_id:
            doc["check_id"] = self.check_id
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    def to_json(self) -> str:
        """One deterministic JSONL line (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


class _Correlation:
    """Context manager pushing one check_id onto the log's stack."""

    __slots__ = ("log", "check_id")

    def __init__(self, log: "EventLog", check_id: str) -> None:
        self.log = log
        self.check_id = check_id

    def __enter__(self) -> str:
        self.log._stack.append(self.check_id)
        return self.check_id

    def __exit__(self, *exc) -> bool:
        self.log._stack.pop()
        return False


class EventLog:
    """Bounded, correlated audit log against one simulated clock.

    Usage::

        events = EventLog(hv.clock, sink="audit.jsonl")
        cid = events.new_check_id()
        with events.correlate(cid):
            events.emit("check.start", module="hal.dll", vms=6)
            ...
        events.by_check(cid)     # the full causal record of that check
    """

    enabled = True

    def __init__(self, clock: SimClock, *, capacity: int = 65536,
                 sink: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        self.capacity = capacity
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._checks = 0
        self._stack: list[str] = []
        self._sink = None
        self.sink_path: Path | None = None
        if sink is not None:
            self.open_sink(sink)

    # -- correlation ------------------------------------------------------

    def new_check_id(self) -> str:
        """Mint the next correlation id (``chk-000001``, ...)."""
        self._checks += 1
        return f"chk-{self._checks:06d}"

    @property
    def current_check(self) -> str | None:
        """The innermost active correlation id, if any."""
        return self._stack[-1] if self._stack else None

    def correlate(self, check_id: str) -> _Correlation:
        """Scope: every ``emit`` inside inherits ``check_id``."""
        return _Correlation(self, check_id)

    # -- emission ---------------------------------------------------------

    def emit(self, name: str, *, check_id: str | None = None,
             **attrs: object) -> Event:
        """Record one event; the name must be in :data:`EVENT_NAMES`."""
        if name not in EVENT_NAMES:
            raise ValueError(
                f"unknown event name {name!r}; the vocabulary is closed "
                f"(see repro.obs.events.EVENT_NAMES)")
        event = Event(time=self.clock.now, seq=self._seq, name=name,
                      check_id=check_id or self.current_check,
                      attrs=attrs)
        self._seq += 1
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        return event

    # -- queries ----------------------------------------------------------

    @property
    def events(self) -> list[Event]:
        """The retained ring, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def by_check(self, check_id: str) -> list[Event]:
        """Every retained event correlated to ``check_id``."""
        return [e for e in self._ring if e.check_id == check_id]

    def by_name(self, name: str) -> list[Event]:
        return [e for e in self._ring if e.name == name]

    def window(self, start: float, end: float) -> list[Event]:
        """Retained events with ``start <= time <= end``."""
        return [e for e in self._ring if start <= e.time <= end]

    def tail(self, n: int) -> list[Event]:
        return list(self._ring)[-n:]

    # -- serialisation ----------------------------------------------------

    def to_jsonl(self) -> str:
        """The retained ring as JSON lines (deterministic per seed)."""
        return "".join(e.to_json() + "\n" for e in self._ring)

    def write_jsonl(self, path: str | Path) -> Path:
        """Dump the retained ring to ``path`` as JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    def open_sink(self, path: str | Path) -> Path:
        """Open a write-through JSONL file sink (closing any old one).

        The sink receives every event at emit time, so it is complete
        even after the in-memory ring starts evicting.
        """
        self.close()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._sink = path.open("w")
        self.sink_path = path
        return path

    def close(self) -> None:
        """Flush and close the file sink, if one is open."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None


class _NullCorrelation:
    """Reusable no-op correlation scope; one shared instance."""

    __slots__ = ()

    def __enter__(self) -> str:
        return ""

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CORRELATION = _NullCorrelation()


class NullEventLog:
    """Disabled audit log: every ``emit`` is a no-op.

    Hot call sites additionally guard on ``events.enabled`` so the
    disabled pipeline does not even build the attribute dicts.
    """

    enabled = False
    current_check = None
    sink_path = None

    def new_check_id(self) -> str:
        return ""

    def correlate(self, check_id: str) -> _NullCorrelation:
        return _NULL_CORRELATION

    def emit(self, name: str, *, check_id: str | None = None,
             **attrs: object) -> None:
        return None

    @property
    def events(self) -> list[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def by_check(self, check_id: str) -> list[Event]:
        return []

    def by_name(self, name: str) -> list[Event]:
        return []

    def window(self, start: float, end: float) -> list[Event]:
        return []

    def tail(self, n: int) -> list[Event]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        # Stable spelling: this object appears as a default in public
        # signatures, and the generated API reference must not change
        # with the process's heap layout.
        return "NULL_EVENTS"


#: Shared no-op audit log — the default wired through the pipeline.
NULL_EVENTS = NullEventLog()
