"""Bridges from pipeline state to the metrics registry.

The pipeline already keeps rich counters (:class:`~repro.vmi.core.VMIStats`,
:class:`~repro.hypervisor.faults.FaultStats`,
:class:`~repro.core.report.PoolReport`,
:class:`~repro.perf.timing.ComponentTimings`); this module maps them
onto a stable metric vocabulary so exporters, dashboards and the CI
gate all speak the same names:

===========================================  ======  ========================
``modchecker_checks_total``                  counter ``module``, ``verdict``
``modchecker_quorum_size``                   gauge   ``module``
``modchecker_degraded_votes_total``          counter ``vm``, ``category``
``modchecker_stage_seconds``                 histo   ``stage``
``modchecker_vmi_pages_mapped_total``        counter ``vm``
``modchecker_vmi_bytes_read_total``          counter ``vm``
``modchecker_vmi_translations_total``        counter ``vm``
``modchecker_vmi_batch_pages_total``         counter ``vm``
``modchecker_vmi_batch_fallbacks_total``     counter ``vm``
``modchecker_cache_hits_total``              counter ``vm``, ``cache``
``modchecker_cache_hit_ratio``               gauge   ``vm``, ``cache``
``modchecker_vmi_transient_faults_total``    counter ``vm``
``modchecker_vmi_retries_total``             counter ``vm``
``modchecker_vmi_retries_recovered_total``   counter ``vm``
``modchecker_faults_injected_total``         counter ``kind``
``modchecker_daemon_cycle_seconds``          histo   (none)
``modchecker_daemon_alerts_total``           counter ``kind``
``modchecker_daemon_quarantined``            gauge   (none)
``modchecker_breaker_state``                 gauge   ``vm``
``modchecker_breaker_transitions_total``     counter ``vm``, ``state``
``modchecker_pool_size``                     gauge   (none)
``modchecker_membership_events_total``       counter ``event``
``modchecker_chaos_events_total``            counter ``kind``
``modchecker_manifest_hits_total``           counter (none)
``modchecker_manifest_misses_total``         counter ``reason``
``modchecker_manifest_invalidations_total``  counter ``reason``
``modchecker_manifest_entries``              gauge   (none)
``modchecker_pair_replays_total``            counter (none)
``modchecker_vmi_pages_protected_total``     counter ``vm``
``modchecker_vmi_traps_drained_total``       counter ``vm``
``modchecker_trap_validations_total``        counter (none)
``modchecker_trap_pages_checked_total``      counter (none)
``modchecker_trap_fallbacks_total``          counter ``reason``
``modchecker_traps_total``                   counter ``outcome``
``modchecker_protected_frames``              gauge   (none)
``modchecker_fleet_shards``                  gauge   (none)
``modchecker_fleet_vms``                     gauge   (none)
``modchecker_fleet_shard_size``              gauge   ``shard``
``modchecker_fleet_cycle_seconds``           histo   (none)
``modchecker_fleet_checks_total``            counter (none)
``modchecker_fleet_vm_checks_total``         counter (none)
``modchecker_fleet_borrowed_refs_total``     counter (none)
``modchecker_fleet_shard_events_total``      counter ``event``
``modchecker_repair_attempts_total``         counter (none)
``modchecker_repair_outcomes_total``         counter ``status``
``modchecker_repair_hunks_written_total``    counter (none)
``modchecker_repair_bytes_written_total``    counter (none)
``modchecker_repair_raced_writes_total``     counter (none)
``modchecker_repair_mttr_seconds``           gauge   ``stat``
``modchecker_slo_state``                     gauge   ``objective``
``modchecker_slo_budget_remaining``          gauge   ``objective``
``modchecker_slo_burn_rate``                 gauge   ``objective``, ``window``
``modchecker_slo_events_total``              counter ``objective``, ``outcome``
``modchecker_slo_breaches_total``            counter ``objective``
``modchecker_slo_latency``                   gauge   ``objective``, ``quantile``
===========================================  ======  ========================

Cumulative sources are published with :meth:`Counter.set_to` (they
already count monotonically); per-round values (cache hit ratios, which
reset with each :meth:`VMIInstance.flush_caches`) are gauges. Stage
latencies are fed from the same :class:`ComponentTimings` the cost
model produces, so the Prometheus ``modchecker_stage_seconds_sum``
series reconciles exactly with the simulated timing breakdown.
"""

from __future__ import annotations

from ..perf.timing import ComponentTimings

__all__ = ["STAGES", "BREAKER_STATE_VALUES", "record_stage_timings",
           "record_pool_report", "record_vmi_instance",
           "record_fault_stats", "record_daemon_cycle",
           "record_breaker_states", "record_membership",
           "record_chaos_stats", "record_manifest_stats",
           "record_trap_stats", "record_fleet_cycle",
           "record_repair_stats", "record_slo_status"]

#: The pipeline stages of the Fig. 7/8 breakdown.
STAGES = ("searcher", "parser", "checker")


def record_stage_timings(metrics, timings: ComponentTimings,
                         module: str | None = None) -> None:
    """Feed one check's component breakdown into the stage histogram."""
    hist = metrics.histogram(
        "modchecker_stage_seconds",
        "Simulated seconds per pipeline stage per check")
    for stage in STAGES:
        hist.observe(getattr(timings, stage), stage=stage)
    if module is not None:
        metrics.histogram(
            "modchecker_check_seconds",
            "Simulated end-to-end seconds per check").observe(
                timings.total, module=module)


def record_pool_report(metrics, report, module: str | None = None) -> None:
    """PoolReport -> quorum/verdict/degradation metrics."""
    module = module if module is not None else report.module_name
    verdict = "clean" if report.all_clean else "flagged"
    metrics.counter(
        "modchecker_checks_total",
        "Completed pool checks by verdict").inc(
            module=module, verdict=verdict)
    metrics.gauge(
        "modchecker_quorum_size",
        "Surviving voting quorum of the last check").set(
            len(report.verdicts), module=module)
    degraded = metrics.counter(
        "modchecker_degraded_votes_total",
        "Votes lost to degraded (unacquirable) VMs")
    for vm, reason in sorted(report.degraded.items()):
        category = reason.split(":", 1)[0] if ":" in reason else "other"
        degraded.inc(vm=vm, category=category)


def record_vmi_instance(metrics, vm_name: str, vmi, base=None) -> None:
    """VMIStats + cache state for one introspection session.

    ``base`` carries the folded counters of earlier sessions on the
    same VM (the checker re-attaches after a reboot); adding it keeps
    the cumulative series monotonic across session restarts. ``vmi``
    may be ``None`` for a VM with *only* folded history (its session
    was retired — reboot, eviction — and not yet re-attached): the
    cumulative counters still publish, so an evicted VM's final
    session tail is never silently dropped from the totals; only the
    per-round cache-ratio gauges (meaningless without a live session)
    are skipped.
    """
    stats = vmi.stats if vmi is not None else base
    if stats is None:
        return
    if vmi is not None and base is not None:
        stats = type(stats)(**{
            name: getattr(base, name) + value
            for name, value in vars(stats).items()})
    metrics.counter(
        "modchecker_vmi_pages_mapped_total",
        "Foreign guest frames mapped into Dom0").set_to(
            stats.pages_mapped, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_bytes_read_total",
        "Guest bytes copied out through VMI").set_to(
            stats.bytes_read, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_translations_total",
        "Guest page-table walks performed").set_to(
            stats.translations, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_batch_pages_total",
        "Pages served by the vectorised acquisition path").set_to(
            stats.batch_pages, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_batch_fallbacks_total",
        "Batched calls that stood down to the scalar path").set_to(
            stats.batch_fallbacks, vm=vm_name)
    hits = metrics.counter(
        "modchecker_cache_hits_total",
        "VMI cache hits (cumulative, never reset)")
    hits.set_to(stats.translation_cache_hits, vm=vm_name, cache="v2p")
    hits.set_to(stats.page_cache_hits, vm=vm_name, cache="page")
    if vmi is not None:
        ratio = metrics.gauge(
            "modchecker_cache_hit_ratio",
            "Per-round cache hit ratio (resets with each cache flush)")
        ratio.set(vmi.v2p_cache.hit_rate, vm=vm_name, cache="v2p")
        ratio.set(vmi.page_cache.hit_rate, vm=vm_name, cache="page")
    metrics.counter(
        "modchecker_vmi_transient_faults_total",
        "Transient introspection faults observed").set_to(
            stats.transient_faults, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_retries_total",
        "Guest reads re-issued after a transient fault").set_to(
            stats.retries, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_retries_recovered_total",
        "Reads that succeeded after at least one retry").set_to(
            stats.retries_recovered, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_pages_protected_total",
        "Guest frames armed with write-protection").set_to(
            stats.pages_protected, vm=vm_name)
    metrics.counter(
        "modchecker_vmi_traps_drained_total",
        "Coalesced write traps drained by this session").set_to(
            stats.traps_drained, vm=vm_name)


def record_fault_stats(metrics, fault_stats) -> None:
    """FaultStats -> injected-fault counters, one series per kind."""
    counter = metrics.counter(
        "modchecker_faults_injected_total",
        "Faults injected by kind")
    stats = fault_stats.as_dict()
    for kind in ("transient", "torn_pages", "stale_served", "paged_out",
                 "window_hits", "unreachable"):
        counter.set_to(stats[kind], kind=kind)
    metrics.counter(
        "modchecker_faulted_reads_total",
        "Guest reads that passed through the fault gate").set_to(
            stats["reads"])


def record_daemon_cycle(metrics, *, duration: float, alerts,
                        quarantined: int) -> None:
    """One daemon sweep: cycle latency, alert mix, quarantine depth."""
    metrics.histogram(
        "modchecker_daemon_cycle_seconds",
        "Simulated seconds per daemon cycle").observe(duration)
    alert_counter = metrics.counter(
        "modchecker_daemon_alerts_total", "Alerts raised by kind")
    for alert in alerts:
        alert_counter.inc(kind=alert.kind)
    metrics.gauge(
        "modchecker_daemon_quarantined",
        "VMs currently quarantined").set(quarantined)


#: Numeric encoding of circuit-breaker states for the state gauge
#: (ordered by severity so dashboards can threshold on it).
BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


def record_breaker_states(metrics, health) -> None:
    """HealthRegistry -> per-VM breaker state + transition counters."""
    state_gauge = metrics.gauge(
        "modchecker_breaker_state",
        "Circuit breaker state per VM (0=closed, 1=half-open, 2=open)")
    for vm, state in health.states().items():
        state_gauge.set(BREAKER_STATE_VALUES[state.value], vm=vm)
    transitions = metrics.counter(
        "modchecker_breaker_transitions_total",
        "Circuit breaker transitions by entered state")
    for vm, counts in health.transition_counts().items():
        for state, count in sorted(counts.items()):
            transitions.set_to(count, vm=vm, state=state)


def record_membership(metrics, *, pool_size: int, events) -> None:
    """Pool membership: current size plus the cumulative event log.

    ``events`` is the daemon's ``membership_log`` — (time, event, vm)
    tuples; being cumulative, it is published with ``set_to``.
    """
    metrics.gauge(
        "modchecker_pool_size",
        "Guests currently in the monitored pool").set(pool_size)
    totals: dict[str, int] = {}
    for _, event, _ in events:
        totals[event] = totals.get(event, 0) + 1
    counter = metrics.counter(
        "modchecker_membership_events_total",
        "Pool membership events by kind")
    for event, count in sorted(totals.items()):
        counter.set_to(count, event=event)


def record_manifest_stats(metrics, store, *, pair_replays: int = 0) -> None:
    """ManifestStore counters -> incremental-pipeline metrics.

    All sources are cumulative (the store never resets its counters),
    so everything publishes via ``set_to``; the only instantaneous
    value is the entry count, which is a gauge. The miss/invalidations
    reason labels follow the taxonomy documented on
    :class:`~repro.vmi.cache.ManifestStore`.
    """
    metrics.counter(
        "modchecker_manifest_hits_total",
        "Manifest lookups that found a structurally valid entry").set_to(
            store.stats.hits)
    misses = metrics.counter(
        "modchecker_manifest_misses_total",
        "Manifest lookups that missed, by reason")
    for reason, count in sorted(store.stats.misses.items()):
        misses.set_to(count, reason=reason)
    invalidations = metrics.counter(
        "modchecker_manifest_invalidations_total",
        "Manifest entries dropped, by reason")
    for reason, count in sorted(store.stats.invalidations.items()):
        invalidations.set_to(count, reason=reason)
    metrics.gauge(
        "modchecker_manifest_entries",
        "Manifests currently held by the store").set(len(store))
    metrics.counter(
        "modchecker_pair_replays_total",
        "Pairwise comparisons served from the content-keyed "
        "replay cache").set_to(pair_replays)


def record_trap_stats(metrics, queue_stats, *, validations: int,
                      pages_checked: int, fallbacks: dict,
                      protected_frames: int) -> None:
    """Event-driven pipeline counters -> trap metrics.

    ``queue_stats`` is the hypervisor ring's
    :class:`~repro.hypervisor.traps.TrapStats`; ``validations`` /
    ``pages_checked`` / ``fallbacks`` come from the checker's trap
    path. All cumulative, hence ``set_to``; the only instantaneous
    value is the pool-wide protected-frame count, a gauge. The
    ``fallbacks`` reason labels follow the taxonomy ``exhausted`` /
    ``paranoia`` / ``lifecycle`` / ``unprotectable``.
    """
    metrics.counter(
        "modchecker_trap_validations_total",
        "Manifest validations satisfied purely by trap evidence").set_to(
            validations)
    metrics.counter(
        "modchecker_trap_pages_checked_total",
        "Pages re-digested because traps (or unprotectable pages) "
        "named them").set_to(pages_checked)
    fallback_counter = metrics.counter(
        "modchecker_trap_fallbacks_total",
        "Trap validations that fell back to sweep work, by reason")
    for reason, count in sorted(fallbacks.items()):
        fallback_counter.set_to(count, reason=reason)
    ring = metrics.counter(
        "modchecker_traps_total",
        "Write traps through the hypervisor ring, by outcome")
    snap = queue_stats.snapshot()
    for outcome in ("delivered", "coalesced", "dropped", "drained"):
        ring.set_to(snap[outcome], outcome=outcome)
    metrics.gauge(
        "modchecker_protected_frames",
        "Guest frames currently write-protected across the pool").set(
            protected_frames)


def record_fleet_cycle(metrics, stats, *, shard_sizes: dict,
                       cycle_seconds: float) -> None:
    """FleetStats + shard census -> fleet control-plane metrics.

    ``stats`` is the fleet's cumulative
    :class:`~repro.cloud.fleet.FleetStats` (hence ``set_to``);
    ``shard_sizes`` maps shard name -> member count right now;
    ``cycle_seconds`` is this round's simulated makespan.
    """
    metrics.gauge(
        "modchecker_fleet_shards",
        "Shards currently in the fleet").set(len(shard_sizes))
    metrics.gauge(
        "modchecker_fleet_vms",
        "VMs currently placed across all shards").set(
            sum(shard_sizes.values()))
    size_gauge = metrics.gauge(
        "modchecker_fleet_shard_size", "Members per shard")
    for shard, size in sorted(shard_sizes.items()):
        size_gauge.set(size, shard=shard)
    metrics.histogram(
        "modchecker_fleet_cycle_seconds",
        "Simulated seconds per fleet scheduler round (makespan over "
        "concurrent shards)").observe(cycle_seconds)
    metrics.counter(
        "modchecker_fleet_checks_total",
        "Pool checks completed across all shards").set_to(
            stats.checks_total)
    metrics.counter(
        "modchecker_fleet_vm_checks_total",
        "Per-VM verdicts produced across all shards").set_to(
            stats.vm_checks_total)
    metrics.counter(
        "modchecker_fleet_borrowed_refs_total",
        "Reference votes borrowed from sibling shards").set_to(
            stats.borrowed_refs_total)
    events = metrics.counter(
        "modchecker_fleet_shard_events_total",
        "Shard lifecycle events by kind")
    for event, count in sorted(stats.shard_events.items()):
        events.set_to(count, event=event)
    # The fleet owns the per-VM membership series: its scoped shard
    # daemons share one registry and must not race on this counter, so
    # they skip record_membership and the fleet sums their logs.
    membership = metrics.counter(
        "modchecker_membership_events_total",
        "Pool membership events by kind")
    for event, count in sorted(stats.membership_events.items()):
        membership.set_to(count, event=event)


def record_repair_stats(metrics, repair_stats) -> None:
    """RepairStats -> remediation counters + the MTTR gauge family.

    ``repair_stats`` is the engine's cumulative
    :class:`~repro.core.repair.RepairStats` (hence ``set_to``); the
    MTTR aggregates (mean/max over verified remediations, simulated
    seconds from detection verdict to verified-clean re-check) publish
    as a ``stat``-labelled gauge so dashboards can threshold on either.
    """
    metrics.counter(
        "modchecker_repair_attempts_total",
        "Write-back remediation attempts").set_to(repair_stats.attempts)
    outcomes = metrics.counter(
        "modchecker_repair_outcomes_total",
        "Terminal remediation outcomes by status")
    outcomes.set_to(repair_stats.verified, status="verified")
    outcomes.set_to(repair_stats.failed, status="failed")
    outcomes.set_to(repair_stats.quarantined, status="quarantined")
    outcomes.set_to(repair_stats.aborted, status="aborted")
    metrics.counter(
        "modchecker_repair_hunks_written_total",
        "Tamper/structural hunks written back to guests").set_to(
            repair_stats.hunks_written)
    metrics.counter(
        "modchecker_repair_bytes_written_total",
        "Guest bytes written back by the repair engine").set_to(
            repair_stats.bytes_written)
    metrics.counter(
        "modchecker_repair_raced_writes_total",
        "Guest writes trapped inside armed repair windows").set_to(
            repair_stats.raced_writes)
    mttr = metrics.gauge(
        "modchecker_repair_mttr_seconds",
        "Detect-to-verified-clean time over verified remediations "
        "(simulated clock)")
    mttr.set(repair_stats.mttr_mean, stat="mean")
    mttr.set(repair_stats.mttr_max, stat="max")


#: Numeric encoding of SLO states for the state gauge (ordered by
#: severity, mirroring the fleet exit-code contract 0/1/2).
SLO_STATE_VALUES = {"ok": 0, "warn": 1, "critical": 2}


def record_slo_status(metrics, status, *, breaches: dict) -> None:
    """Pooled :class:`~repro.obs.slo.SloStatus` -> ``modchecker_slo_*``.

    ``status`` is the engine's aggregate (worst state / min budget /
    max burn across scopes); ``breaches`` maps objective name to the
    cumulative count of breach *edges* (entries into critical), which
    publishes via ``set_to``. The quantile gauges carry the HDR
    histogram's p50/p90/p99/p999 — seconds for latency objectives, a
    fraction for ``coverage``, hence the unitless metric name.
    """
    state_gauge = metrics.gauge(
        "modchecker_slo_state",
        "SLO state per objective (0=ok, 1=warn, 2=critical)")
    budget_gauge = metrics.gauge(
        "modchecker_slo_budget_remaining",
        "Error budget remaining over the slow window (1=untouched)")
    burn_gauge = metrics.gauge(
        "modchecker_slo_burn_rate",
        "Error-budget burn rate per alerting window")
    events_counter = metrics.counter(
        "modchecker_slo_events_total",
        "Classified SLO events by outcome (lifetime totals)")
    breach_counter = metrics.counter(
        "modchecker_slo_breaches_total",
        "Burn-rate breach edges (entries into critical)")
    quantile_gauge = metrics.gauge(
        "modchecker_slo_latency",
        "HDR-histogram quantiles of the objective's signal")
    for obj in status.objectives:
        state_gauge.set(SLO_STATE_VALUES[obj.state], objective=obj.name)
        budget_gauge.set(obj.budget_remaining, objective=obj.name)
        burn_gauge.set(obj.fast_burn, objective=obj.name, window="fast")
        burn_gauge.set(obj.slow_burn, objective=obj.name, window="slow")
        # lifetime totals, not window counts: windows shrink as
        # events age out and a counter must never go backwards
        events_counter.set_to(obj.total_good, objective=obj.name,
                              outcome="good")
        events_counter.set_to(obj.total_bad, objective=obj.name,
                              outcome="bad")
        breach_counter.set_to(breaches.get(obj.name, 0),
                              objective=obj.name)
        for q, value in obj.quantiles.items():
            quantile_gauge.set(
                value, objective=obj.name,
                quantile=f"p{str(q).replace('0.', '')}")


def record_chaos_stats(metrics, chaos_stats) -> None:
    """ChaosStats -> lifecycle-churn counters, one series per kind."""
    counter = metrics.counter(
        "modchecker_chaos_events_total",
        "Lifecycle chaos events applied by kind")
    stats = chaos_stats.as_dict()
    for kind in ("reboots", "pauses", "unpauses", "migrations",
                 "migrations_finished", "destroys", "creates"):
        counter.set_to(stats[kind], kind=kind)
