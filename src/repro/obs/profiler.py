"""Cost-attribution profiler over the span + charge stream.

The tracer (:mod:`repro.obs.trace`) records *what happened*; this
module answers the ROADMAP's "profile first" question: **where did the
simulated microseconds go?** :class:`Profile` folds a finished
:class:`~repro.obs.trace.Tracer` into

* a **call tree** keyed by span *path* (``daemon.cycle;modchecker.check;
  modchecker.fetch;searcher.copy;vmi.read_page``) with call counts and
  inclusive / exclusive simulated time per node — exclusive times sum
  exactly to the root durations, so shares reconcile with the tracer's
  own stage sums by construction;
* a **per-(vm, module, op) cost attribution** built from the flat
  :class:`~repro.obs.trace.Charge` records: each cost-model charge is
  attributed to the innermost open span and its ``vm`` / ``module``
  attributes are resolved by walking the span's ancestry. Charges
  carry raw Dom0 CPU-seconds, so attribution stays correct inside
  deferred-charge scheduling (fleet mode), where span durations are
  zero because the simulated clock is frozen;
* exports: **collapsed-stack** text for ``flamegraph.pl`` / speedscope
  (one ``path weight`` line per node, weights in integer simulated
  microseconds), a **top-N hotspot table**, and a machine-readable
  JSON document (``modchecker-profile/1``).

Profiling costs nothing when disabled: it only ever *reads* a tracer,
and the :data:`~repro.obs.trace.NULL_TRACER` path records neither spans
nor charges.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .trace import Span, Tracer

__all__ = ["PATH_SEP", "ProfileNode", "Profile"]

#: Separator between frame names in a node path (flamegraph.pl syntax).
PATH_SEP = ";"


@dataclass
class ProfileNode:
    """One call-tree node: all spans sharing one name path."""

    name: str
    path: str
    calls: int = 0
    #: summed simulated seconds inside these spans (children included)
    inclusive: float = 0.0
    #: inclusive minus the time spent in child spans
    exclusive: float = 0.0
    #: raw Dom0 CPU-seconds charged directly to these spans, per op
    op_cpu: dict[str, float] = field(default_factory=dict)
    #: charge-record count per op
    op_calls: dict[str, int] = field(default_factory=dict)
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    @property
    def cpu(self) -> float:
        """Raw CPU-seconds charged directly to this node (all ops)."""
        return sum(self.op_cpu.values())

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            path = f"{self.path}{PATH_SEP}{name}" if self.path else name
            node = self.children[name] = ProfileNode(name=name, path=path)
        return node

    def walk(self):
        """Yield this node then every descendant, depth-first."""
        yield self
        for name in sorted(self.children):
            yield from self.children[name].walk()

    def to_dict(self) -> dict:
        doc: dict[str, object] = {
            "name": self.name, "calls": self.calls,
            "inclusive": self.inclusive, "exclusive": self.exclusive,
        }
        if self.op_cpu:
            doc["op_cpu"] = {op: self.op_cpu[op]
                             for op in sorted(self.op_cpu)}
            doc["op_calls"] = {op: self.op_calls[op]
                               for op in sorted(self.op_calls)}
        if self.children:
            doc["children"] = [self.children[name].to_dict()
                               for name in sorted(self.children)]
        return doc


class Profile:
    """Aggregated where-did-the-time-go view of one traced run."""

    FORMAT = "modchecker-profile/1"

    def __init__(self) -> None:
        #: top-level call-tree nodes by span name
        self.roots: dict[str, ProfileNode] = {}
        #: (vm, module, op) -> [cpu_seconds, charge_count]; ``vm`` /
        #: ``module`` are ``""`` when no ancestor span names them
        self.attribution: dict[tuple[str, str, str], list] = {}
        #: charges whose span had already closed (should be none)
        self.unattributed_cpu: float = 0.0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "Profile":
        """Fold a tracer's spans + charges into one profile."""
        profile = cls()
        by_id: dict[int, Span] = {s.span_id: s for s in tracer.spans}
        child_time: dict[int, float] = {}
        for span in tracer.spans:
            if span.parent_id is not None and span.finished:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0) + span.duration)

        node_of: dict[int, ProfileNode] = {}

        def node_for(span: Span) -> ProfileNode:
            node = node_of.get(span.span_id)
            if node is not None:
                return node
            if span.parent_id is None:
                node = profile.roots.get(span.name)
                if node is None:
                    node = profile.roots[span.name] = ProfileNode(
                        name=span.name, path=span.name)
            else:
                node = node_for(by_id[span.parent_id]).child(span.name)
            node_of[span.span_id] = node
            return node

        for span in tracer.spans:
            node = node_for(span)
            node.calls += 1
            node.inclusive += span.duration
            node.exclusive += max(
                0.0, span.duration - child_time.get(span.span_id, 0.0))

        for charge in tracer.charges:
            if charge.span_id is None or charge.span_id not in by_id:
                profile.unattributed_cpu += charge.cpu
                continue
            node = node_of.get(charge.span_id)
            if node is None:               # span never entered a tree
                profile.unattributed_cpu += charge.cpu
                continue
            node.op_cpu[charge.op] = (
                node.op_cpu.get(charge.op, 0.0) + charge.cpu)
            node.op_calls[charge.op] = node.op_calls.get(charge.op, 0) + 1
            vm = module = ""
            span: Span | None = by_id[charge.span_id]
            while span is not None:
                if not vm and "vm" in span.attrs:
                    vm = str(span.attrs["vm"])
                if not module and "module" in span.attrs:
                    module = str(span.attrs["module"])
                span = (by_id.get(span.parent_id)
                        if span.parent_id is not None else None)
            key = (vm, module, charge.op)
            slot = profile.attribution.setdefault(key, [0.0, 0])
            slot[0] += charge.cpu
            slot[1] += 1
        return profile

    # -- aggregates -------------------------------------------------------

    def nodes(self):
        """Every node, depth-first, roots in name order."""
        for name in sorted(self.roots):
            yield from self.roots[name].walk()

    @property
    def total_seconds(self) -> float:
        """Simulated seconds across all root spans."""
        return sum(r.inclusive for r in self.roots.values())

    @property
    def total_cpu_seconds(self) -> float:
        """Raw Dom0 CPU-seconds across every charge record."""
        return (sum(n.cpu for n in self.nodes()) + self.unattributed_cpu)

    def exclusive_by_name(self) -> dict[str, float]:
        """Summed exclusive seconds per span name, over the whole tree."""
        totals: dict[str, float] = {}
        for node in self.nodes():
            totals[node.name] = totals.get(node.name, 0.0) + node.exclusive
        return totals

    def cpu_by_op(self) -> dict[str, float]:
        """Summed raw CPU-seconds per charge op."""
        totals: dict[str, float] = {}
        for node in self.nodes():
            for op, cpu in node.op_cpu.items():
                totals[op] = totals.get(op, 0.0) + cpu
        return totals

    def stage_shares(self) -> dict[str, float]:
        """Each span name's share of total exclusive simulated time."""
        totals = self.exclusive_by_name()
        grand = sum(totals.values())
        if grand <= 0.0:
            return {name: 0.0 for name in totals}
        return {name: t / grand for name, t in totals.items()}

    def op_shares(self) -> dict[str, float]:
        """Each charge op's share of total raw CPU-seconds."""
        totals = self.cpu_by_op()
        grand = sum(totals.values())
        if grand <= 0.0:
            return {op: 0.0 for op in totals}
        return {op: cpu / grand for op, cpu in totals.items()}

    # -- exports ----------------------------------------------------------

    def collapsed(self, *, weight: str = "time") -> str:
        """Collapsed-stack text for ``flamegraph.pl`` / speedscope.

        One line per call-tree node: ``root;child;leaf <weight>``, with
        weights in integer simulated microseconds. ``weight="time"``
        uses exclusive simulated seconds (the sequential-pipeline
        view); ``weight="cpu"`` uses the node's raw charged
        CPU-seconds, which stays meaningful under deferred-charge
        scheduling where span durations are all zero.
        """
        if weight not in ("time", "cpu"):
            raise ValueError(f"unknown collapsed weight {weight!r}")
        lines = []
        for node in self.nodes():
            value = node.exclusive if weight == "time" else node.cpu
            micros = round(value * 1e6)
            if micros > 0:
                lines.append(f"{node.path} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str | Path, *,
                        weight: str = "time") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed(weight=weight))
        return path

    def hotspots(self, n: int = 10, *, weight: str = "time") -> list[dict]:
        """The ``n`` most expensive call-tree nodes, most costly first.

        Each row carries the node path, call count, inclusive /
        exclusive seconds, charged CPU-seconds, and the node's share of
        the profile total (by the chosen ``weight``).
        """
        if weight not in ("time", "cpu"):
            raise ValueError(f"unknown hotspot weight {weight!r}")

        def cost(node: ProfileNode) -> float:
            return node.exclusive if weight == "time" else node.cpu

        grand = sum(cost(node) for node in self.nodes())
        ranked = sorted(self.nodes(), key=cost, reverse=True)[:n]
        return [{"path": node.path, "calls": node.calls,
                 "inclusive": node.inclusive, "exclusive": node.exclusive,
                 "cpu": node.cpu,
                 "share": (cost(node) / grand) if grand > 0 else 0.0}
                for node in ranked if cost(node) > 0]

    def attribution_rows(self) -> list[dict]:
        """Per-(vm, module, op) charge totals, most CPU first."""
        rows = [{"vm": vm, "module": module, "op": op,
                 "cpu": cpu, "calls": calls}
                for (vm, module, op), (cpu, calls)
                in self.attribution.items()]
        rows.sort(key=lambda r: (-r["cpu"], r["vm"], r["module"], r["op"]))
        return rows

    def to_dict(self) -> dict:
        """The machine-readable JSON profile document."""
        return {
            "format": self.FORMAT,
            "total_seconds": self.total_seconds,
            "total_cpu_seconds": self.total_cpu_seconds,
            "stage_shares": dict(sorted(self.stage_shares().items())),
            "op_shares": dict(sorted(self.op_shares().items())),
            "hotspots": self.hotspots(10),
            "attribution": self.attribution_rows(),
            "tree": [self.roots[name].to_dict()
                     for name in sorted(self.roots)],
        }

    def write_json(self, path: str | Path, *, scenario: str | None = None,
                   ) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self.to_dict()
        if scenario is not None:
            doc["scenario"] = scenario
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path
