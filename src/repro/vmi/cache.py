"""libvmi-style caches: virtual→physical and page caches.

libvmi keeps an address cache (translations) and a page cache (mapped
foreign frames) because mapping a guest frame through the hypervisor is
the expensive primitive. Both are plain LRU maps with hit/miss
counters; the cache ablation bench (A2) toggles them to show how much
of Module-Searcher's cost they absorb.

Caches must be *invalidated between checking rounds*: guest kernels may
remap pages at any time, and a stale translation would let an attacker
feed the checker old bytes. :meth:`flush` models libvmi's
``vmi_v2pcache_flush`` / ``vmi_pagecache_flush``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

__all__ = ["LRUCache", "V2PCache", "PageCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded LRU map with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> V | None:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def flush(self) -> None:
        """Drop the cached entries; hit/miss counters are kept (they
        describe accesses, not contents) — use :meth:`reset_stats` to
        start a fresh accounting window."""
        self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (start of a new checking round),
        so :attr:`hit_rate` describes the current round only."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class V2PCache(LRUCache[int, int]):
    """VA page → PA page translations (keyed by page-aligned VA)."""

    def __init__(self, capacity: int = 2048) -> None:
        super().__init__(capacity)


class PageCache(LRUCache[int, bytes]):
    """Guest frame number → 4 KiB page bytes."""

    def __init__(self, capacity: int = 512) -> None:
        super().__init__(capacity)
