"""libvmi-style caches, plus the incremental-check manifest store.

libvmi keeps an address cache (translations) and a page cache (mapped
foreign frames) because mapping a guest frame through the hypervisor is
the expensive primitive. Both are plain LRU maps with hit/miss
counters; the cache ablation bench (A2) toggles them to show how much
of Module-Searcher's cost they absorb.

Caches must be *invalidated between checking rounds*: guest kernels may
remap pages at any time, and a stale translation would let an attacker
feed the checker old bytes. :meth:`LRUCache.flush` models libvmi's
``vmi_v2pcache_flush`` / ``vmi_pagecache_flush``.

The third structure here is longer-lived: :class:`ManifestStore` holds
one content-addressed :class:`CheckManifest` per ``(vm, module)`` —
the per-page checksums of the image as acquired plus the parsed copy
that produced the last *clean* verdict. It survives cache flushes on
purpose (that is the point: remembering verified content across
rounds), and instead invalidates on the events that can actually
change what the checker would see: a boot-generation bump, a page
delta, an entry relocation, an explicit membership/breaker/migration
invalidation, or the full-recheck TTL expiring.

Accounting discipline: manifest lookups are *not* page-cache accesses.
The store keeps its own hit/miss/invalidation counters and consults
its internal LRU map through :meth:`LRUCache.peek` — a stats-neutral
probe — so a sweep over a warm manifest can never inflate (or
double-count into) the ``modchecker_cache_*`` page/V2P series. That
is what keeps every published hit-rate a true ratio (≤ 1.0) even when
the fault injector is busy tearing reads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generic, Hashable, TypeVar

if TYPE_CHECKING:
    from ..core.parser import ParsedModule

__all__ = ["LRUCache", "V2PCache", "PageCache", "CheckManifest",
           "ManifestStore"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded LRU map with hit/miss accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> V | None:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: K) -> V | None:
        """Stats-neutral probe: no hit/miss counted, no LRU promotion.

        Layers that keep their own accounting (the manifest store) must
        use this instead of :meth:`get`, or every one of their lookups
        would be double-counted into this cache's hit/miss series —
        the asymmetry that once let a derived hit-rate exceed 1.0.
        """
        return self._data.get(key)

    def put(self, key: K, value: V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def pop(self, key: K) -> V | None:
        """Remove and return an entry (stats-neutral), if present."""
        return self._data.pop(key, None)

    def flush(self) -> None:
        """Drop the cached entries; hit/miss counters are kept (they
        describe accesses, not contents) — use :meth:`reset_stats` to
        start a fresh accounting window."""
        self._data.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (start of a new checking round),
        so :attr:`hit_rate` describes the current round only."""
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def keys(self) -> list[K]:
        return list(self._data.keys())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class V2PCache(LRUCache[int, int]):
    """VA page → PA page translations (keyed by page-aligned VA)."""

    def __init__(self, capacity: int = 2048) -> None:
        super().__init__(capacity)


class PageCache(LRUCache[int, bytes]):
    """Guest frame number → 4 KiB page bytes."""

    def __init__(self, capacity: int = 512) -> None:
        super().__init__(capacity)


# -- incremental-check manifests ------------------------------------------


@dataclass(frozen=True)
class CheckManifest:
    """Content-addressed record of one verified module acquisition.

    Everything the incremental fast path needs to decide "nothing
    changed" and to reuse the previous round's work when it didn't:

    * identity — ``(vm_name, module_name, boot_generation)`` plus the
      LDR entry VA / base / size the module occupied;
    * content — per-page digests of the image as acquired, condensed
      into ``content_key`` (the address under which pair comparisons
      are replayed);
    * product — the :class:`~repro.core.parser.ParsedModule` from the
      last acquisition that fed a clean verdict, so a manifest hit
      feeds the *identical* object back into voting;
    * freshness — ``verified_at``, the simulated time of the last
      **full** (non-incremental) verification; the TTL is measured
      from here and is deliberately not refreshed by sweep hits.
    """

    vm_name: str
    module_name: str
    boot_generation: int
    base: int
    size: int
    ldr_entry_va: int
    page_digests: tuple[bytes, ...]
    content_key: str
    parsed: "ParsedModule"
    verified_at: float


@dataclass
class ManifestStats:
    """Counters for the manifest store (all cumulative)."""

    hits: int = 0
    misses: dict[str, int] = field(default_factory=dict)
    invalidations: dict[str, int] = field(default_factory=dict)

    @property
    def missed(self) -> int:
        return sum(self.misses.values())

    @property
    def lookups(self) -> int:
        return self.hits + self.missed

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ManifestStore:
    """Bounded store of :class:`CheckManifest` keyed by ``(vm, module)``.

    :meth:`lookup` validates identity (boot generation) and freshness
    (TTL) before returning anything; a stale entry is dropped and the
    miss recorded with its reason. Content validation (the page sweep)
    is the caller's job — on a delta it calls :meth:`invalidate` with
    ``reason="page-delta"`` and falls back to the full pipeline.

    A ``hit`` here means only "a structurally valid manifest exists";
    the caller still has to prove the content unchanged before using
    it. The miss reasons are the invalidation taxonomy the docs and
    metrics expose: ``absent``, ``generation``, ``ttl`` (from lookup)
    plus whatever reasons callers invalidate with (``page-delta``,
    ``entry-moved``, ``flagged``, ``admit``, ``evict``, ``breaker``,
    ``migration``, ``repaired``, ...). ``repaired`` is the repair
    engine dropping any manifest for a module it just wrote back to:
    the pre-repair digests describe bytes that no longer exist, and the
    post-repair re-verification recommits a fresh manifest only once
    the pool votes the copy clean.
    """

    def __init__(self, capacity: int = 1024, *,
                 ttl: float | None = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.ttl = ttl
        self._entries: LRUCache[tuple[str, str], CheckManifest] = \
            LRUCache(capacity)
        self.stats = ManifestStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _miss(self, reason: str) -> None:
        self.stats.misses[reason] = self.stats.misses.get(reason, 0) + 1

    def lookup(self, vm_name: str, module_name: str, *,
               boot_generation: int, now: float) -> CheckManifest | None:
        """A structurally valid manifest for ``(vm, module)``, or None.

        Uses :meth:`LRUCache.peek` + an explicit ``put`` so this
        store's accounting never leaks into the LRU's own counters
        (see the module docstring on the hit-rate asymmetry).
        """
        key = (vm_name, module_name)
        manifest = self._entries.peek(key)
        if manifest is None:
            self._miss("absent")
            return None
        if manifest.boot_generation != boot_generation:
            self._entries.pop(key)
            self._miss("generation")
            return None
        if self.ttl is not None and now - manifest.verified_at >= self.ttl:
            self._entries.pop(key)
            self._miss("ttl")
            return None
        self._entries.put(key, manifest)       # LRU promotion
        self.stats.hits += 1
        return manifest

    def commit(self, manifest: CheckManifest) -> None:
        """Store (or refresh) the manifest for its ``(vm, module)``."""
        self._entries.put((manifest.vm_name, manifest.module_name),
                          manifest)

    def invalidate(self, vm_name: str | None = None,
                   module_name: str | None = None, *,
                   reason: str) -> int:
        """Drop manifests for a VM / a (vm, module) / everything.

        Returns the number of entries removed; the count is also
        recorded under ``reason`` in :attr:`stats` (only when nonzero,
        so an invalidation storm against an empty store stays silent
        in the metrics).
        """
        if vm_name is None:
            doomed = self._entries.keys()
        elif module_name is None:
            doomed = [k for k in self._entries.keys() if k[0] == vm_name]
        else:
            key = (vm_name, module_name)
            doomed = [key] if key in self._entries else []
        for key in doomed:
            self._entries.pop(key)
        if doomed:
            self.stats.invalidations[reason] = \
                self.stats.invalidations.get(reason, 0) + len(doomed)
        return len(doomed)
