"""OS profiles: the symbol/offset side-channel libvmi needs.

Real libvmi cannot find ``PsLoadedModuleList`` by magic — the operator
supplies an OS profile (libvmi's config file / Rekall profile) with the
exported global's address and structure offsets for the guest's exact
kernel build. Our cloud builds the profile once from one clone (all 15
guests share a kernel build, so one profile serves the pool), exactly
like the paper's single-installation setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SymbolNotFound
from ..guest import ldr as _ldr

__all__ = ["OSProfile", "XP_SP2_OFFSETS"]

#: Structure offsets of 32-bit Windows XP SP2 (see :mod:`repro.guest.ldr`).
XP_SP2_OFFSETS: dict[str, int] = {
    "LDR_DATA_TABLE_ENTRY.InLoadOrderLinks": _ldr.OFF_INLOADORDER,
    "LDR_DATA_TABLE_ENTRY.DllBase": _ldr.OFF_DLLBASE,
    "LDR_DATA_TABLE_ENTRY.EntryPoint": _ldr.OFF_ENTRYPOINT,
    "LDR_DATA_TABLE_ENTRY.SizeOfImage": _ldr.OFF_SIZEOFIMAGE,
    "LDR_DATA_TABLE_ENTRY.FullDllName": _ldr.OFF_FULLDLLNAME,
    "LDR_DATA_TABLE_ENTRY.BaseDllName": _ldr.OFF_BASEDLLNAME,
    "LDR_DATA_TABLE_ENTRY.size": _ldr.LDR_ENTRY_SIZE,
    "LIST_ENTRY.size": _ldr.LIST_ENTRY_SIZE,
}


@dataclass(frozen=True)
class OSProfile:
    """Everything the introspector must know about the guest OS build."""

    name: str = "WinXP-SP2-x86"
    symbols: dict[str, int] = field(default_factory=dict)
    offsets: dict[str, int] = field(default_factory=lambda: dict(XP_SP2_OFFSETS))

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise SymbolNotFound(
                f"symbol {name!r} not in profile {self.name}") from None

    def offset(self, name: str) -> int:
        try:
            return self.offsets[name]
        except KeyError:
            raise SymbolNotFound(
                f"offset {name!r} not in profile {self.name}") from None

    @classmethod
    def from_guest(cls, kernel, name: str | None = None) -> "OSProfile":
        """Extract a profile from one booted clone (reference machine).

        Carries the clone's symbols *and* its kernel build's structure
        offsets — use the wrong build's profile and the searcher reads
        garbage, exactly as with a wrong libvmi config.
        """
        layout = getattr(kernel, "layout", None)
        offsets = layout.offsets() if layout is not None \
            else dict(XP_SP2_OFFSETS)
        return cls(name=name or (layout.name if layout else "WinXP-SP2-x86"),
                   symbols=dict(kernel.symbols), offsets=offsets)
