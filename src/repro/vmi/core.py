"""The introspection library: a libvmi-0.6-alike over our hypervisor.

:class:`VMIInstance` is the only door between Dom0 tools and a guest's
memory (paper: "Module-Searcher is the only component of ModChecker
that accesses the memory of guest VMs" — it does so through this API).

Faithful properties:

* **page-granular access** — every virtual read translates each covered
  VA page by walking the *guest's own page tables* (read through the
  hypervisor like any other guest bytes), then maps the backing frame;
* **read-mostly** — the one write path, :meth:`VMIInstance.
  write_va_range`, exists solely for the privileged remediation engine
  and goes through the hypervisor's protected-frame rules;
* **caches** — optional V2P and page caches as in libvmi, flushable
  between checking rounds;
* **cost accounting** — each primitive charges the Dom0 CPU through the
  hypervisor's contention model, producing the simulated runtimes of
  Figs. 7–9.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..errors import (IntrospectionFault, PageFault, PhysicalAddressError,
                      RetryExhausted, TransientFault, VMIInitError)
from ..hypervisor.xen import Hypervisor
from ..mem.paging import LARGE_PAGE_SIZE, PDE_LARGE, PTE_PRESENT, walk_batch
from ..mem.physical import PAGE_SIZE
from ..obs import NULL_OBS, Observability
from ..perf.costmodel import DEFAULT_COST_MODEL, CostModel
from .cache import PageCache, V2PCache
from .retry import RetryPolicy
from .symbols import OSProfile

__all__ = ["BATCH_MIN_PAGES", "VMIStats", "VMIInstance"]

_PAGE_MASK = PAGE_SIZE - 1

#: Minimum covered pages before ``read_va`` / the checksum sweeps
#: dispatch to the vectorised path: below this the numpy setup costs
#: more wall-clock than the per-page loop it replaces (the dominant
#: small-read traffic — ``read_u32`` pointer chases — stays scalar).
BATCH_MIN_PAGES = 4


@dataclass
class VMIStats:
    """Operation counters for one VMI instance."""

    translations: int = 0
    translation_cache_hits: int = 0
    pages_mapped: int = 0
    page_cache_hits: int = 0
    bytes_read: int = 0
    read_calls: int = 0
    #: frames digested hypervisor-side by the incremental page sweep
    #: (cheaper than mapping: no foreign mapping, no copy-out)
    pages_checksummed: int = 0
    transient_faults: int = 0
    retries: int = 0
    #: reads that succeeded after at least one retry (the "recovered"
    #: side of the faults-injected-vs-recovered observability story)
    retries_recovered: int = 0
    #: frames armed with EPT write-protection via ``protect_va_range``
    pages_protected: int = 0
    #: protection refusals (beyond memory / EPT resource limit); these
    #: pages stay on the sweep path forever
    pages_unprotectable: int = 0
    #: coalesced write traps handed to this session by ``drain_traps``
    traps_drained: int = 0
    #: frames written through the privileged remediation path
    pages_written: int = 0
    #: bytes written back by the remediation path
    bytes_written: int = 0
    #: read/checksum calls served by the vectorised acquisition path
    batch_reads: int = 0
    #: pages covered by those batched calls (translation + data in one
    #: numpy pass instead of a per-page loop)
    batch_pages: int = 0
    #: batched calls that stood down to the scalar reference path —
    #: a hole, a transient fault, a wild mapping, or caches close
    #: enough to capacity that LRU eviction order matters
    batch_fallbacks: int = 0

    def snapshot(self) -> "VMIStats":
        return VMIStats(**vars(self))


class VMIInstance:
    """An introspection session attached to one guest domain."""

    def __init__(self, hypervisor: Hypervisor, domain_key: int | str,
                 profile: OSProfile, *,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 enable_caches: bool = True,
                 retry: RetryPolicy | None = None,
                 batch: bool = True,
                 obs: Observability = NULL_OBS) -> None:
        self.hv = hypervisor
        self.obs = obs
        #: route multi-page reads/sweeps through the vectorised
        #: acquisition path; ``batch=False`` is the escape hatch that
        #: pins every operation to the scalar reference implementation
        self.batch = batch
        try:
            self.domain = hypervisor.domain(domain_key)
        except Exception as exc:
            raise VMIInitError(
                f"cannot attach to {domain_key!r}: {exc}") from exc
        if not self.domain.is_guest:
            raise VMIInitError(f"{self.domain.name} is not introspectable")
        self.profile = profile
        self.costs = cost_model
        self.enable_caches = enable_caches
        self.retry = retry
        self.v2p_cache = V2PCache()
        self.page_cache = PageCache()
        self.stats = VMIStats()
        self.cr3 = hypervisor.guest_cr3(domain_key)
        #: the guest's boot generation at attach time; a reboot swaps
        #: the whole address space (new CR3, new page tables), so any
        #: session with a stale generation must be re-attached
        self.boot_generation = self.domain.boot_generation

    # -- caches ---------------------------------------------------------------

    def flush_caches(self) -> None:
        """Invalidate both caches (between checking rounds).

        Also resets their hit/miss counters, so the cache-hit-ratio
        metric describes the round being started, not the whole session.
        """
        self.v2p_cache.flush()
        self.page_cache.flush()
        self.v2p_cache.reset_stats()
        self.page_cache.reset_stats()

    # -- translation ------------------------------------------------------------

    def translate_kv2p(self, vaddr: int) -> int:
        """Kernel VA → PA by walking the guest's page tables."""
        page_va = vaddr & ~_PAGE_MASK
        if self.enable_caches:
            cached = self.v2p_cache.get(page_va)
            if cached is not None:
                self.stats.translation_cache_hits += 1
                return cached | (vaddr & _PAGE_MASK)
        self.stats.translations += 1
        self.hv.charge_dom0(self.costs.translate_walk)
        if self.obs.tracer.enabled:
            self.obs.tracer.charge("page_translate", self.costs.translate_walk)
        pa_page = self._walk(page_va)
        if self.enable_caches:
            self.v2p_cache.put(page_va, pa_page)
        return pa_page | (vaddr & _PAGE_MASK)

    def _walk(self, page_va: int) -> int:
        pde_i = (page_va >> 22) & 0x3FF
        pte_i = (page_va >> 12) & 0x3FF
        pd_base = self.cr3 & ~_PAGE_MASK
        pde, = struct.unpack(
            "<I", self.hv.read_guest_physical(self.domain.domid,
                                              pd_base + 4 * pde_i, 4))
        if not pde & PTE_PRESENT:
            raise PageFault(page_va, f"PDE not present for {page_va:#x}")
        if pde & PDE_LARGE:
            # PSE 4 MiB page: the PDE maps it directly.
            return (pde & ~(LARGE_PAGE_SIZE - 1)) \
                | (page_va & (LARGE_PAGE_SIZE - 1) & ~_PAGE_MASK)
        pt_base = pde & ~_PAGE_MASK
        pte, = struct.unpack(
            "<I", self.hv.read_guest_physical(self.domain.domid,
                                              pt_base + 4 * pte_i, 4))
        if not pte & PTE_PRESENT:
            raise PageFault(page_va, f"PTE not present for {page_va:#x}")
        return pte & ~_PAGE_MASK

    # -- physical reads ------------------------------------------------------------

    def _map_frame(self, frame_no: int) -> bytes:
        if self.enable_caches:
            cached = self.page_cache.get(frame_no)
            if cached is not None:
                self.stats.page_cache_hits += 1
                return cached
        self.stats.pages_mapped += 1
        if self.obs.tracer.enabled:
            with self.obs.tracer.span("vmi.read_page",
                                      vm=self.domain.name, frame=frame_no):
                self.hv.charge_dom0(self.costs.page_map)
                self.obs.tracer.charge("page_copy", self.costs.page_map)
                page = self.hv.read_guest_frame(self.domain.domid, frame_no)
        else:
            self.hv.charge_dom0(self.costs.page_map)
            page = self.hv.read_guest_frame(self.domain.domid, frame_no)
        if self.enable_caches:
            self.page_cache.put(frame_no, page)
        return page

    # -- retry plumbing ------------------------------------------------------------

    def _retrying(self, fetch, what: str):
        """Run ``fetch`` under the retry policy (no-op without one).

        Each retry probe charges ``CostModel.retry_probe`` to Dom0 and
        backs off on the simulated clock (waiting is not CPU work, so it
        advances time without a contention-stretched charge). On a spent
        budget, raises :class:`RetryExhausted` chained to the last fault.
        """
        if self.retry is None:
            return fetch()
        for attempt in range(self.retry.max_attempts):
            try:
                if attempt and self.obs.tracer.enabled:
                    with self.obs.tracer.span("retry.attempt",
                                              vm=self.domain.name,
                                              what=what, attempt=attempt):
                        result = fetch()
                else:
                    result = fetch()
                if attempt:
                    self.stats.retries_recovered += 1
                return result
            except TransientFault as exc:
                self.stats.transient_faults += 1
                if attempt + 1 >= self.retry.max_attempts:
                    raise RetryExhausted(
                        f"{self.domain.name}: {what} still failing after "
                        f"{self.retry.max_attempts} attempts: {exc}") from exc
                self.stats.retries += 1
                self.hv.charge_dom0(self.costs.retry_probe)
                if self.obs.tracer.enabled:
                    self.obs.tracer.charge("retry_probe",
                                           self.costs.retry_probe)
                self.hv.clock.advance(self.retry.backoff(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def read_pa(self, paddr: int, length: int) -> bytes:
        """Read a physical range through frame mappings."""
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = paddr + pos
            frame_no, offset = addr >> 12, addr & _PAGE_MASK
            n = min(PAGE_SIZE - offset, length - pos)
            page = self._retrying(lambda f=frame_no: self._map_frame(f),
                                  f"PA frame {frame_no:#x}")
            out[pos:pos + n] = page[offset:offset + n]
            pos += n
        self.stats.bytes_read += length
        self.stats.read_calls += 1
        self.hv.charge_dom0(self.costs.small_read)
        if self.obs.tracer.enabled:
            self.obs.tracer.charge("small_read", self.costs.small_read)
        return bytes(out)

    # -- virtual reads ----------------------------------------------------------------

    def _fetch_va_page(self, va: int) -> tuple[int, bytes]:
        """Translate + map the page backing ``va`` (one attempt)."""
        try:
            pa = self.translate_kv2p(va)
        except PageFault as exc:
            raise IntrospectionFault(
                f"{self.domain.name}: unmapped VA {va:#x}") from exc
        return pa, self._map_frame(pa >> 12)

    def read_va(self, vaddr: int, length: int) -> bytes:
        """Read a kernel-VA range, translating and mapping page by page.

        This is the loop the paper blames for Module-Searcher's cost:
        one translation + one foreign mapping per covered page. Ranges
        covering at least :data:`BATCH_MIN_PAGES` pages are served by
        the vectorised path (same bytes, same accounting — see
        :meth:`read_va_range_batch`); everything else, and every read
        on a ``batch=False`` instance or under an installed fault
        injector, runs the scalar reference loop below.
        """
        if length > 0 and self._batch_capable() \
                and self._covered_pages(vaddr, length) >= BATCH_MIN_PAGES:
            data = self._read_va_batch(vaddr, length)
            if data is not None:
                return data
        return self._read_va_scalar(vaddr, length)

    def read_va_range_batch(self, vaddr: int, length: int) -> bytes:
        """Read a kernel-VA range through the vectorised path.

        One :func:`~repro.mem.paging.walk_batch` pass translates every
        covered page, one hypervisor gather maps every needed frame,
        and the result is assembled with numpy slicing — no per-page
        Python loop over hypervisor primitives, no intermediate
        ``bytes`` per page. Bytes, faults, stats, cache hit/miss
        series, and cost-model totals are identical to
        :meth:`read_va`; the batched call is recorded in
        ``stats.batch_reads`` / ``batch_pages``. Stands down to the
        scalar reference loop (recorded in ``batch_fallbacks``)
        whenever exact parity cannot be guaranteed structurally: a
        fault injector is installed, the range holds a non-present
        page (the scalar replay raises the identical
        :class:`IntrospectionFault` with identical partial
        accounting), a transient fault interrupts the pristine phase,
        or an LRU cache is close enough to capacity that eviction
        order inside the read would matter.
        """
        if length > 0 and self._batch_capable():
            data = self._read_va_batch(vaddr, length)
            if data is not None:
                return data
        return self._read_va_scalar(vaddr, length)

    def _read_va_scalar(self, vaddr: int, length: int) -> bytes:
        """The per-page reference loop (see :meth:`read_va`)."""
        out = bytearray(length)
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)
            pa, page = self._retrying(lambda v=va: self._fetch_va_page(v),
                                      f"VA page {va & ~_PAGE_MASK:#x}")
            offset = pa & _PAGE_MASK
            out[pos:pos + n] = page[offset:offset + n]
            pos += n
        self.stats.bytes_read += length
        self.stats.read_calls += 1
        self.hv.charge_dom0(self.costs.small_read)
        if self.obs.tracer.enabled:
            self.obs.tracer.charge("small_read", self.costs.small_read)
        return bytes(out)

    # -- vectorised acquisition -------------------------------------------------

    def _batch_capable(self) -> bool:
        """Whether the vectorised path may run at all right now.

        An installed fault injector interposes on the *scalar*
        hypervisor primitives and draws one RNG value per guest read;
        routing around it through the batched primitives would silently
        change fault schedules, so under a live injector every
        operation takes the per-page loop the injector knows how to
        interfere with (the fault-parity tests hold by construction).
        An *inert* injector — all rates zero, so it can never fault or
        open a window — is observability-only and does not stand the
        batch down (rate 0 must stay simulated-time invisible).
        """
        if not self.batch:
            return False
        injector = getattr(self.hv, "fault_injector", None)
        if injector is None:
            return True
        config = getattr(injector, "config", None)
        return config is not None and not config.any_faults

    @staticmethod
    def _covered_pages(vaddr: int, length: int) -> int:
        return ((vaddr + length - 1) >> 12) - (vaddr >> 12) + 1

    def _resolve_pages(self, page_vas: list[int]):
        """Pristine per-page translation for the batch paths.

        Consults the V2P cache through stats-neutral ``peek`` (a stale
        cached translation must be *served*, exactly as the scalar hit
        path serves it) and resolves the misses in one
        :func:`walk_batch` pass over the guest's live page tables.
        Returns ``(pa_pages, v2p_hit)`` — or ``None`` when the batch
        must stand down: a miss page is non-present, or the walk hit a
        transient fault / wild page-table pointer. Nothing has been
        charged, counted, or cached at that point, so the scalar
        replay is bit-identical, partial accounting and all.
        """
        n = len(page_vas)
        pa_pages: list[int | None] = [None] * n
        v2p_hit = [False] * n
        miss_idx: list[int] = []
        if self.enable_caches:
            peek = self.v2p_cache.peek
            for i, pv in enumerate(page_vas):
                pa = peek(pv)
                if pa is None:
                    miss_idx.append(i)
                else:
                    pa_pages[i] = pa
                    v2p_hit[i] = True
        else:
            miss_idx = list(range(n))
        if miss_idx:
            vas = np.array([page_vas[i] for i in miss_idx], dtype=np.int64)
            domid = self.domain.domid
            try:
                frames, present, _ = walk_batch(
                    lambda pa, ln: self.hv.read_guest_physical(domid, pa,
                                                               ln),
                    self.cr3, vas)
            except (TransientFault, PhysicalAddressError):
                return None
            if not present.all():
                return None
            for j, i in enumerate(miss_idx):
                pa_pages[i] = int(frames[j]) << 12
        return pa_pages, v2p_hit

    def _read_va_batch(self, vaddr: int, length: int) -> bytes | None:
        """One attempt at a vectorised read; ``None`` = use scalar."""
        first_page = vaddr & ~_PAGE_MASK
        n_pages = self._covered_pages(vaddr, length)
        page_vas = [first_page + i * PAGE_SIZE for i in range(n_pages)]
        if self.enable_caches and (
                len(self.v2p_cache) + n_pages > self.v2p_cache.capacity
                or len(self.page_cache) + n_pages
                > self.page_cache.capacity):
            # A put inside this read could evict an entry this same
            # read still needs; only the scalar loop replays LRU
            # eviction order exactly, so stand down.
            self.stats.batch_fallbacks += 1
            return None
        resolved = self._resolve_pages(page_vas)
        if resolved is None:
            self.stats.batch_fallbacks += 1
            return None
        pa_pages, v2p_hit = resolved
        frame_nos = [pa >> 12 for pa in pa_pages]

        # Decide which frames need a hypervisor gather (stats-neutral
        # probes; cached frames are served from cache even when stale,
        # exactly as the scalar hit path would).
        fetch: list[int] = []
        seen: set[int] = set()
        peek = self.page_cache.peek if self.enable_caches else None
        for f in frame_nos:
            if f in seen or (peek is not None and peek(f) is not None):
                continue
            seen.add(f)
            fetch.append(f)
        try:
            rows = self.hv.read_guest_frames(self.domain.domid, fetch) \
                if fetch else None
        except (TransientFault, PhysicalAddressError):
            self.stats.batch_fallbacks += 1
            return None
        row_of = {f: i for i, f in enumerate(fetch)}

        # Commit: replay counters and cache traffic in VA order, so
        # hit/miss series and LRU state land exactly where the scalar
        # loop leaves them. No hypervisor call can fail past here.
        out = np.empty((n_pages, PAGE_SIZE), dtype=np.uint8)
        stats = self.stats
        walked = mapped = 0
        for i, pv in enumerate(page_vas):
            if v2p_hit[i]:
                self.v2p_cache.get(pv)            # count hit + promote
                stats.translation_cache_hits += 1
            else:
                if self.enable_caches:
                    self.v2p_cache.get(pv)        # count the miss
                    self.v2p_cache.put(pv, pa_pages[i])
                stats.translations += 1
                walked += 1
            f = frame_nos[i]
            if self.enable_caches:
                cached = self.page_cache.get(f)
                if cached is not None:
                    stats.page_cache_hits += 1
                    out[i] = np.frombuffer(cached, dtype=np.uint8)
                    continue
            stats.pages_mapped += 1
            mapped += 1
            row = rows[row_of[f]]
            out[i] = row
            if self.enable_caches:
                self.page_cache.put(f, row.tobytes())
        self._charge_batch_read(walked, mapped, n_pages)
        stats.bytes_read += length
        stats.read_calls += 1
        start = vaddr & _PAGE_MASK
        return out.reshape(-1)[start:start + length].tobytes()

    def _charge_batch_read(self, walked: int, mapped: int,
                           n_pages: int) -> None:
        """Charge one batched read — same totals as the per-page loop.

        The untraced fast path pays a single ``charge_dom0`` (one
        contention stretch for the whole read); the traced path splits
        the charges so each lands on its closed-vocabulary op, with
        the ``page_copy`` share inside one aggregated ``vmi.read_page``
        span (keeping the profiler's hotspot attribution on the same
        path the scalar per-frame spans put it on).
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            self.hv.charge_dom0(
                self.costs.range_read_cost(walked=walked, mapped=mapped))
        else:
            if walked:
                self.hv.charge_dom0(walked * self.costs.translate_walk)
                tracer.charge("page_translate",
                              walked * self.costs.translate_walk)
            if mapped:
                with tracer.span("vmi.read_page", vm=self.domain.name,
                                 pages=mapped, batch=True):
                    self.hv.charge_dom0(mapped * self.costs.page_map)
                    tracer.charge("page_copy",
                                  mapped * self.costs.page_map)
            self.hv.charge_dom0(self.costs.small_read)
            tracer.charge("small_read", self.costs.small_read)
        self.stats.batch_reads += 1
        self.stats.batch_pages += n_pages

    # -- incremental page sweep --------------------------------------------------

    def _checksum_page(self, va: int, length: int = PAGE_SIZE) -> bytes:
        """Translate + hypervisor-side digest of one page (one attempt).

        Deliberately bypasses the page cache in both directions: no
        page bytes enter Dom0, and the sweep must never be satisfied
        from (or accounted against) cached frames — a stale cached page
        is exactly what a tampered guest would want the sweep to hash.

        ``length`` masks a partial tail page (see
        :meth:`Hypervisor.checksum_guest_frame`). Counting and charging
        happen strictly *after* the digest succeeds: under the retry
        policy a faulted attempt must not inflate ``pages_checksummed``
        or charge ``page_checksum`` a second time (the retry layer
        already charges its own ``retry_probe``).
        """
        try:
            pa = self.translate_kv2p(va)
        except PageFault as exc:
            raise IntrospectionFault(
                f"{self.domain.name}: unmapped VA {va:#x}") from exc
        digest = self.hv.checksum_guest_frame(self.domain.domid, pa >> 12,
                                              length)
        self.stats.pages_checksummed += 1
        self.hv.charge_dom0(self.costs.page_checksum)
        if self.obs.tracer.enabled:
            self.obs.tracer.charge("page_checksum", self.costs.page_checksum)
        return digest

    def checksum_va_range(self, vaddr: int, length: int,
                          ) -> tuple[bytes, ...]:
        """Per-page digests of a kernel-VA range, cheapest-first.

        The incremental fast path's content probe: every covered page
        is still *observed* every round (tamper detection is not
        optional), but through :meth:`Hypervisor.checksum_guest_frame`
        — a translate walk plus a ``page_checksum`` charge per page —
        instead of the map-and-copy loop ``read_va`` pays for. Runs
        under the same retry policy as ordinary reads. A range ending
        mid-page digests only the in-range bytes of the final frame
        (zero-padded), so co-resident neighbours past the tail cannot
        perturb the digests. Sweeps covering at least
        :data:`BATCH_MIN_PAGES` pages run vectorised (one walk pass
        plus one hypervisor-side gather-and-digest call), standing
        down to this scalar loop under the same rules as
        :meth:`read_va_range_batch`.
        """
        if length > 0 and self._batch_capable() \
                and self._covered_pages(vaddr, length) >= BATCH_MIN_PAGES:
            batched = self._checksum_va_batch(vaddr, length)
            if batched is not None:
                return tuple(batched)
        digests: list[bytes] = []
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)
            digests.append(
                self._retrying(lambda v=va, m=n: self._checksum_page(v, m),
                               f"checksum page {va & ~_PAGE_MASK:#x}"))
            pos += n
        return tuple(digests)

    def _checksum_va_batch(self, vaddr: int, length: int,
                           ) -> list[bytes] | None:
        """One attempt at a vectorised full sweep; ``None`` = scalar."""
        page_vas: list[int] = []
        lengths: list[int] = []
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)
            page_vas.append(va & ~_PAGE_MASK)
            lengths.append(n)
            pos += n
        return self._checksum_pages_batch(page_vas, lengths)

    def _checksum_pages_batch(self, page_vas: list[int],
                              lengths: list[int]) -> list[bytes] | None:
        """Shared vectorised core of both checksum sweeps.

        Same phase discipline as :meth:`_read_va_batch`: stats-neutral
        translation resolve, one pristine
        :meth:`Hypervisor.checksum_guest_frames` hypercall (digests
        are computed VMM-side, so the page cache stays bypassed in
        both directions exactly as the scalar sweep demands), then a
        commit pass that replays V2P traffic and charges aggregate
        costs with scalar-identical totals.
        """
        n_pages = len(page_vas)
        if self.enable_caches and (len(self.v2p_cache) + n_pages
                                   > self.v2p_cache.capacity):
            self.stats.batch_fallbacks += 1
            return None
        resolved = self._resolve_pages(page_vas)
        if resolved is None:
            self.stats.batch_fallbacks += 1
            return None
        pa_pages, v2p_hit = resolved
        try:
            digests = self.hv.checksum_guest_frames(
                self.domain.domid, [pa >> 12 for pa in pa_pages], lengths)
        except (TransientFault, PhysicalAddressError):
            self.stats.batch_fallbacks += 1
            return None
        stats = self.stats
        walked = 0
        for i, pv in enumerate(page_vas):
            if v2p_hit[i]:
                self.v2p_cache.get(pv)            # count hit + promote
                stats.translation_cache_hits += 1
            else:
                if self.enable_caches:
                    self.v2p_cache.get(pv)        # count the miss
                    self.v2p_cache.put(pv, pa_pages[i])
                stats.translations += 1
                walked += 1
        stats.pages_checksummed += n_pages
        tracer = self.obs.tracer
        if not tracer.enabled:
            self.hv.charge_dom0(self.costs.range_checksum_cost(
                walked=walked, pages=n_pages))
        else:
            if walked:
                self.hv.charge_dom0(walked * self.costs.translate_walk)
                tracer.charge("page_translate",
                              walked * self.costs.translate_walk)
            self.hv.charge_dom0(n_pages * self.costs.page_checksum)
            tracer.charge("page_checksum",
                          n_pages * self.costs.page_checksum)
        stats.batch_reads += 1
        stats.batch_pages += n_pages
        return digests

    def checksum_pages(self, vaddr: int, length: int,
                       indices) -> dict[int, bytes]:
        """Digest selected pages of a page-aligned VA range.

        The targeted half of event-driven monitoring: after traps name
        the dirtied pages, only those page indices are re-digested —
        O(writes), not O(pages). Same masking and retry semantics as
        :meth:`checksum_va_range`; indices outside the range raise.
        """
        if vaddr & _PAGE_MASK:
            raise ValueError(f"vaddr {vaddr:#x} is not page-aligned")
        wanted = sorted(set(indices))
        if len(wanted) >= BATCH_MIN_PAGES and self._batch_capable() \
                and all(0 <= idx * PAGE_SIZE < length for idx in wanted):
            page_vas = [vaddr + idx * PAGE_SIZE for idx in wanted]
            lengths = [min(PAGE_SIZE, length - idx * PAGE_SIZE)
                       for idx in wanted]
            digests = self._checksum_pages_batch(page_vas, lengths)
            if digests is not None:
                return dict(zip(wanted, digests))
        out: dict[int, bytes] = {}
        for idx in wanted:
            offset = idx * PAGE_SIZE
            if not 0 <= offset < length:
                raise ValueError(f"page index {idx} outside range")
            va = vaddr + offset
            n = min(PAGE_SIZE, length - offset)
            out[idx] = self._retrying(
                lambda v=va, m=n: self._checksum_page(v, m),
                f"checksum page {va:#x}")
        return out

    # -- write-protection (event-driven monitoring) -------------------------------

    def protect_va_range(self, vaddr: int, length: int,
                         ) -> tuple[int | None, ...]:
        """Arm write-protection on every frame backing a kernel-VA range.

        Returns one entry per covered page, in order: the protected gfn,
        or None when the page is *unprotectable* (unmapped VA, or the
        hypervisor refused for capacity). Each armed frame charges
        ``CostModel.page_protect``; translation is charged as usual.
        The caller owns the returned gfns — it must hand each one back
        to :meth:`Hypervisor.unprotect_guest_frame` when done (the
        hypervisor refcounts, so overlapping monitors compose).
        """
        gfns: list[int | None] = []
        pos = 0
        try:
            while pos < length:
                va = vaddr + pos
                n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)
                try:
                    pa = self._retrying(
                        lambda v=va: self.translate_kv2p(v),
                        f"protect page {va & ~_PAGE_MASK:#x}")
                except PageFault:
                    self.stats.pages_unprotectable += 1
                    gfns.append(None)
                    pos += n
                    continue
                if self.hv.protect_guest_frame(self.domain.domid,
                                               pa >> 12):
                    self.stats.pages_protected += 1
                    self.hv.charge_dom0(self.costs.page_protect)
                    if self.obs.tracer.enabled:
                        self.obs.tracer.charge("page_protect",
                                               self.costs.page_protect)
                    gfns.append(pa >> 12)
                else:
                    self.stats.pages_unprotectable += 1
                    gfns.append(None)
                pos += n
        except Exception:
            # all-or-nothing: a fault mid-arming must not leak refcounts
            # on the frames already protected
            for gfn in gfns:
                if gfn is not None:
                    self.hv.unprotect_guest_frame(self.domain.domid, gfn)
            raise
        return tuple(gfns)

    # -- privileged writes (remediation) ------------------------------------------

    def write_va_range(self, vaddr: int, data: bytes) -> None:
        """Write bytes over a kernel-VA range through the privileged path.

        The remediation engine's only way into a guest: each covered
        page is translated through the guest's own page tables (under
        the retry policy, like any read) and written via
        :meth:`Hypervisor.write_guest_frame` with ``privileged=True`` —
        so trap-protected frames are written *without* delivering a
        self-inflicted trap. Charges ``CostModel.page_write`` per
        frame touched. Written frames are evicted from the page cache:
        a subsequent read must see the repaired bytes, not the tampered
        copy the cache may still hold.
        """
        length = len(data)
        view = memoryview(data)
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)

            def put(v=va, p=pos, m=n) -> None:
                try:
                    pa = self.translate_kv2p(v)
                except PageFault as exc:
                    raise IntrospectionFault(
                        f"{self.domain.name}: unmapped VA {v:#x}") from exc
                frame_no = pa >> 12
                self.hv.write_guest_frame(
                    self.domain.domid, frame_no, bytes(view[p:p + m]),
                    pa & _PAGE_MASK, privileged=True)
                self.page_cache.pop(frame_no)

            self._retrying(put, f"write VA page {va & ~_PAGE_MASK:#x}")
            self.stats.pages_written += 1
            self.stats.bytes_written += n
            self.hv.charge_dom0(self.costs.page_write)
            if self.obs.tracer.enabled:
                self.obs.tracer.charge("page_write", self.costs.page_write)
            pos += n

    def drain_traps(self):
        """Drain this domain's pending write traps (one hypercall).

        Returns ``(traps, overflowed)`` straight from the hypervisor
        ring (see :meth:`TrapQueue.drain`). Charges one ``small_read``
        for the ring poll plus ``trap_deliver`` per trap delivered —
        the empty steady-state drain is the cheapest operation in the
        whole stack, which is the point of event-driven monitoring.
        """
        traps, overflowed = self.hv.traps.drain(self.domain.name)
        self.stats.traps_drained += len(traps)
        self.hv.charge_dom0(self.costs.small_read
                            + len(traps) * self.costs.trap_deliver)
        if self.obs.tracer.enabled:
            self.obs.tracer.charge("small_read", self.costs.small_read)
            if traps:
                self.obs.tracer.charge(
                    "trap_deliver", len(traps) * self.costs.trap_deliver)
        return traps, overflowed

    def read_u32(self, vaddr: int) -> int:
        return struct.unpack("<I", self.read_va(vaddr, 4))[0]

    def read_u16(self, vaddr: int) -> int:
        return struct.unpack("<H", self.read_va(vaddr, 2))[0]

    # -- symbols --------------------------------------------------------------------

    def symbol(self, name: str) -> int:
        """Resolve a kernel symbol via the OS profile."""
        return self.profile.symbol(name)
