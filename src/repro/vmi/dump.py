"""Memory acquisition and offline analysis (the Volatility workflow).

ModChecker works *live*; incident response often cannot — the standard
play is to acquire a full physical-memory image and analyse it offline.
This module implements both halves:

* :func:`acquire_dump` reads every frame of a guest through the
  hypervisor (the moral equivalent of ``xl dump-core`` / LibVMI's
  snapshot mode) into a :class:`MemoryDump` with the CR3 and OS profile
  recorded in its metadata, exactly what a Volatility profile needs;
* :class:`DumpAnalyzer` exposes the same read surface as a live
  :class:`~repro.vmi.core.VMIInstance` (``read_va``, ``read_u32``,
  ``symbol`` …) but walks the *dumped* page tables — so Module-Searcher,
  the carver and the Integrity-Checker run unchanged against a dump.

A dump is a point-in-time copy: no cost accounting, no caches, no guest
to perturb. Offline cross-checks of dumps from several clones therefore
give the same verdicts as a live pool check at the acquisition instant,
which the tests assert.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import IntrospectionFault, PageFault, PhysicalAddressError
from ..hypervisor.xen import Hypervisor
from ..mem.paging import LARGE_PAGE_SIZE, PDE_LARGE, PTE_PRESENT
from ..mem.physical import PAGE_SIZE
from .symbols import OSProfile

__all__ = ["MemoryDump", "DumpAnalyzer", "acquire_dump"]

_PAGE_MASK = PAGE_SIZE - 1


@dataclass
class MemoryDump:
    """A guest's physical memory at one instant, plus analysis metadata."""

    vm_name: str
    cr3: int
    profile: OSProfile
    acquired_at: float                       # simulated time
    #: sparse frame map: frame number -> 4 KiB bytes (untouched frames
    #: are omitted and read as zeros, like a sparse core file)
    frames: dict[int, bytes] = field(default_factory=dict)
    n_frames: int = 0

    @property
    def resident_bytes(self) -> int:
        return len(self.frames) * PAGE_SIZE

    def read_physical(self, paddr: int, length: int) -> bytes:
        if paddr < 0 or paddr + length > self.n_frames * PAGE_SIZE:
            raise PhysicalAddressError(
                f"dump read [{paddr:#x},{paddr + length:#x}) out of range")
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = paddr + pos
            frame_no, offset = addr >> 12, addr & _PAGE_MASK
            n = min(PAGE_SIZE - offset, length - pos)
            frame = self.frames.get(frame_no)
            if frame is not None:
                out[pos:pos + n] = frame[offset:offset + n]
            pos += n
        return bytes(out)


def acquire_dump(hypervisor: Hypervisor, domain_key: int | str,
                 profile: OSProfile) -> MemoryDump:
    """Copy every touched frame of the guest out through the VMM.

    Charges Dom0 CPU for the full sweep (acquisition is not free), then
    returns a self-contained dump.
    """
    domain = hypervisor.domain(domain_key)
    if not domain.is_guest:
        raise IntrospectionFault(f"{domain.name} is not dumpable")
    assert domain.kernel is not None
    memory = domain.kernel.memory
    frames: dict[int, bytes] = {}
    # Real acquisition reads every frame; we copy the touched ones and
    # charge for the sweep at page-map cost.
    for frame_no in sorted(memory._frames):
        frames[frame_no] = memory.read_frame(frame_no)
    hypervisor.charge_dom0(len(frames) * 120e-6)
    return MemoryDump(
        vm_name=domain.name, cr3=domain.kernel.cr3, profile=profile,
        acquired_at=hypervisor.clock.now, frames=frames,
        n_frames=memory.n_frames)


class _DumpDomain:
    """Duck-typed stand-in for the live Domain handle."""

    def __init__(self, name: str) -> None:
        self.name = name


class DumpAnalyzer:
    """Offline reader with the live-VMI surface, over a MemoryDump."""

    def __init__(self, dump: MemoryDump) -> None:
        self.dump = dump
        self.profile = dump.profile
        self.cr3 = dump.cr3
        self.domain = _DumpDomain(dump.vm_name)

    # -- the VMIInstance surface the checker components consume -------------

    def flush_caches(self) -> None:
        """No caches offline; present for interface compatibility."""

    def read_pa(self, paddr: int, length: int) -> bytes:
        return self.dump.read_physical(paddr, length)

    def translate_kv2p(self, vaddr: int) -> int:
        page_va = vaddr & ~_PAGE_MASK
        pde_i = (page_va >> 22) & 0x3FF
        pte_i = (page_va >> 12) & 0x3FF
        pd_base = self.cr3 & ~_PAGE_MASK
        pde, = struct.unpack("<I", self.read_pa(pd_base + 4 * pde_i, 4))
        if not pde & PTE_PRESENT:
            raise PageFault(page_va, f"PDE not present for {page_va:#x}")
        if pde & PDE_LARGE:
            return (pde & ~(LARGE_PAGE_SIZE - 1)) \
                | (vaddr & (LARGE_PAGE_SIZE - 1))
        pt_base = pde & ~_PAGE_MASK
        pte, = struct.unpack("<I", self.read_pa(pt_base + 4 * pte_i, 4))
        if not pte & PTE_PRESENT:
            raise PageFault(page_va, f"PTE not present for {page_va:#x}")
        return (pte & ~_PAGE_MASK) | (vaddr & _PAGE_MASK)

    def read_va(self, vaddr: int, length: int) -> bytes:
        out = bytearray(length)
        pos = 0
        while pos < length:
            va = vaddr + pos
            n = min(PAGE_SIZE - (va & _PAGE_MASK), length - pos)
            try:
                pa = self.translate_kv2p(va)
            except PageFault as exc:
                raise IntrospectionFault(
                    f"{self.dump.vm_name} (dump): unmapped VA {va:#x}"
                ) from exc
            out[pos:pos + n] = self.read_pa(pa, n)
            pos += n
        return bytes(out)

    def read_u32(self, vaddr: int) -> int:
        return struct.unpack("<I", self.read_va(vaddr, 4))[0]

    def read_u16(self, vaddr: int) -> int:
        return struct.unpack("<H", self.read_va(vaddr, 2))[0]

    def symbol(self, name: str) -> int:
        return self.profile.symbol(name)
