"""libvmi-like virtual machine introspection layer."""

from .cache import (CheckManifest, LRUCache, ManifestStore, PageCache,
                    V2PCache)
from .core import VMIInstance, VMIStats
from .dump import DumpAnalyzer, MemoryDump, acquire_dump
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .symbols import OSProfile, XP_SP2_OFFSETS

__all__ = [
    "LRUCache", "PageCache", "V2PCache",
    "CheckManifest", "ManifestStore",
    "VMIInstance", "VMIStats",
    "DumpAnalyzer", "MemoryDump", "acquire_dump",
    "DEFAULT_RETRY_POLICY", "RetryPolicy",
    "OSProfile", "XP_SP2_OFFSETS",
]
