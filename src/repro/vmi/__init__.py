"""libvmi-like virtual machine introspection layer."""

from .cache import LRUCache, PageCache, V2PCache
from .core import VMIInstance, VMIStats
from .dump import DumpAnalyzer, MemoryDump, acquire_dump
from .symbols import OSProfile, XP_SP2_OFFSETS

__all__ = [
    "LRUCache", "PageCache", "V2PCache",
    "VMIInstance", "VMIStats",
    "DumpAnalyzer", "MemoryDump", "acquire_dump",
    "OSProfile", "XP_SP2_OFFSETS",
]
