"""Retry policy for transient introspection failures.

Production VMI treats guest-memory access as an unreliable, contended
channel (cf. low-overhead VMI monitoring, arXiv:1902.05135): a mapping
can fail transiently, a page can be out for a few milliseconds, a whole
domain can briefly stop answering. :class:`RetryPolicy` bounds how hard
the checker fights back:

* **page retries** — each failing page read is retried up to
  ``max_attempts`` times with exponential backoff *on the simulated
  clock* (backoff is waiting, so it advances wall time but charges no
  Dom0 CPU); each retry probe's CPU cost is charged through the cost
  model (``CostModel.retry_probe``), so resilience shows up honestly in
  the Fig. 7/8-style breakdowns;
* **module attempts** — if a whole-module copy still fails after page
  retries, the Searcher re-finds and re-copies the module
  ``module_attempts`` times (a fresh walk usually lands after the fault
  window has closed);
* **exhaustion** — when the budget is spent the read raises
  :class:`~repro.errors.RetryExhausted`, which the pool layer converts
  into *degradation* (the VM is dropped from the quorum / quarantined),
  never into an aborted sweep.

With no faults injected the policy is pure configuration: zero extra
charges, zero clock movement — a rate-0 run is bit-identical to the
seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient guest-read failures."""

    #: attempts per page read (first try included); >= 1
    max_attempts: int = 5
    #: simulated seconds slept before the first retry
    backoff_base: float = 0.002
    #: multiplier applied per further retry
    backoff_factor: float = 2.0
    #: cap on any single backoff sleep
    backoff_cap: float = 0.050
    #: whole-module copy attempts in the Searcher (first try included)
    module_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.module_attempts < 1:
            raise ValueError("module_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (0-based)."""
        return min(self.backoff_base * self.backoff_factor ** retry_index,
                   self.backoff_cap)

    @property
    def worst_case_backoff(self) -> float:
        """Total simulated sleep if every retry of one page is needed."""
        return sum(self.backoff(i) for i in range(self.max_attempts - 1))


#: Shared default: 5 attempts, 2 ms base doubling to a 50 ms cap —
#: enough to ride out the default paged-out window, cheap enough that a
#: healthy pool never notices it.
DEFAULT_RETRY_POLICY = RetryPolicy()
