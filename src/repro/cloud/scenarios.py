"""Canned experiment scenarios: one call stages a whole situation.

The evaluation, examples, CLI and benches all repeat the same dance —
build a catalog, infect a driver, boot a cloud with the victim swapped
in, attach a checker. These helpers make the dance one line and return
everything the caller might assert against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import attack_for_experiment, make_attack
from ..attacks.base import InfectionResult
from ..core import CheckDaemon, ModChecker
from ..guest import build_catalog
from .chaos import ChaosConfig, ChaosEngine
from .testbed import Testbed, build_testbed

__all__ = ["StagedScenario", "stage_experiment", "stage_attack",
           "stage_hidden_module", "ChaosScenario", "stage_chaos"]


@dataclass
class StagedScenario:
    """A booted cloud with (optionally) one infected clone."""

    testbed: Testbed
    checker: ModChecker
    module: str
    victim: str | None = None
    infection: InfectionResult | None = None

    @property
    def expected_regions(self) -> tuple[str, ...]:
        return self.infection.expected_regions if self.infection else ()

    def run_pool_check(self, **kwargs):
        """Convenience: full cross-check of the staged module."""
        return self.checker.check_pool(self.module, **kwargs)


def stage_experiment(exp_id: str, *, n_vms: int = 6, victim: str = "Dom3",
                     seed: int | None = 42, os_flavor: str = "xp-sp2",
                     **checker_kwargs) -> StagedScenario:
    """Stage one of the paper's E1–E4 experiments end to end."""
    attack, module = attack_for_experiment(exp_id)
    return _stage(attack, module, n_vms=n_vms, victim=victim, seed=seed,
                  os_flavor=os_flavor, **checker_kwargs)


def stage_attack(attack_name: str, module: str, *, n_vms: int = 6,
                 victim: str = "Dom3", seed: int | None = 42,
                 os_flavor: str = "xp-sp2",
                 **checker_kwargs) -> StagedScenario:
    """Stage any registered file-level attack against ``module``."""
    return _stage(make_attack(attack_name), module, n_vms=n_vms,
                  victim=victim, seed=seed, os_flavor=os_flavor,
                  **checker_kwargs)


def _stage(attack, module, *, n_vms, victim, seed, os_flavor,
           **checker_kwargs) -> StagedScenario:
    catalog = build_catalog(seed=seed)
    infection = attack.apply(catalog[module])
    tb = build_testbed(n_vms, seed=seed, os_flavor=os_flavor,
                       infected={victim: {module: infection.infected}})
    checker = ModChecker(tb.hypervisor, tb.profile, **checker_kwargs)
    return StagedScenario(testbed=tb, checker=checker, module=module,
                          victim=victim, infection=infection)


@dataclass
class ChaosScenario:
    """A clean cloud under lifecycle churn, with the daemon attached.

    The canonical robustness experiment: every guest boots the pristine
    catalog, the :class:`ChaosEngine` reboots/pauses/migrates/destroys/
    creates guests between cycles, and the daemon must ride it out with
    zero false positives. :meth:`admit_infected` stages the hard case —
    a compromised clone joining the pool mid-run.
    """

    testbed: Testbed
    checker: ModChecker
    daemon: CheckDaemon
    engine: ChaosEngine
    seed: int | None = 42

    def run(self, cycles: int):
        """Run the daemon (which steps the engine) for ``cycles``."""
        return self.daemon.run(cycles)

    def admit_infected(self, exp_id: str = "E2", *,
                       name: str = "Mallory") -> str:
        """Boot an *infected* clone into the pool mid-run.

        The clone carries one of the paper's E1–E4 infections baked
        into its installation media; the daemon's warm-up + membership
        path must still flag it within a few cycles.
        """
        attack, module = attack_for_experiment(exp_id)
        infection = attack.apply(self.testbed.catalog[module])
        catalog = dict(self.testbed.catalog)
        catalog[module] = infection.infected
        self.engine.create_guest(name, catalog)
        self.daemon.admit_vm(name)
        return name


def stage_chaos(*, n_vms: int = 5, seed: int | None = 42,
                churn_rate: float = 0.2,
                chaos_config: ChaosConfig | None = None,
                os_flavor: str = "xp-sp2",
                checker_kwargs: dict | None = None,
                **daemon_kwargs) -> ChaosScenario:
    """Stage a clean pool + daemon + seeded churn engine in one call.

    ``chaos_config`` overrides the scalar ``churn_rate`` split when the
    experiment needs specific event rates. Daemon keyword arguments
    (``interval``, ``policy``, ...) pass through.
    """
    tb = build_testbed(n_vms, seed=seed, os_flavor=os_flavor)
    checker = ModChecker(tb.hypervisor, tb.profile,
                         **(checker_kwargs or {}))
    config = chaos_config or ChaosConfig.from_churn_rate(churn_rate)
    engine = ChaosEngine(tb.hypervisor, config, seed=seed,
                         catalog=tb.catalog, os_flavor=os_flavor)
    daemon = CheckDaemon(checker, chaos=engine, **daemon_kwargs)
    return ChaosScenario(testbed=tb, checker=checker, daemon=daemon,
                         engine=engine, seed=seed)


def stage_hidden_module(*, module: str = "dummy.sys", n_vms: int = 4,
                        victim: str = "Dom2", seed: int | None = 42,
                        patch_text: bool = True,
                        **checker_kwargs) -> StagedScenario:
    """Stage the H1 scenario: patch (optionally) + DKOM-unlink a module."""
    tb = build_testbed(n_vms, seed=seed)
    kernel = tb.hypervisor.domain(victim).kernel
    if patch_text:
        text = tb.catalog[module].section(".text")
        mod = kernel.module(module)
        kernel.aspace.write(mod.base + text.virtual_address + 0x18,
                            b"\xCC\xCC")
    kernel.unload_module(module)
    checker = ModChecker(tb.hypervisor, tb.profile, **checker_kwargs)
    return StagedScenario(testbed=tb, checker=checker, module=module,
                          victim=victim)
