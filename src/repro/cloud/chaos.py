"""Seeded lifecycle chaos: the pool itself becomes the fault model.

PR 1 made single *reads* unreliable; this module makes the *pool*
unreliable. A cloud's guests reboot (reloading every module at fresh
bases), freeze in pause windows, black out during live migrations, and
are created and destroyed mid-sweep. :class:`ChaosEngine` drives those
transitions on the simulated clock from one PCG64 stream derived from
the global seed (:mod:`repro.rng`), so the full churn trace — which VM
did what, when — is a pure function of ``(seed, rates)``, exactly like
:class:`~repro.hypervisor.faults.FaultInjector`'s fault schedule.

The engine is stepped, not threaded: callers (the
:class:`~repro.core.daemon.CheckDaemon`, the soak tests, the CLI) call
:meth:`ChaosEngine.step` once per checking cycle. Each step first
closes any due windows (unpausing paused guests, finishing migrations),
then draws one lifecycle event per RUNNING guest, then draws a
pool-growth event. Stepping at cycle boundaries keeps sweeps internally
consistent — a real cloud mutates mid-copy too, but that hazard is
PR 1's torn-page fault, not this layer's job.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import DomainNotFound, DomainStateError
from ..hypervisor.domain import DomainState
from ..hypervisor.xen import Hypervisor
from ..pe.builder import DriverBlueprint
from ..rng import derive_seed, make_rng

__all__ = ["ChaosConfig", "ChaosEvent", "ChaosStats", "ChaosEngine"]

#: Share of a scalar ``churn_rate`` given to each event kind by
#: :meth:`ChaosConfig.from_churn_rate`. Reboots dominate because they
#: are the interesting case (fresh bases, warm-up, re-walk); membership
#: change is rarer, as in a real fleet.
CHURN_SPLIT = {"reboot": 0.40, "pause": 0.25, "migrate": 0.15,
               "destroy": 0.10, "create": 0.10}


@dataclass(frozen=True)
class ChaosConfig:
    """Per-step event probabilities and window durations (sim seconds).

    Rates are *per guest per step* (create is per step for the whole
    pool). ``min_pool`` stops destroys from shrinking the pool below a
    viable quorum; ``max_pool`` stops creates from growing it without
    bound. ``only_domains`` restricts churn to named guests (``None`` =
    every guest), mirroring ``FaultConfig.only_domains``.
    """

    reboot_rate: float = 0.0
    pause_rate: float = 0.0
    #: how long a paused guest stays frozen before the engine unpauses it
    pause_duration: float = 90.0
    migrate_rate: float = 0.0
    #: how long a live migration blacks out the domain's reads
    migrate_duration: float = 150.0
    destroy_rate: float = 0.0
    create_rate: float = 0.0
    min_pool: int = 2
    max_pool: int = 32
    only_domains: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{f.name} must be in [0, 1], got {value}")
            if f.name.endswith("_duration") and value < 0:
                raise ValueError(f"{f.name} must be >= 0, got {value}")
        per_guest = (self.reboot_rate + self.pause_rate + self.migrate_rate
                     + self.destroy_rate)
        if per_guest > 1.0:
            raise ValueError(f"per-guest churn rates sum to {per_guest} > 1")
        if self.min_pool < 0 or self.max_pool < self.min_pool:
            raise ValueError("need 0 <= min_pool <= max_pool")

    @property
    def any_churn(self) -> bool:
        return (self.reboot_rate or self.pause_rate or self.migrate_rate
                or self.destroy_rate or self.create_rate) > 0

    @classmethod
    def from_churn_rate(cls, rate: float, **overrides) -> "ChaosConfig":
        """One scalar knob (the CLI's ``--churn-rate``) split across
        event kinds per :data:`CHURN_SPLIT`."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"churn rate must be in [0, 1], got {rate}")
        kwargs = {f"{kind}_rate": rate * share
                  for kind, share in CHURN_SPLIT.items()}
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass(frozen=True)
class ChaosEvent:
    """One lifecycle transition the engine applied."""

    time: float
    kind: str          # reboot|pause|unpause|migrate-start|migrate-finish|
                       # destroy|create
    vm: str

    def __str__(self) -> str:
        return f"[{self.time:10.3f}s] chaos: {self.kind} {self.vm}"


@dataclass
class ChaosStats:
    """Counters for what the engine actually did."""

    steps: int = 0
    reboots: int = 0
    pauses: int = 0
    unpauses: int = 0
    migrations: int = 0
    migrations_finished: int = 0
    destroys: int = 0
    creates: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def events(self) -> int:
        return sum(v for k, v in self.as_dict().items() if k != "steps")


class ChaosEngine:
    """Seeded lifecycle churn over a hypervisor's guest pool.

    Usage::

        engine = ChaosEngine(hv, ChaosConfig.from_churn_rate(0.2),
                             seed=42, catalog=tb.catalog)
        engine.step()        # once per checking cycle
        engine.trace         # the full churn history, deterministic

    ``catalog`` supplies the installation media for created guests
    (``Chaos1``, ``Chaos2``, ...); without one, ``create_rate`` is
    effectively zero. Like :class:`FaultInjector`, the engine
    advertises itself as ``hypervisor.chaos_engine`` so the
    observability bridge can publish churn counters without new
    plumbing.
    """

    def __init__(self, hypervisor: Hypervisor,
                 config: ChaosConfig | None = None, *,
                 seed: int | None = None,
                 catalog: dict[str, DriverBlueprint] | None = None,
                 os_flavor: str = "xp-sp2") -> None:
        self.hv = hypervisor
        self.config = config or ChaosConfig()
        self.seed = derive_seed(seed, "chaos-engine")
        self.rng = make_rng(self.seed)
        self.catalog = catalog
        self.os_flavor = os_flavor
        self.stats = ChaosStats()
        #: every event ever applied, in order — the churn trace
        self.trace: list[ChaosEvent] = []
        self._pause_until: dict[str, float] = {}
        self._migrate_until: dict[str, float] = {}
        self._created = 0
        hypervisor.chaos_engine = self  # type: ignore[attr-defined]

    # -- bookkeeping -------------------------------------------------------

    def _record(self, kind: str, vm: str,
                events: list[ChaosEvent]) -> None:
        event = ChaosEvent(self.hv.clock.now, kind, vm)
        self.trace.append(event)
        events.append(event)

    def _targets(self, name: str) -> bool:
        only = self.config.only_domains
        return only is None or name in only

    def _pool_size(self) -> int:
        return len(self.hv.guests())

    # -- the step ----------------------------------------------------------

    def step(self) -> list[ChaosEvent]:
        """Apply one round of churn; returns the events of this step."""
        cfg = self.config
        now = self.hv.clock.now
        events: list[ChaosEvent] = []
        self.stats.steps += 1

        # 1. close due windows (sorted: deterministic under dict churn)
        for name in sorted(self._pause_until):
            if now >= self._pause_until[name]:
                del self._pause_until[name]
                if self._try(self.hv.unpause, name):
                    self.stats.unpauses += 1
                    self._record("unpause", name, events)
        for name in sorted(self._migrate_until):
            if now >= self._migrate_until[name]:
                del self._migrate_until[name]
                if self._try(self.hv.migrate_finish, name):
                    self.stats.migrations_finished += 1
                    self._record("migrate-finish", name, events)

        # 2. one draw per RUNNING guest, in creation order
        for domain in list(self.hv.guests()):
            if domain.state is not DomainState.RUNNING:
                continue
            if not self._targets(domain.name):
                continue
            u = float(self.rng.random())
            edge = cfg.reboot_rate
            if u < edge:
                self.hv.reboot(domain.name)
                self.stats.reboots += 1
                self._record("reboot", domain.name, events)
                continue
            edge += cfg.pause_rate
            if u < edge:
                self.hv.pause(domain.name)
                self._pause_until[domain.name] = now + cfg.pause_duration
                self.stats.pauses += 1
                self._record("pause", domain.name, events)
                continue
            edge += cfg.migrate_rate
            if u < edge:
                self.hv.migrate_start(domain.name)
                self._migrate_until[domain.name] = \
                    now + cfg.migrate_duration
                self.stats.migrations += 1
                self._record("migrate-start", domain.name, events)
                continue
            edge += cfg.destroy_rate
            if u < edge and self._pool_size() > cfg.min_pool:
                self.hv.destroy(domain.name)
                self._pause_until.pop(domain.name, None)
                self._migrate_until.pop(domain.name, None)
                self.stats.destroys += 1
                self._record("destroy", domain.name, events)

        # 3. one pool-growth draw per step
        if cfg.create_rate and float(self.rng.random()) < cfg.create_rate \
                and self.catalog is not None \
                and self._pool_size() < cfg.max_pool:
            name = self.create_guest()
            self._record("create", name, events)

        return events

    def create_guest(self, name: str | None = None,
                     catalog: dict[str, DriverBlueprint] | None = None,
                     ) -> str:
        """Boot a fresh clone into the pool (``ChaosN`` by default).

        Exposed separately from :meth:`step` so scenarios can admit a
        specific guest — e.g. an *infected* clone joining mid-run — via
        the same deterministic naming and seeding.
        """
        self._created += 1
        if name is None:
            name = f"Chaos{self._created}"
        self.hv.create_guest(
            name, catalog if catalog is not None else self.catalog,
            seed=derive_seed(self.seed, "chaos-guest", name),
            os_flavor=self.os_flavor)
        self.stats.creates += 1
        return name

    @staticmethod
    def _try(op, name: str) -> bool:
        """Apply a window-closing op, tolerating a vanished domain."""
        try:
            op(name)
        except (DomainNotFound, DomainStateError):
            return False
        return True
