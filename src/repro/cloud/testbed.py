"""The experimental cloud: the paper's §V-A testbed in one call.

"a Quad Core i7 (2.67 GHz * 8) server with HyperThreading enabled and
18 GB of RAM … 15 VM clones (DomU: Dom1–Dom15) in Xen from a single
32-bit Windows XP (SP2) installation"

:func:`build_testbed` assembles exactly that: one hypervisor with the
8-logical-CPU model, a shared driver catalog built once (the "single
installation"), N cloned guests named ``Dom1..DomN``, and the OS
profile extracted from the first clone. Infected variants of the
catalog can be supplied per-VM to stage the E1–E4 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..guest.catalog import build_catalog
from ..hypervisor.scheduler import CpuModel
from ..hypervisor.xen import Hypervisor
from ..pe.builder import DriverBlueprint
from ..vmi.symbols import OSProfile

__all__ = ["Testbed", "build_testbed", "PAPER_VM_COUNT"]

#: The paper instantiates 15 clones.
PAPER_VM_COUNT = 15


@dataclass
class Testbed:
    """A built cloud: hypervisor + clones + shared catalog + profile."""

    hypervisor: Hypervisor
    catalog: dict[str, DriverBlueprint]
    profile: OSProfile
    vm_names: list[str] = field(default_factory=list)

    @property
    def clock(self):
        return self.hypervisor.clock

    def guest(self, name: str):
        return self.hypervisor.domain(name)

    def set_guest_loads(self, cpu: float, vms: list[str] | None = None) -> None:
        """Set CPU demand on guests (0 = idle, 1 = HeavyLoad)."""
        for name in (vms or self.vm_names):
            self.hypervisor.domain(name).set_load(cpu=cpu)


def build_testbed(n_vms: int = PAPER_VM_COUNT, *, seed: int | None = None,
                  cpu: CpuModel | None = None,
                  os_flavor: str = "xp-sp2",
                  infected: dict[str, dict[str, DriverBlueprint]] | None = None,
                  ) -> Testbed:
    """Build the cloud.

    ``infected`` maps VM name → replacement blueprints by module name;
    the named VM boots with those modules swapped in (the paper's
    "manually infect a module, restart the VM" procedure). All other
    VMs boot the pristine catalog.
    """
    if n_vms < 1:
        raise ValueError("need at least one guest")
    hv = Hypervisor(cpu=cpu)
    catalog = build_catalog(seed=seed)
    vm_names: list[str] = []
    for i in range(1, n_vms + 1):
        name = f"Dom{i}"
        guest_catalog = catalog
        if infected and name in infected:
            guest_catalog = dict(catalog)
            for mod_name, blueprint in infected[name].items():
                if mod_name not in guest_catalog:
                    raise KeyError(
                        f"{mod_name!r} not in the catalog; cannot infect")
                guest_catalog[mod_name] = blueprint
        hv.create_guest(name, guest_catalog, seed=seed,
                        os_flavor=os_flavor)
        vm_names.append(name)
    profile = OSProfile.from_guest(hv.domain(vm_names[0]).kernel)
    return Testbed(hypervisor=hv, catalog=catalog, profile=profile,
                   vm_names=vm_names)
