"""Fleet-scale sharded control plane: many pools, one scheduler.

The paper's linear Module-Searcher scaling (§V-B) makes a 15-clone
testbed a proof of concept, not a deployment. A cloud runs tens of
thousands of guests across *heterogeneous* images — different OS
versions, different driver sets — and cross-VM voting is only sound
within a population that should be byte-identical. This module supplies
the control plane that makes the jump:

**Sharding.** Every guest hashes to a :class:`ShardKey` — its OS
flavor (the LDR layout it walks) plus a fingerprint of its loaded
module set. VMs sharing a key should agree byte-for-byte, so each
shard is a valid majority-voting pool; ``shard_size`` caps how large
one pool may grow before a sibling shard with the same key is opened.
Each :class:`Shard` owns a scoped :class:`~repro.core.modchecker.ModChecker`
(profile derived from its own members — two LDR layouts cannot share a
profile) and a scoped :class:`~repro.core.daemon.CheckDaemon`, so the
PR 3 breaker/membership machinery holds *per shard*.

**Scheduling.** Shards check concurrently on ``workers`` Dom0 threads.
As in :class:`~repro.core.parallel.ParallelModChecker`, concurrency is
modelled, not threaded: each shard's cycle runs with charges deferred
(:meth:`~repro.hypervisor.xen.Hypervisor.deferred_charges`), the
per-shard costs feed the LPT :func:`~repro.core.parallel.makespan`,
and the simulated clock advances once per fleet round by the makespan
stretched by Dom0 contention. Per-round latency is therefore the
*slowest worker's* path, exactly what a real thread pool would see.

**Quorum borrowing.** Churn can starve a shard below the voting floor
(or a key may only ever hold one VM). Instead of suspending checks,
the starved shard's daemon asks the fleet to lend votable references
from *sibling shards with the same key* — borrowed VMs vote this cycle
but their breakers, warm-up and membership stay home. Small shards
thus reach verdicts by borrowing the majority from their siblings.

**Membership.** The fleet owns placement: new guests are keyed and
placed on :meth:`Fleet.reconcile` (new shards open on demand, emptied
shards retire), while per-VM admit/evict/reboot handling stays in each
shard's daemon. Whole shards can be administratively evicted from and
re-admitted to the checking rotation, preserving their breaker state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.daemon import Alert, CheckDaemon, RoundRobinPolicy
from ..core.health import BreakerConfig
from ..core.modchecker import ModChecker
from ..core.parallel import makespan
from ..errors import InsufficientPool
from ..guest.catalog import build_catalog
from ..hypervisor.scheduler import CpuModel
from ..hypervisor.xen import Hypervisor
from ..obs import NULL_OBS, Observability, record_fleet_cycle
from ..pe.builder import DriverBlueprint
from ..vmi.symbols import OSProfile

__all__ = ["ShardKey", "shard_key_for", "Shard", "Fleet", "FleetStats",
           "FleetCycleReport", "FleetTestbed", "build_fleet_testbed",
           "FLEET_VARIANTS"]


@dataclass(frozen=True, order=True)
class ShardKey:
    """What makes two guests comparable: layout + module population."""

    os_flavor: str
    fingerprint: str

    def __str__(self) -> str:
        return f"{self.os_flavor}/{self.fingerprint[:8]}"


def shard_key_for(domain) -> ShardKey:
    """Key a guest by OS flavor and loaded-module-set fingerprint.

    The fingerprint hashes the sorted module *names*: guests running
    the same driver set belong in one voting pool even if a module was
    (legitimately) relocated. Content differences within a pool are
    precisely what the checker is for — they must not split the pool.
    """
    kernel = domain.kernel
    digest = hashlib.md5(
        "\n".join(sorted(kernel.modules)).encode()).hexdigest()
    return ShardKey(os_flavor=kernel.os_flavor, fingerprint=digest)


@dataclass
class Shard:
    """One voting pool: a scoped checker + daemon over its members."""

    name: str
    key: ShardKey
    checker: ModChecker
    daemon: CheckDaemon
    members: set[str] = field(default_factory=set)
    #: administratively in the checking rotation (``Fleet.evict_shard``
    #: clears this; breaker/membership state survives for re-admission)
    admitted: bool = True

    def member_names(self) -> list[str]:
        return sorted(self.members)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class FleetStats:
    """Cumulative fleet counters (never reset; survive shard retirement)."""

    cycles: int = 0
    checks_total: int = 0
    vm_checks_total: int = 0
    borrowed_refs_total: int = 0
    alerts_total: int = 0
    #: terminal remediation outcomes summed over every shard daemon
    #: (only nonzero when ``checker_kwargs`` enables a repair policy)
    repairs_verified_total: int = 0
    repairs_failed_total: int = 0
    repairs_quarantined_total: int = 0
    #: shard lifecycle events: created / retired / admitted / evicted
    shard_events: dict[str, int] = field(default_factory=dict)
    #: per-VM membership events summed over every shard daemon
    #: (admit / evict / reboot) — the fleet publishes these because
    #: scoped daemons must not fight over the shared counter series
    membership_events: dict[str, int] = field(default_factory=dict)
    #: simulated makespan of each fleet round's shard work
    cycle_seconds: list[float] = field(default_factory=list)
    #: total simulated time spent inside shard work (sum of makespans)
    busy_seconds: float = 0.0

    def note_shard_event(self, event: str) -> None:
        self.shard_events[event] = self.shard_events.get(event, 0) + 1

    @property
    def checks_per_sec(self) -> float:
        """Sustained per-VM check throughput over the busy time."""
        if not self.busy_seconds:
            return 0.0
        return self.vm_checks_total / self.busy_seconds

    @property
    def p99_cycle_seconds(self) -> float:
        """99th-percentile simulated fleet-round makespan."""
        if not self.cycle_seconds:
            return 0.0
        ordered = sorted(self.cycle_seconds)
        index = max(0, -(-99 * len(ordered) // 100) - 1)
        return ordered[index]


@dataclass(frozen=True)
class FleetCycleReport:
    """What one fleet round did, for callers and the CLI."""

    cycle: int
    #: simulated makespan of this round's shard work (excl. interval)
    duration: float
    #: (shard name, alert) for every alert any shard raised this round
    alerts: tuple[tuple[str, Alert], ...]
    shards: int
    vms: int
    borrowed: int
    #: verified self-heals this round (``repaired`` alert kind)
    repaired: int = 0


class Fleet:
    """Sharded checking service over one hypervisor's guest pool."""

    def __init__(self, hypervisor: Hypervisor, *,
                 shard_size: int = 64,
                 workers: int = 8,
                 interval: float = 60.0,
                 quorum_floor: int = 2,
                 carve: bool = False,
                 borrow: bool = True,
                 breaker: BreakerConfig | None = None,
                 chaos=None,
                 obs: Observability = NULL_OBS,
                 per_cycle_modules: int = 1,
                 pool_mode: str = "canonical",
                 checker_kwargs: dict | None = None,
                 slo=None) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.hv = hypervisor
        self.shard_size = shard_size
        self.workers = workers
        self.interval = interval
        self.quorum_floor = quorum_floor
        self.carve = carve
        #: lend sibling references to quorum-starved shards
        self.borrow = borrow
        self.breaker = breaker
        #: global chaos engine, stepped once per fleet round (never
        #: handed to shard daemons — churn is fleet-wide)
        self.chaos = chaos
        self.obs = obs
        self.per_cycle_modules = per_cycle_modules
        #: canonical (O(t) clustering) by default: a pairwise vote over
        #: a 64-member shard costs 2k comparisons for the same verdict
        self.pool_mode = pool_mode
        #: extra kwargs for every shard's ModChecker (event_driven=...,
        #: retry=..., flush_caches_each_round=..., ...)
        self.checker_kwargs = dict(checker_kwargs or {})
        #: optional :class:`~repro.obs.slo.SloEngine`. The fleet — not
        #: the shard daemons — feeds it: shard clocks are frozen under
        #: deferred charging, so per-shard cycle latency comes from the
        #: deferred cost accumulator (stretched by Dom0 contention),
        #: scoped by shard name so one burning shard cannot hide inside
        #: a healthy fleet average.
        self.slo = slo
        #: the last :class:`~repro.obs.slo.SloStatus` evaluated (None
        #: until the first round with an engine attached)
        self.last_slo_status = None
        self.shards: dict[str, Shard] = {}
        #: VM name -> owning shard name (the fleet's placement truth)
        self._assignment: dict[str, str] = {}
        self.stats = FleetStats()
        self.cycles_run = 0
        #: every alert any shard ever raised, as (shard name, alert)
        self.alert_log: list[tuple[str, Alert]] = []
        self._shard_seq: dict[ShardKey, int] = {}
        #: counters folded in from retired shards so fleet totals never
        #: run backwards (same idiom as ModChecker._vmi_stats_base)
        self._retired = {"checks": 0, "vm_checks": 0, "borrows": 0,
                         "repairs_verified": 0, "repairs_failed": 0,
                         "repairs_quarantined": 0}
        self._retired_membership: dict[str, int] = {}
        self.reconcile()

    # -- placement -----------------------------------------------------------

    def _shards_sorted(self) -> list[Shard]:
        return [self.shards[name] for name in sorted(self.shards)]

    def shard_of(self, vm: str) -> Shard | None:
        name = self._assignment.get(vm)
        return self.shards.get(name) if name is not None else None

    def _note_shard_event(self, event: str, shard: Shard) -> None:
        self.stats.note_shard_event(event)
        events = self.obs.events
        if events.enabled:
            events.emit("shard.changed", event=event, shard=shard.name,
                        key=str(shard.key), size=shard.size)

    def _open_shard(self, key: ShardKey, first_domain) -> Shard:
        seq = self._shard_seq.get(key, 0) + 1
        self._shard_seq[key] = seq
        name = f"{key}#{seq}"
        profile = OSProfile.from_guest(first_domain.kernel)
        shard = Shard(name=name, key=key, checker=None,  # type: ignore
                      daemon=None)                       # type: ignore
        shard.checker = ModChecker(
            self.hv, profile, obs=self.obs,
            members=shard.member_names, **self.checker_kwargs)
        shard.daemon = CheckDaemon(
            shard.checker,
            RoundRobinPolicy(per_cycle=self.per_cycle_modules),
            interval=self.interval, carve=self.carve,
            quorum_floor=self.quorum_floor, breaker=self.breaker,
            scope=shard.member_names,
            lender=(lambda needed, exclude, shard=shard:
                    self.borrow_references(shard, needed, exclude)),
            advance_clock=False, pool_mode=self.pool_mode)
        self.shards[name] = shard
        self._note_shard_event("created", shard)
        return shard

    def _retire_shard(self, name: str) -> None:
        shard = self.shards.pop(name)
        self._fold_counters(shard)
        self._note_shard_event("retired", shard)

    def _fold_counters(self, shard: Shard) -> None:
        self._retired["checks"] += shard.daemon.checks_run
        self._retired["vm_checks"] += shard.daemon.vm_checks_run
        self._retired["borrows"] += shard.daemon.borrowed_refs
        self._retired["repairs_verified"] += shard.daemon.repairs_verified
        self._retired["repairs_failed"] += shard.daemon.repairs_failed
        self._retired["repairs_quarantined"] += \
            shard.daemon.repairs_quarantined
        for _, event, _ in shard.daemon.membership_log:
            self._retired_membership[event] = \
                self._retired_membership.get(event, 0) + 1

    def _place(self, vm: str, domain) -> Shard:
        key = shard_key_for(domain)
        target = None
        for shard in self._shards_sorted():
            if shard.key == key and shard.size < self.shard_size:
                target = shard
                break
        if target is None:
            target = self._open_shard(key, domain)
        target.members.add(vm)
        self._assignment[vm] = target.name
        return target

    def reconcile(self) -> None:
        """Sync placement with the hypervisor's guest pool.

        Vanished guests leave their shard (the shard daemon then evicts
        them from its breakers on its next cycle); new guests are keyed
        and placed, opening a shard when no same-key shard has room;
        shards emptied by churn retire. Per-VM warm-up, reboot handling
        and breaker state remain the owning daemon's business.
        """
        current = {d.name: d for d in self.hv.guests()}
        for vm in sorted(set(self._assignment) - set(current)):
            shard = self.shard_of(vm)
            if shard is not None:
                shard.members.discard(vm)
            del self._assignment[vm]
        for vm in sorted(set(current) - set(self._assignment)):
            self._place(vm, current[vm])
        for name in [s.name for s in self._shards_sorted() if not s.size]:
            self._retire_shard(name)

    # -- shard administration ------------------------------------------------

    def evict_shard(self, name: str) -> None:
        """Pull a whole shard from the checking rotation.

        Members stay placed (so reconcile does not re-scatter them) and
        the daemon keeps its breaker/membership state for re-admission.
        """
        shard = self.shards[name]
        if shard.admitted:
            shard.admitted = False
            self._note_shard_event("evicted", shard)

    def admit_shard(self, name: str) -> None:
        """Return an evicted shard to the checking rotation."""
        shard = self.shards[name]
        if not shard.admitted:
            shard.admitted = True
            self._note_shard_event("admitted", shard)

    # -- quorum borrowing ----------------------------------------------------

    def borrow_references(self, shard: Shard, needed: int,
                          exclude: list[str]) -> list[str]:
        """Lend votable same-key sibling VMs to a starved shard."""
        if not self.borrow:
            return []
        taken: list[str] = []
        unavailable = set(exclude)
        for other in self._shards_sorted():
            if other is shard or not other.admitted \
                    or other.key != shard.key:
                continue
            for vm in other.daemon.votable_vms():
                if vm in unavailable:
                    continue
                taken.append(vm)
                unavailable.add(vm)
                if len(taken) >= needed:
                    return taken
        return taken

    # -- the fleet round -----------------------------------------------------

    def _refresh_totals(self) -> None:
        self.stats.checks_total = self._retired["checks"] + sum(
            s.daemon.checks_run for s in self.shards.values())
        self.stats.vm_checks_total = self._retired["vm_checks"] + sum(
            s.daemon.vm_checks_run for s in self.shards.values())
        self.stats.borrowed_refs_total = self._retired["borrows"] + sum(
            s.daemon.borrowed_refs for s in self.shards.values())
        self.stats.repairs_verified_total = \
            self._retired["repairs_verified"] + sum(
                s.daemon.repairs_verified for s in self.shards.values())
        self.stats.repairs_failed_total = \
            self._retired["repairs_failed"] + sum(
                s.daemon.repairs_failed for s in self.shards.values())
        self.stats.repairs_quarantined_total = \
            self._retired["repairs_quarantined"] + sum(
                s.daemon.repairs_quarantined for s in self.shards.values())
        membership = dict(self._retired_membership)
        for shard in self.shards.values():
            for _, event, _ in shard.daemon.membership_log:
                membership[event] = membership.get(event, 0) + 1
        self.stats.membership_events = membership

    def run_cycle(self) -> FleetCycleReport:
        """One fleet round: churn, placement, concurrent shard cycles.

        Every admitted shard runs one daemon cycle with its Dom0 costs
        deferred; the clock then advances once by the LPT makespan of
        the per-shard costs over ``workers`` threads — stretched by the
        Dom0 contention factor, which the deferred accumulator records
        raw — plus the scheduling interval.
        """
        clock = self.hv.clock
        events = self.obs.events
        if self.chaos is not None:
            for chaos_event in self.chaos.step():
                if events.enabled:
                    events.emit("chaos.applied", kind=chaos_event.kind,
                                vm=chaos_event.vm)
                if chaos_event.kind == "migrate-finish":
                    shard = self.shard_of(chaos_event.vm)
                    if shard is not None:
                        shard.checker.invalidate_manifests(
                            chaos_event.vm, reason="migration")
        self.reconcile()

        borrowed_before = self._retired["borrows"] + sum(
            s.daemon.borrowed_refs for s in self.shards.values())
        costs: list[float] = []
        ran: list[Shard] = []
        alerts: list[tuple[str, Alert]] = []
        with self.hv.deferred_charges() as acc:
            for shard in self._shards_sorted():
                if not shard.admitted:
                    continue
                ran.append(shard)
                before = acc.total
                try:
                    for alert in shard.daemon.run_cycle():
                        alerts.append((shard.name, alert))
                except InsufficientPool:
                    # every member unreachable: the shard's breakers
                    # and the next reconcile sort it out
                    pass
                costs.append(acc.total - before)
        factor = self.hv.scheduler.dom0_slowdown(
            self.hv.guest_demand(), dom0_threads=self.workers)
        span = makespan(costs, self.workers) * factor
        clock.advance(span + self.interval)

        self._refresh_totals()
        self.stats.cycles += 1
        self.stats.cycle_seconds.append(span)
        self.stats.busy_seconds += span
        self.stats.alerts_total += len(alerts)
        self.alert_log.extend(alerts)
        borrowed = self.stats.borrowed_refs_total - borrowed_before
        admitted = [s for s in self._shards_sorted() if s.admitted]
        report = FleetCycleReport(
            cycle=self.cycles_run, duration=span, alerts=tuple(alerts),
            shards=len(admitted), vms=sum(s.size for s in admitted),
            borrowed=borrowed,
            repaired=sum(1 for _, a in alerts if a.kind == "repaired"))
        if events.enabled:
            events.emit("fleet.cycle", cycle=self.cycles_run,
                        shards=report.shards, vms=report.vms,
                        alerts=len(alerts), duration=span,
                        borrowed=borrowed)
        if self.slo is not None:
            now = clock.now
            for shard, cost in zip(ran, costs):
                # a shard's own simulated latency this round: its raw
                # deferred Dom0 cost under the contention stretch
                self.slo.record(shard.name, "cycle_latency",
                                cost * factor, now)
                if shard.size:
                    votable = len(shard.daemon.votable_vms())
                    self.slo.record(shard.name, "coverage",
                                    votable / shard.size, now)
            for shard_name, alert in alerts:
                if alert.kind in ("integrity", "hidden-module"):
                    # visible at round end; raisable at round start —
                    # the makespan bounds the detection delay
                    self.slo.record(shard_name, "detection_latency",
                                    span, now)
            self.last_slo_status = self.slo.evaluate(now)
        if self.obs.metrics.enabled:
            record_fleet_cycle(
                self.obs.metrics, self.stats,
                shard_sizes={s.name: s.size for s in admitted},
                cycle_seconds=span)
        self.cycles_run += 1
        return report

    def run(self, cycles: int) -> list[FleetCycleReport]:
        return [self.run_cycle() for _ in range(cycles)]


# -- the fleet testbed -------------------------------------------------------

#: Heterogeneous image variants: (os_flavor, loaded module set). Every
#: set carries the kernel + HAL (everything imports from the kernel)
#: plus a distinguishing driver, giving 4 shard keys across 2 LDR
#: layouts — small images on purpose, so a 10k-guest fleet builds in
#: seconds instead of minutes.
FLEET_VARIANTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("xp-sp2", ("ntoskrnl.exe", "hal.dll", "disk.sys")),
    ("xp-sp2", ("ntoskrnl.exe", "hal.dll", "http.sys")),
    ("win2003", ("ntoskrnl.exe", "hal.dll", "disk.sys")),
    ("win2003", ("ntoskrnl.exe", "hal.dll", "dummy.sys")),
)


@dataclass
class FleetTestbed:
    """A heterogeneous cloud: one hypervisor, many image variants."""

    hypervisor: Hypervisor
    catalog: dict[str, DriverBlueprint]
    vm_names: list[str] = field(default_factory=list)

    @property
    def clock(self):
        return self.hypervisor.clock


def build_fleet_testbed(n_vms: int, *, seed: int | None = None,
                        cpu: CpuModel | None = None,
                        variants: tuple[tuple[str, tuple[str, ...]], ...]
                        = FLEET_VARIANTS,
                        infected: dict[str, dict[str, DriverBlueprint]]
                        | None = None) -> FleetTestbed:
    """Build a fleet-scale cloud of ``n_vms`` heterogeneous guests.

    Guests round-robin across ``variants``; blueprints come from one
    shared catalog, so two guests loading the same module agree
    byte-for-byte (the voting invariant). ``infected`` swaps named
    blueprints on named VMs, as in :func:`build_testbed`.
    """
    if n_vms < 1:
        raise ValueError("need at least one guest")
    hv = Hypervisor(cpu=cpu)
    catalog = build_catalog(seed=seed)
    vm_names: list[str] = []
    for i in range(1, n_vms + 1):
        name = f"Dom{i}"
        flavor, modules = variants[(i - 1) % len(variants)]
        guest_catalog = {m: catalog[m] for m in modules}
        if infected and name in infected:
            for mod_name, blueprint in infected[name].items():
                if mod_name not in guest_catalog:
                    raise KeyError(
                        f"{mod_name!r} not in {name}'s variant; "
                        f"cannot infect")
                guest_catalog[mod_name] = blueprint
        hv.create_guest(name, guest_catalog, seed=seed, os_flavor=flavor)
        vm_names.append(name)
    return FleetTestbed(hypervisor=hv, catalog=catalog, vm_names=vm_names)
