"""Cloud testbed assembly (the paper's experimental environment)."""

from .chaos import ChaosConfig, ChaosEngine, ChaosEvent, ChaosStats
from .fleet import (FLEET_VARIANTS, Fleet, FleetCycleReport, FleetStats,
                    FleetTestbed, Shard, ShardKey, build_fleet_testbed,
                    shard_key_for)
from .scenarios import (ChaosScenario, StagedScenario, stage_attack,
                        stage_chaos, stage_experiment, stage_hidden_module)
from .testbed import PAPER_VM_COUNT, Testbed, build_testbed

__all__ = ["PAPER_VM_COUNT", "Testbed", "build_testbed",
           "StagedScenario", "stage_attack", "stage_experiment",
           "stage_hidden_module", "ChaosConfig", "ChaosEngine",
           "ChaosEvent", "ChaosStats", "ChaosScenario", "stage_chaos",
           "Fleet", "FleetCycleReport", "FleetStats", "FleetTestbed",
           "Shard", "ShardKey", "shard_key_for", "build_fleet_testbed",
           "FLEET_VARIANTS"]
