"""Cloud testbed assembly (the paper's experimental environment)."""

from .chaos import ChaosConfig, ChaosEngine, ChaosEvent, ChaosStats
from .scenarios import (ChaosScenario, StagedScenario, stage_attack,
                        stage_chaos, stage_experiment, stage_hidden_module)
from .testbed import PAPER_VM_COUNT, Testbed, build_testbed

__all__ = ["PAPER_VM_COUNT", "Testbed", "build_testbed",
           "StagedScenario", "stage_attack", "stage_experiment",
           "stage_hidden_module", "ChaosConfig", "ChaosEngine",
           "ChaosEvent", "ChaosStats", "ChaosScenario", "stage_chaos"]
