"""Figure-data export: CSV/JSON series and Chrome traces.

The harness prints ASCII; anyone regenerating the paper's figures in
matplotlib/gnuplot wants the raw series. These helpers write
column-oriented CSV and a JSON bundle with experiment metadata, and
read them back (round-trip tested) so downstream notebooks can diff
runs. :func:`write_chrome_trace` additionally serialises a
:class:`~repro.obs.trace.Tracer`'s spans in the Chrome trace-event
format, loadable in ``about:tracing`` / Perfetto for a flame view of
where the simulated time went.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SeriesBundle", "write_csv", "read_csv", "write_json",
           "read_json", "chrome_trace_events", "write_chrome_trace"]


@dataclass
class SeriesBundle:
    """Named columns of equal length plus free-form metadata."""

    name: str
    columns: dict[str, list] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def add_column(self, label: str, values: list) -> None:
        if self.columns:
            expected = len(next(iter(self.columns.values())))
            if len(values) != expected:
                raise ValueError(
                    f"column {label!r} has {len(values)} rows, "
                    f"expected {expected}")
        self.columns[label] = list(values)

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def rows(self) -> list[tuple]:
        labels = list(self.columns)
        return list(zip(*(self.columns[label] for label in labels)))


def write_csv(bundle: SeriesBundle, path: str | Path) -> Path:
    """Write one bundle as a CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(bundle.columns))
        for row in bundle.rows():
            writer.writerow(row)
    return path


def read_csv(path: str | Path, name: str | None = None) -> SeriesBundle:
    """Read a CSV written by :func:`write_csv` (numbers parsed back)."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        columns: dict[str, list] = {label: [] for label in header}
        for row in reader:
            for label, cell in zip(header, row):
                columns[label].append(_parse_cell(cell))
    return SeriesBundle(name=name or path.stem, columns=columns)


def _parse_cell(cell: str):
    for caster in (int, float):
        try:
            return caster(cell)
        except ValueError:
            continue
    return cell


def write_json(bundles: list[SeriesBundle], path: str | Path) -> Path:
    """Write several bundles as one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {b.name: {"columns": b.columns, "meta": b.meta} for b in bundles}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


def read_json(path: str | Path) -> list[SeriesBundle]:
    doc = json.loads(Path(path).read_text())
    return [SeriesBundle(name=name, columns=body["columns"],
                         meta=body.get("meta", {}))
            for name, body in sorted(doc.items())]


# -- Chrome trace-event export ------------------------------------------

#: Simulated seconds -> trace-event microseconds.
_TRACE_US = 1e6


def chrome_trace_events(spans, *, pid: int = 1, tid: int = 1) -> list[dict]:
    """Render finished spans as Chrome "X" (complete) trace events.

    Timestamps and durations are simulated-clock microseconds; span
    attributes land in ``args`` (with the span/parent ids, so tooling
    can rebuild the nesting exactly rather than inferring it from
    containment).
    """
    events = []
    for span in spans:
        if not span.finished:
            continue
        args = {str(k): v for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * _TRACE_US,
            "dur": span.duration * _TRACE_US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    return events


def write_chrome_trace(tracer, path: str | Path, *,
                       metadata: dict | None = None) -> Path:
    """Write a tracer's spans as a Chrome trace-event JSON file.

    The document is the object form (``{"traceEvents": [...]}``), which
    both ``about:tracing`` and Perfetto load, with run metadata carried
    in ``otherData``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "traceEvents": chrome_trace_events(tracer.spans),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", **(metadata or {})},
    }
    path.write_text(json.dumps(doc, indent=1, sort_keys=True))
    return path
