"""Series statistics for validating the experiment shapes.

The reproduction criteria are qualitative shapes, so these helpers turn
"looks linear" / "has a knee at 8" / "no perturbation" into numbers the
tests can assert: least-squares fits with R², growth-ratio knee
detection, and simple two-sample comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "linear_fit", "detect_knee", "growth_ratios",
           "is_monotonic"]


@dataclass(frozen=True)
class LinearFit:
    """y ≈ slope·x + intercept with goodness of fit."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def linear_fit(xs, ys) -> LinearFit:
    """Least-squares line through (xs, ys)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(float(slope), float(intercept), r2)


def growth_ratios(ys) -> np.ndarray:
    """Successive ratios y[i+1]/y[i] (NaN where y[i] == 0)."""
    y = np.asarray(ys, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(y[:-1] != 0, y[1:] / y[:-1], np.nan)


def detect_knee(xs, ys, *, window: int = 2, threshold: float = 1.5) -> float | None:
    """x position where local slope jumps by ``threshold`` × the early slope.

    Compares the slope over each trailing ``window`` against the slope
    of the first ``window`` points; returns the first x where the ratio
    exceeds ``threshold`` — the Fig. 8 "sudden nonlinear growth" point.
    Returns None when the series stays (near-)linear.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2 * window + 1:
        return None
    base = linear_fit(x[:window + 1], y[:window + 1]).slope
    if base <= 0:
        base = max(base, 1e-12)
    for i in range(window, x.size - window):
        local = linear_fit(x[i:i + window + 1], y[i:i + window + 1]).slope
        if local > threshold * base:
            return float(x[i])
    return None


def is_monotonic(ys, *, strict: bool = False) -> bool:
    """True when the series never decreases (or strictly increases)."""
    y = np.asarray(ys, dtype=float)
    d = np.diff(y)
    return bool((d > 0).all()) if strict else bool((d >= 0).all())
