"""Result post-processing: fits, knee detection, ASCII rendering."""

from .export import (SeriesBundle, read_csv, read_json, write_csv,
                     write_json)
from .stats import (LinearFit, detect_knee, growth_ratios, is_monotonic,
                    linear_fit)
from .tables import format_seconds, render_series, render_table

__all__ = [
    "SeriesBundle", "read_csv", "read_json", "write_csv", "write_json",
    "LinearFit", "detect_knee", "growth_ratios", "is_monotonic",
    "linear_fit",
    "format_seconds", "render_series", "render_table",
]
