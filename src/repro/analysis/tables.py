"""ASCII rendering of experiment tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(value: float) -> str:
    """Human-scale formatting for simulated durations."""
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, title: str | None = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(xs: Sequence[float], ys: Sequence[float], *,
                  title: str = "", width: int = 60,
                  x_label: str = "x", y_label: str = "y") -> str:
    """A crude horizontal bar chart: one bar per (x, y) point."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys differ in length")
    top = max(ys) if ys else 0.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>8} | {y_label}")
    for x, y in zip(xs, ys):
        bar = "#" * (int(round(width * y / top)) if top > 0 else 0)
        lines.append(f"{x:>8g} | {bar} {y:.4g}")
    return "\n".join(lines)
