"""Xen-like VMM: domains, contention scheduler, simulated clock."""

from .clock import SimClock
from .domain import Domain, DomainKind, DomainState
from .scheduler import ContentionScheduler, CpuModel
from .xen import Hypervisor

__all__ = [
    "SimClock",
    "Domain", "DomainKind", "DomainState",
    "ContentionScheduler", "CpuModel",
    "Hypervisor",
]
