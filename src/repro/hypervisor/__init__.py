"""Xen-like VMM: domains, contention scheduler, simulated clock,
fault injection on the introspection surface, write-protection traps."""

from .clock import SimClock
from .domain import Domain, DomainKind, DomainState
from .faults import FaultConfig, FaultInjector, FaultStats
from .scheduler import ContentionScheduler, CpuModel
from .traps import TrapQueue, TrapStats, WriteTrap
from .xen import Hypervisor

__all__ = [
    "SimClock",
    "Domain", "DomainKind", "DomainState",
    "FaultConfig", "FaultInjector", "FaultStats",
    "ContentionScheduler", "CpuModel",
    "TrapQueue", "TrapStats", "WriteTrap",
    "Hypervisor",
]
