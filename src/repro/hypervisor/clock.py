"""Simulated wall clock.

All ModChecker runtime numbers (Figs. 7–9) are *simulated seconds*
advanced by the cost model through the hypervisor's CPU-contention
scheduler — never host wall-clock — so the experiment harness is
deterministic and hardware-independent. ``pytest-benchmark`` separately
measures the real execution time of the simulation itself.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonically increasing simulated time, in seconds.

    ``on_advance`` callbacks fire after every positive :meth:`advance`
    with the new time — the simulation's only notion of "meanwhile".
    Concurrent guest activity (a racing in-guest writer re-tampering a
    module while dom0 repairs it) hangs off this hook: whenever the
    defender's cost model burns simulated CPU, subscribed adversaries
    get a turn. Callbacks must not advance the clock themselves.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: subscribers called as ``cb(now)`` after each positive advance
        self.on_advance: list = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance time by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by {dt}")
        self._now += dt
        if dt > 0 and self.on_advance:
            for cb in tuple(self.on_advance):
                cb(self._now)
        return self._now

    class _Span:
        """Context manager measuring simulated elapsed time."""

        def __init__(self, clock: "SimClock") -> None:
            self.clock = clock
            self.start = 0.0
            self.elapsed = 0.0

        def __enter__(self) -> "SimClock._Span":
            self.start = self.clock.now
            return self

        def __exit__(self, *exc) -> None:
            self.elapsed = self.clock.now - self.start

    def span(self) -> "_Span":
        """``with clock.span() as s: ...; s.elapsed`` — simulated timing."""
        return SimClock._Span(self)
