"""The hypervisor: Xen-like VMM with an introspection surface.

Provides what the paper's architecture (Fig. 1) requires of Xen:

* domain lifecycle — a privileged Dom0 plus cloned DomU guests;
* a **read-only introspection surface** (``read_guest_frame`` /
  ``guest_cr3``) through which Dom0 maps guest pages, the primitive
  libvmi builds on (``xc_map_foreign_range``);
* CPU accounting — every second of Dom0 work is stretched by the
  credit-scheduler contention model and advanced on the simulated
  clock, which is how guest load degrades ModChecker's runtime (Fig. 8);
* snapshots — the paper's §III discussion notes infected VMs can be
  reverted to clean state; ``snapshot``/``revert`` implement that.

Introspection reads are deliberately *byte-copies of guest frames*:
nothing guest-side is handed to Dom0 as Python objects, so ModChecker
can only learn what a real out-of-VM tool could.
"""

from __future__ import annotations

import copy
import hashlib

from ..errors import DomainNotFound, DomainStateError, DomainUnreachable
from ..guest.kernel import GuestKernel
from ..pe.builder import DriverBlueprint
from ..rng import derive_seed
from .clock import SimClock
from .domain import Domain, DomainKind, DomainState
from .scheduler import ContentionScheduler, CpuModel

__all__ = ["Hypervisor"]


class Hypervisor:
    """A booted VMM: Dom0 + guests + clock + scheduler."""

    def __init__(self, *, cpu: CpuModel | None = None,
                 clock: SimClock | None = None) -> None:
        self.cpu = cpu or CpuModel()
        self.clock = clock or SimClock()
        self.scheduler = ContentionScheduler(self.cpu)
        self._domains: dict[int, Domain] = {}
        self._by_name: dict[str, int] = {}
        self._next_domid = 0
        self._snapshots: dict[int, dict] = {}
        self.dom0 = self._create(Domain(
            domid=self._take_domid(), name="Dom0", kind=DomainKind.DOM0,
            vcpus=1))
        #: cumulative Dom0 CPU-seconds actually consumed (pre-stretch)
        self.dom0_cpu_seconds = 0.0

    # -- lifecycle -----------------------------------------------------------------

    def _take_domid(self) -> int:
        domid = self._next_domid
        self._next_domid += 1
        return domid

    def _create(self, domain: Domain) -> Domain:
        if domain.name in self._by_name:
            raise DomainStateError(f"domain {domain.name!r} already exists")
        self._domains[domain.domid] = domain
        self._by_name[domain.name] = domain.domid
        return domain

    def create_guest(self, name: str,
                     catalog: dict[str, DriverBlueprint] | None = None,
                     *, seed: int | None = None, vcpus: int = 1,
                     ram_bytes: int | None = None,
                     os_flavor: str = "xp-sp2") -> Domain:
        """Clone-and-boot a guest from the catalog (the paper's DomU).

        Per-guest randomisation (the seed) only affects module load
        addresses — the module *files* come from the shared catalog, so
        guests are genuine clones of one installation.
        """
        kwargs = {} if ram_bytes is None else {"ram_bytes": ram_bytes}
        kernel = GuestKernel(name, seed=derive_seed(seed, "guest", name),
                             os_flavor=os_flavor, **kwargs)
        kernel.boot(catalog or {})
        return self._create(Domain(
            domid=self._take_domid(), name=name, kind=DomainKind.DOMU,
            vcpus=vcpus, kernel=kernel))

    def domain(self, key: int | str) -> Domain:
        if isinstance(key, str):
            domid = self._by_name.get(key)
            if domid is None:
                raise DomainNotFound(f"no domain named {key!r}")
            return self._domains[domid]
        try:
            return self._domains[key]
        except KeyError:
            raise DomainNotFound(f"no domid {key}") from None

    def guests(self) -> list[Domain]:
        """All DomU domains, in creation order."""
        return [d for d in self._domains.values() if d.is_guest]

    def pause(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        if domain.state is DomainState.SHUTDOWN:
            raise DomainStateError(f"{domain.name} is shut down")
        domain.state = DomainState.PAUSED

    def unpause(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.state is DomainState.SHUTDOWN:
            raise DomainStateError(f"{domain.name} is shut down")
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        domain.state = DomainState.RUNNING

    def reboot(self, key: int | str) -> Domain:
        """Power-cycle a guest: modules reload at fresh bases.

        The guest kernel rebuilds its memory from its own disk (see
        :meth:`GuestKernel.reboot`), bumping the domain's
        ``boot_generation`` so cached introspection sessions know to
        re-attach. A paused guest may be rebooted (it comes back
        RUNNING); one that is mid-migration may not.
        """
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("cannot reboot Dom0")
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        assert domain.kernel is not None
        domain.kernel.reboot()
        domain.state = DomainState.RUNNING
        return domain

    def migrate_start(self, key: int | str) -> None:
        """Begin a live migration: the domain enters a read blackout."""
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("cannot migrate Dom0")
        if domain.state is not DomainState.RUNNING:
            raise DomainStateError(
                f"{domain.name} is {domain.state.value}; only a running "
                f"domain can start migrating")
        domain.state = DomainState.MIGRATING

    def migrate_finish(self, key: int | str) -> None:
        """Complete a live migration: the domain is reachable again."""
        domain = self.domain(key)
        if domain.state is not DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is not migrating")
        domain.state = DomainState.RUNNING

    def destroy(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.kind is DomainKind.DOM0:
            raise DomainStateError("cannot destroy Dom0")
        domain.state = DomainState.SHUTDOWN
        del self._by_name[domain.name]
        del self._domains[domain.domid]

    # -- snapshots (paper §III-B discussion) ------------------------------------------

    def snapshot(self, key: int | str) -> None:
        """Record a full snapshot of the guest: memory frames, disk
        files, and the kernel's bookkeeping (so a revert restores the
        whole machine state, as a VM snapshot does)."""
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("can only snapshot guests")
        kernel = domain.kernel
        assert kernel is not None
        self._snapshots[domain.domid] = {
            "frames": {no: frame.copy()
                       for no, frame in kernel.memory._frames.items()},
            "files": dict(kernel.fs._files),
            "modules": dict(kernel.modules),
            "exports": dict(kernel.loader.export_table),
        }

    def revert(self, key: int | str) -> None:
        """Restore the guest to its snapshot ("flush infections")."""
        domain = self.domain(key)
        snap = self._snapshots.get(domain.domid)
        if snap is None:
            raise DomainStateError(f"no snapshot for {domain.name}")
        kernel = domain.kernel
        assert kernel is not None
        kernel.memory._frames = {
            no: frame.copy() for no, frame in snap["frames"].items()}
        kernel.fs._files = dict(snap["files"])
        kernel.modules = dict(snap["modules"])
        kernel.loader.export_table = dict(snap["exports"])

    # -- introspection surface -----------------------------------------------------

    def guest_cr3(self, key: int | str) -> int:
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError(f"{domain.name} has no guest CR3")
        assert domain.kernel is not None
        return domain.kernel.cr3

    def _introspectable_kernel(self, key: int | str) -> GuestKernel:
        """Resolve the target of a guest read, or fail *consistently*.

        Every read path shares these semantics: a PAUSED domain reads
        fine (its memory is a frozen snapshot); a MIGRATING or SHUTDOWN
        domain — and one that was destroyed outright — raises
        :class:`~repro.errors.DomainUnreachable`, the retryable fault
        the VMI stack already degrades on, never a raw lookup error.
        """
        try:
            domain = self.domain(key)
        except DomainNotFound as exc:
            raise DomainUnreachable(
                f"domain {key!r} is destroyed or was never created") from exc
        if not domain.is_guest:
            raise DomainStateError(f"{domain.name} is not introspectable")
        if not domain.introspectable:
            raise DomainUnreachable(
                f"{domain.name} is {domain.state.value}; guest frames are "
                f"not mapped")
        assert domain.kernel is not None
        return domain.kernel

    def read_guest_frame(self, key: int | str, frame_no: int) -> bytes:
        """Map one guest frame read-only into Dom0 (4 KiB byte copy)."""
        return self._introspectable_kernel(key).memory.read_frame(frame_no)

    def read_guest_physical(self, key: int | str, paddr: int,
                            length: int) -> bytes:
        """Arbitrary physical-range read (libvmi's ``read_pa``)."""
        return self._introspectable_kernel(key).memory.read(paddr, length)

    def checksum_guest_frame(self, key: int | str, frame_no: int) -> bytes:
        """Digest of one guest frame, computed hypervisor-side.

        Models a VMM-assisted checksum hypercall (the trick Patagonix-
        style incremental monitors rely on): the hash runs inside the
        trusted VMM over the frame in place, so Dom0 never pays for a
        foreign mapping or a 4 KiB copy-out — the VMI layer charges
        ``CostModel.page_checksum`` instead of ``page_map``. The bytes
        are still fetched through :meth:`read_guest_frame`, so domain
        lifecycle rules and any installed fault injector apply exactly
        as they do to ordinary reads (a torn frame yields a wrong
        digest, which the manifest layer treats as a page delta).
        """
        return hashlib.md5(self.read_guest_frame(key, frame_no)).digest()

    # -- CPU accounting ---------------------------------------------------------------

    def guest_demand(self) -> float:
        """Summed runnable vCPU demand across all guests."""
        return sum(d.runnable_vcpus for d in self._domains.values()
                   if d.is_guest)

    def charge_dom0(self, cpu_seconds: float) -> float:
        """Account ``cpu_seconds`` of Dom0 work; returns elapsed sim time.

        The work is stretched by the contention factor derived from the
        instantaneous guest load, then advanced on the simulated clock.
        """
        if cpu_seconds < 0:
            raise ValueError("negative work")
        factor = self.scheduler.dom0_slowdown(self.guest_demand())
        elapsed = cpu_seconds * factor
        self.dom0_cpu_seconds += cpu_seconds
        self.clock.advance(elapsed)
        return elapsed

    def deferred_charges(self) -> "_DeferredCharges":
        """Collect Dom0 charges without advancing the clock.

        Used by the parallel checker: per-VM CPU work is gathered
        inside the context, then the caller advances the clock once
        with a parallel-makespan model. ``with hv.deferred_charges()
        as acc: ...; acc.total`` gives the raw CPU-seconds charged.
        """
        return _DeferredCharges(self)


class _DeferredCharges:
    """Context manager that buffers charge_dom0 calls (see above)."""

    def __init__(self, hypervisor: Hypervisor) -> None:
        self.hv = hypervisor
        self.total = 0.0
        self.marks: list[float] = []

    def mark(self) -> None:
        """Record a cut point (e.g. per-VM boundaries)."""
        self.marks.append(self.total)

    def __enter__(self) -> "_DeferredCharges":
        def collect(cpu_seconds: float) -> float:
            if cpu_seconds < 0:
                raise ValueError("negative work")
            self.total += cpu_seconds
            self.hv.dom0_cpu_seconds += cpu_seconds
            return 0.0
        # Shadow the bound method on the instance for the duration.
        self.hv.charge_dom0 = collect  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc) -> None:
        del self.hv.__dict__["charge_dom0"]
