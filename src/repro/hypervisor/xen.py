"""The hypervisor: Xen-like VMM with an introspection surface.

Provides what the paper's architecture (Fig. 1) requires of Xen:

* domain lifecycle — a privileged Dom0 plus cloned DomU guests;
* a **read-only introspection surface** (``read_guest_frame`` /
  ``guest_cr3``) through which Dom0 maps guest pages, the primitive
  libvmi builds on (``xc_map_foreign_range``);
* CPU accounting — every second of Dom0 work is stretched by the
  credit-scheduler contention model and advanced on the simulated
  clock, which is how guest load degrades ModChecker's runtime (Fig. 8);
* snapshots — the paper's §III discussion notes infected VMs can be
  reverted to clean state; ``snapshot``/``revert`` implement that.

Introspection reads are deliberately *byte-copies of guest frames*:
nothing guest-side is handed to Dom0 as Python objects, so ModChecker
can only learn what a real out-of-VM tool could.
"""

from __future__ import annotations

import copy
import hashlib

import numpy as np

from ..errors import (DomainNotFound, DomainStateError, DomainUnreachable,
                      WriteProtectedError)
from ..guest.kernel import GuestKernel
from ..mem.physical import PAGE_SIZE
from ..pe.builder import DriverBlueprint
from ..rng import derive_seed
from .clock import SimClock
from .domain import Domain, DomainKind, DomainState
from .scheduler import ContentionScheduler, CpuModel
from .traps import TrapQueue

__all__ = ["Hypervisor"]


class Hypervisor:
    """A booted VMM: Dom0 + guests + clock + scheduler."""

    def __init__(self, *, cpu: CpuModel | None = None,
                 clock: SimClock | None = None,
                 trap_capacity: int = 1024,
                 protect_limit: int | None = 4096) -> None:
        self.cpu = cpu or CpuModel()
        self.clock = clock or SimClock()
        self.scheduler = ContentionScheduler(self.cpu)
        self._domains: dict[int, Domain] = {}
        self._by_name: dict[str, int] = {}
        self._next_domid = 0
        self._snapshots: dict[int, dict] = {}
        #: coalesced write traps raised by writes to protected frames
        self.traps = TrapQueue(capacity_per_vm=trap_capacity)
        #: max distinct protected frames per domain (None = unbounded);
        #: models finite EPT shadow resources — beyond the limit,
        #: :meth:`protect_guest_frame` refuses and the caller must keep
        #: sweeping those pages
        self.protect_limit = protect_limit
        self.dom0 = self._create(Domain(
            domid=self._take_domid(), name="Dom0", kind=DomainKind.DOM0,
            vcpus=1))
        #: cumulative Dom0 CPU-seconds actually consumed (pre-stretch)
        self.dom0_cpu_seconds = 0.0

    # -- lifecycle -----------------------------------------------------------------

    def _take_domid(self) -> int:
        domid = self._next_domid
        self._next_domid += 1
        return domid

    def _create(self, domain: Domain) -> Domain:
        if domain.name in self._by_name:
            raise DomainStateError(f"domain {domain.name!r} already exists")
        self._domains[domain.domid] = domain
        self._by_name[domain.name] = domain.domid
        return domain

    def create_guest(self, name: str,
                     catalog: dict[str, DriverBlueprint] | None = None,
                     *, seed: int | None = None, vcpus: int = 1,
                     ram_bytes: int | None = None,
                     os_flavor: str = "xp-sp2") -> Domain:
        """Clone-and-boot a guest from the catalog (the paper's DomU).

        Per-guest randomisation (the seed) only affects module load
        addresses — the module *files* come from the shared catalog, so
        guests are genuine clones of one installation.
        """
        kwargs = {} if ram_bytes is None else {"ram_bytes": ram_bytes}
        kernel = GuestKernel(name, seed=derive_seed(seed, "guest", name),
                             os_flavor=os_flavor, **kwargs)
        kernel.boot(catalog or {})
        return self._create(Domain(
            domid=self._take_domid(), name=name, kind=DomainKind.DOMU,
            vcpus=vcpus, kernel=kernel))

    def domain(self, key: int | str) -> Domain:
        if isinstance(key, str):
            domid = self._by_name.get(key)
            if domid is None:
                raise DomainNotFound(f"no domain named {key!r}")
            return self._domains[domid]
        try:
            return self._domains[key]
        except KeyError:
            raise DomainNotFound(f"no domid {key}") from None

    def guests(self) -> list[Domain]:
        """All DomU domains, in creation order."""
        return [d for d in self._domains.values() if d.is_guest]

    def pause(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        if domain.state is DomainState.SHUTDOWN:
            raise DomainStateError(f"{domain.name} is shut down")
        domain.state = DomainState.PAUSED

    def unpause(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.state is DomainState.SHUTDOWN:
            raise DomainStateError(f"{domain.name} is shut down")
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        domain.state = DomainState.RUNNING

    def reboot(self, key: int | str) -> Domain:
        """Power-cycle a guest: modules reload at fresh bases.

        The guest kernel rebuilds its memory from its own disk (see
        :meth:`GuestKernel.reboot`), bumping the domain's
        ``boot_generation`` so cached introspection sessions know to
        re-attach. A paused guest may be rebooted (it comes back
        RUNNING); one that is mid-migration may not.
        """
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("cannot reboot Dom0")
        if domain.state is DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is mid-migration")
        assert domain.kernel is not None
        domain.kernel.reboot()
        domain.state = DomainState.RUNNING
        # A reboot rebuilds physical memory wholesale: every gfn means
        # something new, so protections and pending traps are dropped
        # (boot generations stay honest — monitors must re-arm).
        self._drop_frame_protections(domain)
        return domain

    def migrate_start(self, key: int | str) -> None:
        """Begin a live migration: the domain enters a read blackout."""
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("cannot migrate Dom0")
        if domain.state is not DomainState.RUNNING:
            raise DomainStateError(
                f"{domain.name} is {domain.state.value}; only a running "
                f"domain can start migrating")
        domain.state = DomainState.MIGRATING

    def migrate_finish(self, key: int | str) -> None:
        """Complete a live migration: the domain is reachable again."""
        domain = self.domain(key)
        if domain.state is not DomainState.MIGRATING:
            raise DomainStateError(f"{domain.name} is not migrating")
        domain.state = DomainState.RUNNING
        # The destination host has fresh EPT tables: write protections
        # do not travel with the guest, and traps queued on the source
        # are meaningless now.
        self._drop_frame_protections(domain)

    def destroy(self, key: int | str) -> None:
        domain = self.domain(key)
        if domain.kind is DomainKind.DOM0:
            raise DomainStateError("cannot destroy Dom0")
        domain.state = DomainState.SHUTDOWN
        self._drop_frame_protections(domain)
        del self._by_name[domain.name]
        del self._domains[domain.domid]

    # -- snapshots (paper §III-B discussion) ------------------------------------------

    def snapshot(self, key: int | str) -> None:
        """Record a full snapshot of the guest: memory frames, disk
        files, and the kernel's bookkeeping (so a revert restores the
        whole machine state, as a VM snapshot does)."""
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError("can only snapshot guests")
        kernel = domain.kernel
        assert kernel is not None
        self._snapshots[domain.domid] = {
            "frames": {no: frame.copy()
                       for no, frame in kernel.memory._frames.items()},
            "files": dict(kernel.fs._files),
            "modules": dict(kernel.modules),
            "exports": dict(kernel.loader.export_table),
        }

    def revert(self, key: int | str) -> None:
        """Restore the guest to its snapshot ("flush infections")."""
        domain = self.domain(key)
        snap = self._snapshots.get(domain.domid)
        if snap is None:
            raise DomainStateError(f"no snapshot for {domain.name}")
        kernel = domain.kernel
        assert kernel is not None
        kernel.memory._frames = {
            no: frame.copy() for no, frame in snap["frames"].items()}
        kernel.fs._files = dict(snap["files"])
        kernel.modules = dict(snap["modules"])
        kernel.loader.export_table = dict(snap["exports"])
        # A revert rewrites frame contents *behind* the ordinary write
        # path (same object, new frames). The boot generation does not
        # change, so armed monitors would coast on stale digests — raise
        # a whole-frame trap for every protected frame instead.
        for gfn in sorted(domain.protected_frames):
            self.traps.push(domain.name, gfn, 0, self.clock.now)

    # -- introspection surface -----------------------------------------------------

    def guest_cr3(self, key: int | str) -> int:
        domain = self.domain(key)
        if not domain.is_guest:
            raise DomainStateError(f"{domain.name} has no guest CR3")
        assert domain.kernel is not None
        return domain.kernel.cr3

    def _introspectable_kernel(self, key: int | str) -> GuestKernel:
        """Resolve the target of a guest read, or fail *consistently*.

        Every read path shares these semantics: a PAUSED domain reads
        fine (its memory is a frozen snapshot); a MIGRATING or SHUTDOWN
        domain — and one that was destroyed outright — raises
        :class:`~repro.errors.DomainUnreachable`, the retryable fault
        the VMI stack already degrades on, never a raw lookup error.
        """
        try:
            domain = self.domain(key)
        except DomainNotFound as exc:
            raise DomainUnreachable(
                f"domain {key!r} is destroyed or was never created") from exc
        if not domain.is_guest:
            raise DomainStateError(f"{domain.name} is not introspectable")
        if not domain.introspectable:
            raise DomainUnreachable(
                f"{domain.name} is {domain.state.value}; guest frames are "
                f"not mapped")
        assert domain.kernel is not None
        return domain.kernel

    def read_guest_frame(self, key: int | str, frame_no: int) -> bytes:
        """Map one guest frame read-only into Dom0 (4 KiB byte copy)."""
        return self._introspectable_kernel(key).memory.read_frame(frame_no)

    def read_guest_physical(self, key: int | str, paddr: int,
                            length: int) -> bytes:
        """Arbitrary physical-range read (libvmi's ``read_pa``)."""
        return self._introspectable_kernel(key).memory.read(paddr, length)

    def read_guest_frames(self, key: int | str, frame_nos) -> np.ndarray:
        """Map many guest frames into Dom0 in one batched call.

        The vectorised twin of :meth:`read_guest_frame`: one lifecycle
        check, then a single :meth:`PhysicalMemory.gather_frames` copy
        into a ``(n, PAGE_SIZE)`` uint8 matrix. Bytes are identical to
        ``n`` scalar frame reads. Fault injectors interpose on the
        scalar primitives only, so callers that need per-read fault
        schedules (the VMI layer, when an injector is installed) must
        not route through here — the batch path checks for an installed
        injector and falls back to scalar reads.
        """
        return self._introspectable_kernel(key).memory.gather_frames(
            frame_nos)

    def checksum_guest_frames(self, key: int | str, frame_nos,
                              lengths=None) -> list[bytes]:
        """Digests of many guest frames, computed hypervisor-side.

        Batched twin of :meth:`checksum_guest_frame`: one lifecycle
        check and one frame gather, then an md5 per row — digest bytes
        are identical to the scalar call. ``lengths`` (optional,
        parallel to ``frame_nos``) scopes each digest to the first
        ``lengths[i]`` bytes of its frame, zero-padded to a full page,
        exactly as the scalar ``length`` argument does for short module
        tails.
        """
        rows = self._introspectable_kernel(key).memory.gather_frames(
            frame_nos)
        if lengths is not None:
            if len(lengths) != rows.shape[0]:
                raise ValueError("lengths must parallel frame_nos")
            for i, length in enumerate(lengths):
                if not 0 < length <= PAGE_SIZE:
                    raise ValueError(
                        f"length {length} outside (0, {PAGE_SIZE}]")
                if length < PAGE_SIZE:
                    rows[i, length:] = 0
        return [hashlib.md5(row).digest() for row in rows]

    def checksum_guest_frame(self, key: int | str, frame_no: int,
                             length: int = PAGE_SIZE) -> bytes:
        """Digest of one guest frame, computed hypervisor-side.

        Models a VMM-assisted checksum hypercall (the trick Patagonix-
        style incremental monitors rely on): the hash runs inside the
        trusted VMM over the frame in place, so Dom0 never pays for a
        foreign mapping or a 4 KiB copy-out — the VMI layer charges
        ``CostModel.page_checksum`` instead of ``page_map``. The bytes
        are still fetched through :meth:`read_guest_frame`, so domain
        lifecycle rules and any installed fault injector apply exactly
        as they do to ordinary reads (a torn frame yields a wrong
        digest, which the manifest layer treats as a page delta).

        ``length`` scopes the digest to the first ``length`` bytes of
        the frame, zero-padded back to a full page (matching how module
        baselines pad a short tail chunk). A monitored image that ends
        mid-page must mask the co-resident tail bytes: they belong to
        whatever the guest allocator placed next, and hashing them
        produces spurious deltas.
        """
        if not 0 < length <= PAGE_SIZE:
            raise ValueError(f"length {length} outside (0, {PAGE_SIZE}]")
        page = self.read_guest_frame(key, frame_no)
        if length < PAGE_SIZE:
            page = page[:length] + bytes(PAGE_SIZE - length)
        return hashlib.md5(page).digest()

    def write_guest_frame(self, key: int | str, frame_no: int, data: bytes,
                          offset: int = 0, *, privileged: bool = False) -> None:
        """Write bytes into one guest frame from Dom0 (the repair path).

        This is the *hypervisor-side* twin of :meth:`read_guest_frame`,
        distinct from the guest's own ``aspace.write`` that attacks use:
        it maps the frame writable into Dom0 and copies ``data`` in at
        ``offset``. Lifecycle rules match guest reads (a PAUSED guest
        can be written; MIGRATING/SHUTDOWN/destroyed raises
        :class:`~repro.errors.DomainUnreachable`).

        Interaction with write-protection traps is deliberate:

        * an **unprivileged** write to a trap-protected frame is refused
          with :class:`~repro.errors.WriteProtectedError` — protections
          exist precisely to keep unauthorised writers out;
        * a **privileged** write (the remediation engine) bypasses the
          protection *and* the write observer, so it never delivers a
          self-inflicted trap: the monitor that armed the frame would
          otherwise see its own repair as tampering and invalidate the
          manifest it just healed.
        """
        kernel = self._introspectable_kernel(key)
        memory = kernel.memory
        if not 0 <= frame_no < memory.n_frames:
            raise DomainStateError(
                f"frame {frame_no:#x} beyond installed memory")
        if not 0 <= offset <= PAGE_SIZE:
            raise ValueError(f"offset {offset:#x} outside frame")
        if offset + len(data) > PAGE_SIZE:
            raise ValueError("write crosses the frame boundary")
        domain = self.domain(key)
        protected = frame_no in domain.protected_frames
        if protected and not privileged:
            raise WriteProtectedError(
                f"{domain.name} frame {frame_no:#x} is write-protected")
        paddr = frame_no * PAGE_SIZE + offset
        if privileged:
            # Detach the observer for the duration: privileged writes
            # are EPT-invisible by construction (the VMM writes through
            # its own mapping, not the guest's protected one).
            observer, memory.write_observer = memory.write_observer, None
            try:
                memory.write(paddr, data)
            finally:
                memory.write_observer = observer
        else:
            memory.write(paddr, data)

    # -- write protection (EPT-style, event-driven monitoring) ----------------------

    def protect_guest_frame(self, key: int | str, gfn: int) -> bool:
        """Arm write-protection on one guest frame.

        Returns True when armed (or already armed — protections are
        refcounted, so overlapping monitors compose). Returns False
        when the frame is *unprotectable*: beyond installed memory, or
        the domain is at :attr:`protect_limit` (finite EPT resources).
        The caller must keep sweeping unprotectable pages — refusal is
        a capacity answer, not an error.

        Raises :class:`~repro.errors.DomainUnreachable` under the same
        lifecycle rules as guest reads: protections are EPT state and
        cannot be touched mid-migration or after shutdown.
        """
        kernel = self._introspectable_kernel(key)
        domain = self.domain(key)
        if not 0 <= gfn < kernel.memory.n_frames:
            return False
        protected = domain.protected_frames
        if gfn in protected:
            protected[gfn] += 1
            return True
        if self.protect_limit is not None \
                and len(protected) >= self.protect_limit:
            return False
        protected[gfn] = 1
        self._arm_write_observer(domain)
        return True

    def unprotect_guest_frame(self, key: int | str, gfn: int) -> None:
        """Drop one reference to a frame protection.

        Forgiving by design: the domain may have been destroyed, or the
        protection already bulk-dropped by a lifecycle event — in both
        cases there is nothing left to disarm and this is a no-op.
        """
        try:
            domain = self.domain(key)
        except DomainNotFound:
            return
        refs = domain.protected_frames.get(gfn)
        if refs is None:
            return
        if refs <= 1:
            del domain.protected_frames[gfn]
        else:
            domain.protected_frames[gfn] = refs - 1

    def _drop_frame_protections(self, domain: Domain) -> None:
        """Bulk-drop a domain's protections on a lifecycle boundary.

        Clears the protected set, purges pending traps (their gfns no
        longer mean anything) and bumps ``protection_epoch`` so armed
        monitors can detect the drop in O(1) instead of trusting the
        silence of traps that can no longer fire.
        """
        domain.protected_frames.clear()
        domain.protection_epoch += 1
        self.traps.purge(domain.name)

    def _arm_write_observer(self, domain: Domain) -> None:
        """Hook the guest's physical memory write path (idempotent).

        The observer closes over the domain, not the memory: it checks
        the *live* protected set on every write and checks that the
        kernel still owns the memory object it was installed on (a
        reboot swaps the memory wholesale, orphaning old observers).
        """
        assert domain.kernel is not None
        memory = domain.kernel.memory
        if memory.write_observer is not None:
            return

        def observe(frame_no: int, offset: int, length: int) -> None:
            kernel = domain.kernel
            if kernel is None or kernel.memory is not memory:
                return
            if frame_no in domain.protected_frames:
                self.traps.push(domain.name, frame_no, offset,
                                self.clock.now)

        memory.write_observer = observe

    # -- CPU accounting ---------------------------------------------------------------

    def guest_demand(self) -> float:
        """Summed runnable vCPU demand across all guests."""
        return sum(d.runnable_vcpus for d in self._domains.values()
                   if d.is_guest)

    def charge_dom0(self, cpu_seconds: float) -> float:
        """Account ``cpu_seconds`` of Dom0 work; returns elapsed sim time.

        The work is stretched by the contention factor derived from the
        instantaneous guest load, then advanced on the simulated clock.
        """
        if cpu_seconds < 0:
            raise ValueError("negative work")
        factor = self.scheduler.dom0_slowdown(self.guest_demand())
        elapsed = cpu_seconds * factor
        self.dom0_cpu_seconds += cpu_seconds
        self.clock.advance(elapsed)
        return elapsed

    def deferred_charges(self) -> "_DeferredCharges":
        """Collect Dom0 charges without advancing the clock.

        Used by the parallel checker: per-VM CPU work is gathered
        inside the context, then the caller advances the clock once
        with a parallel-makespan model. ``with hv.deferred_charges()
        as acc: ...; acc.total`` gives the raw CPU-seconds charged.
        """
        return _DeferredCharges(self)


class _DeferredCharges:
    """Context manager that buffers charge_dom0 calls (see above)."""

    _ABSENT = object()   # sentinel: no instance attr shadowed the method

    def __init__(self, hypervisor: Hypervisor) -> None:
        self.hv = hypervisor
        self.total = 0.0
        self.marks: list[float] = []
        self._prev = self._ABSENT

    def mark(self) -> None:
        """Record a cut point (e.g. per-VM boundaries)."""
        self.marks.append(self.total)

    def __enter__(self) -> "_DeferredCharges":
        def collect(cpu_seconds: float) -> float:
            if cpu_seconds < 0:
                raise ValueError("negative work")
            self.total += cpu_seconds
            self.hv.dom0_cpu_seconds += cpu_seconds
            return 0.0
        # Shadow the bound method on the instance for the duration,
        # saving whatever shadowed it before us (an outer deferred
        # context, or nothing). Contexts therefore nest: each inner
        # context collects into its own total and hands the previous
        # collector back on exit. Inner totals do NOT roll into the
        # outer context — the inner caller models its own elapsed time.
        self._prev = self.hv.__dict__.get("charge_dom0", self._ABSENT)
        self.hv.charge_dom0 = collect  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc) -> None:
        if self._prev is self._ABSENT:
            del self.hv.__dict__["charge_dom0"]
        else:
            self.hv.charge_dom0 = self._prev  # type: ignore[method-assign]
        self._prev = self._ABSENT
