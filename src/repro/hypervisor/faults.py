"""Deterministic fault injection on the introspection read path.

The paper assumes every guest read succeeds, but its own §V discussion
(paged-out module pages, live guests mutating memory mid-copy) says the
real channel is unreliable. This module makes that unreliability a
first-class, *reproducible* experiment variable: a seeded
:class:`FaultInjector` installs itself over a hypervisor's
``read_guest_frame`` / ``read_guest_physical`` primitives and injects

* **transient faults** — the read simply fails once
  (:class:`~repro.errors.TransientFault`), as a contended
  ``xc_map_foreign_range`` does under load;
* **torn pages** — the read *succeeds* but returns the previous
  contents of the frame (a live guest rewrote it mid-copy; the checker
  sees a stale snapshot, exactly the §V "memory changes during the
  check" hazard);
* **paged-out windows** — the frame enters a not-present window for
  ``paged_out_duration`` simulated seconds
  (:class:`~repro.errors.PagedOutFault`); backing off on the simulated
  clock and retrying after the window is the correct response;
* **unreachable domains** — the whole domain stops answering for
  ``unreachable_duration`` simulated seconds
  (:class:`~repro.errors.DomainUnreachable`), modelling a paused or
  migrating guest. Windows longer than the retry budget force the
  degradation path (quarantine) in the checker above.

Every decision comes from one PCG64 stream derived from the global
project seed (:mod:`repro.rng`), so a fault schedule is a pure function
of ``(seed, read sequence)`` — the fault-ablation benchmarks are as
deterministic as the fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import (DomainNotFound, DomainUnreachable, PagedOutFault,
                      TransientFault)
from ..mem.physical import PAGE_SIZE
from ..rng import derive_seed, make_rng
from .xen import Hypervisor

__all__ = ["FaultConfig", "FaultStats", "FaultInjector"]

_PAGE_MASK = PAGE_SIZE - 1


@dataclass(frozen=True)
class FaultConfig:
    """Rates (per read) and window durations (simulated seconds)."""

    #: probability a read fails once with :class:`TransientFault`
    transient_rate: float = 0.0
    #: probability a frame read serves the *previous* frame contents
    torn_page_rate: float = 0.0
    #: probability a read opens a paged-out window on its frame
    paged_out_rate: float = 0.0
    #: how long a paged-out frame stays not-present
    paged_out_duration: float = 0.010
    #: probability a read opens an outage window on its whole domain
    unreachable_rate: float = 0.0
    #: how long an unreachable domain stays down
    unreachable_duration: float = 0.250
    #: restrict injection to these domain names (``None`` = all guests)
    only_domains: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"{f.name} must be in [0, 1], got {value}")
            if f.name.endswith("_duration") and value < 0:
                raise ValueError(f"{f.name} must be >= 0, got {value}")
        total = (self.transient_rate + self.torn_page_rate
                 + self.paged_out_rate + self.unreachable_rate)
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total} > 1")

    @property
    def any_faults(self) -> bool:
        return (self.transient_rate or self.torn_page_rate
                or self.paged_out_rate or self.unreachable_rate) > 0


@dataclass
class FaultStats:
    """Counters for what the injector actually did."""

    reads: int = 0
    transient: int = 0
    torn_pages: int = 0
    stale_served: int = 0
    paged_out: int = 0
    window_hits: int = 0
    unreachable: int = 0

    @property
    def injected(self) -> int:
        """Total faulted reads (raises plus stale serves)."""
        return (self.transient + self.stale_served + self.paged_out
                + self.window_hits + self.unreachable)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Seeded fault layer over a hypervisor's guest-read primitives.

    Usage::

        injector = FaultInjector(FaultConfig(transient_rate=0.05), seed=7)
        injector.install(hv)          # or: with injector.installed(hv): ...
        ...                            # reads now fault deterministically
        injector.uninstall()

    The injector shadows the hypervisor instance's ``read_guest_frame``
    and ``read_guest_physical`` bound methods (the same technique the
    parallel checker uses for deferred charges), so a plain
    :class:`Hypervisor` with no injector installed pays zero overhead.
    """

    def __init__(self, config: FaultConfig | None = None, *,
                 seed: int | None = None) -> None:
        self.config = config or FaultConfig()
        #: derived from the project-wide seed chain, so one root seed
        #: reproduces the whole fault schedule
        self.seed = derive_seed(seed, "fault-injector")
        self.rng = make_rng(self.seed)
        self.stats = FaultStats()
        self._hv: Hypervisor | None = None
        # active fault windows, keyed on the simulated clock
        self._frame_windows: dict[tuple[int, int], float] = {}
        self._domain_windows: dict[int, float] = {}
        # last-seen frame contents, for torn (stale) reads
        self._stale: dict[tuple[int, int], bytes] = {}

    # -- lifecycle ---------------------------------------------------------

    def install(self, hypervisor: Hypervisor) -> "FaultInjector":
        """Interpose on ``hypervisor``'s guest-read primitives."""
        if self._hv is not None:
            raise RuntimeError("injector is already installed")
        self._hv = hypervisor
        self._orig_frame = hypervisor.read_guest_frame
        self._orig_physical = hypervisor.read_guest_physical
        hypervisor.read_guest_frame = (          # type: ignore[method-assign]
            self._read_guest_frame)
        hypervisor.read_guest_physical = (      # type: ignore[method-assign]
            self._read_guest_physical)
        # Advertise ourselves so the observability bridge can publish
        # injected-vs-recovered fault counters without new plumbing.
        hypervisor.fault_injector = self  # type: ignore[attr-defined]
        return self

    def uninstall(self) -> None:
        """Restore the hypervisor's pristine read path."""
        if self._hv is None:
            return
        del self._hv.__dict__["read_guest_frame"]
        del self._hv.__dict__["read_guest_physical"]
        self._hv.__dict__.pop("fault_injector", None)
        self._hv = None

    def installed(self, hypervisor: Hypervisor) -> "_Installed":
        """Context manager: install on entry, uninstall on exit."""
        return _Installed(self, hypervisor)

    # -- fault decision ----------------------------------------------------

    def _targets(self, name: str) -> bool:
        only = self.config.only_domains
        return only is None or name in only

    def _check_windows(self, domid: int, frame_no: int, name: str) -> None:
        now = self._hv.clock.now  # type: ignore[union-attr]
        until = self._domain_windows.get(domid)
        if until is not None:
            if now < until:
                self.stats.window_hits += 1
                raise DomainUnreachable(
                    f"{name}: domain unreachable for {until - now:.3f}s more")
            del self._domain_windows[domid]
        until = self._frame_windows.get((domid, frame_no))
        if until is not None:
            if now < until:
                self.stats.window_hits += 1
                raise PagedOutFault(
                    f"{name}: frame {frame_no:#x} paged out for "
                    f"{until - now:.3f}s more")
            del self._frame_windows[(domid, frame_no)]

    def _roll(self, domid: int, frame_no: int, name: str) -> bool:
        """Draw once; raise for a fault, return True for a torn read."""
        cfg = self.config
        u = float(self.rng.random())
        edge = cfg.transient_rate
        if u < edge:
            self.stats.transient += 1
            raise TransientFault(
                f"{name}: transient read failure on frame {frame_no:#x}")
        edge += cfg.torn_page_rate
        if u < edge:
            self.stats.torn_pages += 1
            return True
        edge += cfg.paged_out_rate
        if u < edge:
            now = self._hv.clock.now  # type: ignore[union-attr]
            self._frame_windows[(domid, frame_no)] = \
                now + cfg.paged_out_duration
            self.stats.paged_out += 1
            raise PagedOutFault(
                f"{name}: frame {frame_no:#x} paged out "
                f"(window {cfg.paged_out_duration:.3f}s)")
        edge += cfg.unreachable_rate
        if u < edge:
            now = self._hv.clock.now  # type: ignore[union-attr]
            self._domain_windows[domid] = now + cfg.unreachable_duration
            self.stats.unreachable += 1
            raise DomainUnreachable(
                f"{name}: domain unreachable "
                f"(window {cfg.unreachable_duration:.3f}s)")
        return False

    def _gate(self, key: int | str, frame_no: int) -> bool:
        """Shared fault gate; returns True when the read must be torn."""
        assert self._hv is not None
        try:
            domain = self._hv.domain(key)
        except DomainNotFound as exc:
            # Same contract as the pristine read path: a destroyed
            # domain is unreachable, not a lookup error.
            raise DomainUnreachable(
                f"domain {key!r} is destroyed or was never created") from exc
        if not domain.is_guest or not self._targets(domain.name):
            return False
        self.stats.reads += 1
        self._check_windows(domain.domid, frame_no, domain.name)
        if not self.config.any_faults:
            return False
        return self._roll(domain.domid, frame_no, domain.name)

    # -- interposed primitives ---------------------------------------------

    def _read_guest_frame(self, key: int | str, frame_no: int) -> bytes:
        torn = self._gate(key, frame_no)
        domid = self._hv.domain(key).domid  # type: ignore[union-attr]
        if torn:
            stale = self._stale.get((domid, frame_no))
            if stale is not None:
                self.stats.stale_served += 1
                return stale
        page = self._orig_frame(key, frame_no)
        if self.config.torn_page_rate:
            self._stale[(domid, frame_no)] = page
        return page

    def _read_guest_physical(self, key: int | str, paddr: int,
                             length: int) -> bytes:
        frame_no = paddr >> 12
        torn = self._gate(key, frame_no)
        domid = self._hv.domain(key).domid  # type: ignore[union-attr]
        if torn:
            stale = self._stale.get((domid, frame_no))
            offset = paddr & _PAGE_MASK
            if stale is not None and offset + length <= len(stale):
                self.stats.stale_served += 1
                return stale[offset:offset + length]
        return self._orig_physical(key, paddr, length)


class _Installed:
    """Context manager returned by :meth:`FaultInjector.installed`."""

    def __init__(self, injector: FaultInjector, hv: Hypervisor) -> None:
        self.injector = injector
        self.hv = hv

    def __enter__(self) -> FaultInjector:
        return self.injector.install(self.hv)

    def __exit__(self, *exc) -> None:
        self.injector.uninstall()
