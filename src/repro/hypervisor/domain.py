"""Domains: the hypervisor's unit of virtualization (Xen terminology).

``Dom0`` is the privileged domain where ModChecker runs; ``DomU`` are
the guests. A DomU owns a :class:`~repro.guest.kernel.GuestKernel`
(physical memory + booted OS); Dom0 has no guest kernel — it only
consumes pCPU time.

``cpu_load`` is the fraction of one pCPU each of the domain's vCPUs
wants (0 = idle, 1 = HeavyLoad pegging the core). The scheduler sums
these to derive contention for Dom0's introspection work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..guest.kernel import GuestKernel

__all__ = ["DomainKind", "DomainState", "Domain"]


class DomainKind(enum.Enum):
    DOM0 = "dom0"
    DOMU = "domU"


class DomainState(enum.Enum):
    """Lifecycle states (the chaos engine drives the transitions).

    ``RUNNING → PAUSED → RUNNING`` is a freeze window: the guest makes
    no progress but its frames stay mapped, so introspection *still
    works* (a paused domain is the easiest one to read). ``MIGRATING``
    is a live-migration blackout: frames are in flight between hosts
    and every introspection read fails with
    :class:`~repro.errors.DomainUnreachable` until the migration
    finishes. ``SHUTDOWN`` is terminal-but-present (destroy removes the
    domain entirely).
    """

    RUNNING = "running"
    PAUSED = "paused"
    MIGRATING = "migrating"
    SHUTDOWN = "shutdown"


@dataclass
class Domain:
    """One domain's scheduling-relevant state."""

    domid: int
    name: str
    kind: DomainKind
    vcpus: int = 1
    kernel: GuestKernel | None = None
    state: DomainState = DomainState.RUNNING
    cpu_load: float = 0.0
    mem_load: float = 0.0        # fraction of RAM churned (Fig. 9 monitor)
    disk_load: float = 0.0
    tags: dict = field(default_factory=dict)
    #: gfn -> protection refcount; EPT-style write protection managed by
    #: :meth:`~repro.hypervisor.xen.Hypervisor.protect_guest_frame`.
    #: Overlapping monitors refcount rather than fight.
    protected_frames: dict[int, int] = field(default_factory=dict)
    #: Bumped whenever the hypervisor bulk-drops this domain's
    #: protections (reboot, migrate-finish, destroy). Monitors snapshot
    #: the epoch when they arm and compare before trusting silence: an
    #: epoch mismatch means "your traps were disarmed behind your back".
    protection_epoch: int = 0

    def __post_init__(self) -> None:
        if self.kind is DomainKind.DOMU and self.kernel is None:
            raise ValueError(f"DomU {self.name!r} needs a guest kernel")
        if not 0 <= self.cpu_load <= 1:
            raise ValueError("cpu_load must be in [0, 1]")

    @property
    def is_guest(self) -> bool:
        return self.kind is DomainKind.DOMU

    @property
    def boot_generation(self) -> int:
        """How many times this domain has (re)booted (0 = first boot).

        A rebooted guest reloads every module at fresh bases and gets
        fresh page tables, so introspection sessions key their validity
        on this counter: a cached VMI attach whose generation no longer
        matches must re-attach before reading.
        """
        return self.kernel.generation if self.kernel is not None else 0

    @property
    def introspectable(self) -> bool:
        """True when guest reads can succeed right now.

        PAUSED is deliberately included: a paused domain's memory is a
        frozen, perfectly readable snapshot.
        """
        return self.is_guest and self.state in (DomainState.RUNNING,
                                                DomainState.PAUSED)

    @property
    def runnable_vcpus(self) -> float:
        """Demanded pCPU time (vcpus x load) while running."""
        if self.state is not DomainState.RUNNING:
            return 0.0
        return self.vcpus * self.cpu_load

    def set_load(self, cpu: float | None = None, mem: float | None = None,
                 disk: float | None = None) -> None:
        """Adjust the domain's resource demand (used by workloads)."""
        if cpu is not None:
            if not 0 <= cpu <= 1:
                raise ValueError("cpu_load must be in [0, 1]")
            self.cpu_load = cpu
        if mem is not None:
            self.mem_load = mem
        if disk is not None:
            self.disk_load = disk
