"""Credit-scheduler-style CPU contention model.

Xen's credit scheduler gives each runnable vCPU a proportional share of
the physical CPUs. For ModChecker what matters is how much *slower*
Dom0's work completes as guests consume CPU — the mechanism behind the
paper's Fig. 8 ("sudden nonlinear growth in the ModChecker's runtime
when the number of heavily loaded VMs exceeded the number of available
virtual cores").

Model: let ``R`` be total runnable vCPU demand (guests' ``vcpus x load``
plus Dom0's one working vCPU) and ``P`` the number of logical pCPUs.

* **Undersubscribed** (``R <= P``): Dom0 gets a full core. A small
  linear term models shared-cache / hyper-threading interference, which
  grows with co-runners even before saturation — the paper's quad-core
  i7 exposes 8 logical CPUs but nothing like 8 cores of throughput.
* **Oversubscribed** (``R > P``): proportional share — Dom0 receives
  ``P/R`` of a core, i.e. work takes ``R/P`` times longer. Because the
  checker also scans *more* VMs as ``R`` grows, total runtime becomes
  super-linear in the VM count past the knee, reproducing Fig. 8.

The hyper-threading efficiency factor discounts the second logical
thread of each core (a pair of hyperthreads ≈ 1.3 cores of throughput,
a standard rule of thumb), which sharpens the knee the paper observed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuModel", "ContentionScheduler"]


@dataclass(frozen=True)
class CpuModel:
    """The physical CPU the hypervisor schedules onto.

    Defaults model the paper's testbed: Quad Core i7, HyperThreading
    enabled (8 logical CPUs).
    """

    physical_cores: int = 4
    threads_per_core: int = 2
    ht_efficiency: float = 0.30   # 2nd hyperthread adds 30% of a core
    interference: float = 0.03    # per-co-runner slowdown below saturation

    @property
    def logical_cpus(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def effective_cores(self) -> float:
        """Throughput in single-thread-equivalents."""
        extra = self.threads_per_core - 1
        return self.physical_cores * (1.0 + extra * self.ht_efficiency)


class ContentionScheduler:
    """Computes Dom0 slowdown factors from current domain loads."""

    def __init__(self, cpu: CpuModel | None = None) -> None:
        self.cpu = cpu or CpuModel()

    def dom0_slowdown(self, guest_runnable_vcpus: float,
                      dom0_threads: int = 1) -> float:
        """Factor by which each Dom0 working thread is stretched.

        ``guest_runnable_vcpus`` is the summed demand of all guests;
        ``dom0_threads`` is how many Dom0 vCPUs are busy (1 for the
        paper's sequential checker, >1 for the parallel extension).
        Always >= 1.
        """
        if guest_runnable_vcpus < 0:
            raise ValueError("negative runnable demand")
        if dom0_threads < 1:
            raise ValueError("dom0_threads must be >= 1")
        demand = guest_runnable_vcpus + float(dom0_threads)
        logical = self.cpu.logical_cpus
        if demand <= logical:
            # Full core available; mild interference from co-runners.
            return 1.0 + self.cpu.interference * (demand - 1.0)
        # Saturated: proportional share of *effective* throughput.
        share = self.cpu.effective_cores / demand
        per_thread_cap = self.cpu.effective_cores / logical
        return max(1.0, per_thread_cap / share) * (
            1.0 + self.cpu.interference * logical)

    def knee_vm_count(self, per_vm_load: float = 1.0) -> int:
        """Smallest loaded-VM count that saturates the logical CPUs.

        The paper observed the knee when loaded VMs exceeded the 8
        virtual cores; with 1 vCPU of demand per VM this returns 8.
        """
        if per_vm_load <= 0:
            raise ValueError("per_vm_load must be positive")
        n = 0
        while n * per_vm_load + 1.0 <= self.cpu.logical_cpus:
            n += 1
        return n
