"""Write-protection traps: the hypervisor half of event-driven VMI.

The related work ("A Low-overhead Kernel Object Monitoring Approach for
Virtual Machine Introspection", arXiv 1902.05135) replaces polling with
EPT write-protection: monitored guest frames are marked read-only in the
second-stage page tables, and a guest write raises a VM exit that the
monitor consumes later. This module models the *delivery* side — a
bounded, per-VM trap ring — while the arming side lives on
:class:`~repro.hypervisor.xen.Hypervisor` (``protect_guest_frame``).

Modelled real-world constraints that matter for correctness:

* **Coalescing** — hardware raises one exit per write, but a sane
  monitor only cares *that* a frame changed before the next check, not
  how many times. The queue keeps one :class:`WriteTrap` per (vm, gfn)
  and counts collapsed writes, like a dirty bitmap with metadata.
* **Bounded capacity** — real trap rings are finite. When a VM's
  pending set is full, *new* frames are dropped and a sticky overflow
  flag is raised; the consumer must fall back to a full sweep for that
  drain (reason ``exhausted`` in the fallback taxonomy), because a
  dropped trap is a write it never heard about.
* **Lifecycle purges** — reboot/migrate/destroy invalidate every gfn
  meaning, so pending traps for the VM are purged alongside its
  protections (see ``Hypervisor`` lifecycle methods).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = ["WriteTrap", "TrapStats", "TrapQueue"]


@dataclass(frozen=True)
class WriteTrap:
    """One coalesced guest write to a protected frame."""

    vm: str            #: domain name the write happened in
    gfn: int           #: guest frame number written
    offset: int        #: in-frame byte offset of the *first* write
    sim_time: float    #: simulated time of the first write
    writes: int = 1    #: writes coalesced into this trap since arming


@dataclass
class TrapStats:
    """Counters for the trap ring (all monotonically increasing)."""

    delivered: int = 0    #: write events pushed into the ring
    coalesced: int = 0    #: writes folded into an already-pending trap
    dropped: int = 0      #: writes lost to a full ring (overflow)
    drained: int = 0      #: traps handed to consumers via :meth:`drain`
    overflows: int = 0    #: drains that reported a sticky overflow

    def snapshot(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class _PerVM:
    """Pending traps for one domain (insertion-ordered by first write)."""

    pending: dict[int, WriteTrap] = field(default_factory=dict)
    overflowed: bool = False


class TrapQueue:
    """Bounded per-VM ring of coalesced write traps.

    ``capacity_per_vm`` bounds how many *distinct* frames can be
    pending per domain; repeat writes to an already-pending frame always
    coalesce and never consume capacity.
    """

    def __init__(self, capacity_per_vm: int = 1024) -> None:
        if capacity_per_vm <= 0:
            raise ValueError("capacity_per_vm must be positive")
        self.capacity_per_vm = capacity_per_vm
        self.stats = TrapStats()
        self._by_vm: dict[str, _PerVM] = {}

    # -- producer side (hypervisor write path) --------------------------

    def push(self, vm: str, gfn: int, offset: int, sim_time: float) -> bool:
        """Record a guest write; returns False iff the write was lost."""
        ring = self._by_vm.setdefault(vm, _PerVM())
        self.stats.delivered += 1
        trap = ring.pending.get(gfn)
        if trap is not None:
            ring.pending[gfn] = dataclasses.replace(
                trap, writes=trap.writes + 1)
            self.stats.coalesced += 1
            return True
        if len(ring.pending) >= self.capacity_per_vm:
            ring.overflowed = True
            self.stats.dropped += 1
            return False
        ring.pending[gfn] = WriteTrap(vm=vm, gfn=gfn, offset=offset,
                                      sim_time=sim_time)
        return True

    # -- consumer side (VMI drain hypercall) ----------------------------

    def pending(self, vm: str) -> int:
        """Distinct frames currently pending for ``vm``."""
        ring = self._by_vm.get(vm)
        return 0 if ring is None else len(ring.pending)

    def drain(self, vm: str) -> tuple[tuple[WriteTrap, ...], bool]:
        """Take every pending trap for ``vm``.

        Returns ``(traps, overflowed)`` in first-write order and clears
        both. A True ``overflowed`` means at least one write since the
        last drain was lost — the traps returned alongside it are an
        *incomplete* account and the consumer must not trust silence.
        """
        ring = self._by_vm.get(vm)
        if ring is None:
            return (), False
        traps = tuple(ring.pending.values())
        overflowed = ring.overflowed
        ring.pending.clear()
        ring.overflowed = False
        self.stats.drained += len(traps)
        if overflowed:
            self.stats.overflows += 1
        return traps, overflowed

    def purge(self, vm: str) -> int:
        """Lifecycle drop: discard ``vm``'s pending traps and overflow.

        Returns how many traps were discarded. Used when gfn meanings
        change wholesale (reboot, migrate-finish, destroy) — stale traps
        would otherwise alias new frames.
        """
        ring = self._by_vm.pop(vm, None)
        return 0 if ring is None else len(ring.pending)
