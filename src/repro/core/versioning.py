"""Version-drift handling: mixed-version pools.

The paper assumes every VM runs "the same version of the operating
system"; its motivation section notes hash dictionaries are cumbersome
precisely because modules update. In a live cloud the two collide: a
rolling driver update leaves the pool split between versions, and a
naive cross-check would flag every updated VM as infected.

The fix reuses the carver's insight: clones of one module *version*
share a base-independent header fingerprint (link timestamp, image
size, section geometry). :func:`partition_by_version` groups parsed
copies by fingerprint, and :func:`check_pool_versioned` runs the
majority vote *within* each version group — updated VMs compare
against updated VMs. A tampered copy fingerprints either into its
version group (code tamper: caught by the in-group hash vote) or into
a group of its own (header tamper: caught as a singleton, since no
legitimate rollout produces a unique version on exactly one VM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .carver import module_fingerprint
from .integrity import IntegrityChecker
from .parser import ParsedModule
from .report import PoolReport

__all__ = ["VersionGroup", "VersionedPoolReport", "partition_by_version",
           "check_pool_versioned"]


@dataclass
class VersionGroup:
    """Copies of one module sharing a version fingerprint."""

    fingerprint: tuple
    members: list[ParsedModule] = field(default_factory=list)

    @property
    def vm_names(self) -> list[str]:
        return [m.vm_name for m in self.members]

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class VersionedPoolReport:
    """Per-version-group reports plus singleton suspicion."""

    module_name: str
    groups: list[VersionGroup]
    group_reports: list[PoolReport]
    #: VMs whose copy's fingerprint is unique in the pool — either a
    #: mid-rollout straggler or a header-tampered module; always worth
    #: an operator's look.
    singletons: list[str]

    def flagged(self) -> list[str]:
        out: list[str] = list(self.singletons)
        for report in self.group_reports:
            for vm in report.flagged():
                if vm not in out:
                    out.append(vm)
        return out

    @property
    def all_clean(self) -> bool:
        return not self.flagged()

    def group_of(self, vm: str) -> VersionGroup | None:
        for group in self.groups:
            if vm in group.vm_names:
                return group
        return None


def partition_by_version(modules: list[ParsedModule]) -> list[VersionGroup]:
    """Group module copies by version fingerprint (largest first)."""
    by_fp: dict[tuple, VersionGroup] = {}
    for mod in modules:
        fp = module_fingerprint(mod.image)
        group = by_fp.get(fp)
        if group is None:
            group = by_fp[fp] = VersionGroup(fingerprint=fp)
        group.members.append(mod)
    return sorted(by_fp.values(), key=lambda g: -g.size)


def check_pool_versioned(modules: list[ParsedModule],
                         checker: IntegrityChecker | None = None,
                         ) -> VersionedPoolReport:
    """Majority-vote each version group independently.

    Groups of one cannot be voted on; they are reported as singletons.
    """
    checker = checker or IntegrityChecker()
    groups = partition_by_version(modules)
    reports: list[PoolReport] = []
    singletons: list[str] = []
    for group in groups:
        if group.size == 1:
            singletons.extend(group.vm_names)
            continue
        reports.append(checker.check_pool(group.members))
    name = modules[0].module_name if modules else ""
    return VersionedPoolReport(module_name=name, groups=groups,
                               group_reports=reports, singletons=singletons)
