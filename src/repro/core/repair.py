"""Restore-on-tamper remediation — self-healing pools.

Detection (the rest of :mod:`repro.core`) ends at a verdict; an
operator still has a tampered guest. This module closes the loop the
way MemoryRanger-style systems do: reconstruct the clean image from the
pool's majority reference, write back **only** the bytes the forensic
differ cannot explain, and re-verify — all through a privileged
hypervisor write path (:meth:`repro.vmi.core.VMIInstance.write_va_range`)
that is distinct from the guest-side write path attacks use.

The engine is deliberately paranoid, because a repair that writes the
wrong bytes — or the right bytes to the wrong place — is itself memory
corruption:

* **Target attestation** before any write: the suspect's mapping must
  agree with the majority on image size, sit on a page boundary, and
  must not alias another listed module's range. An AV-blinding attack
  that spoofs the LDR ``DllBase`` to point the repair engine at an
  innocent module is caught here and the remediation **aborts** — it is
  recorded, never silently "repaired".
* **Relocation-aware reconstruction**: the clean bytes are the majority
  reference's image with its own ``.reloc`` fixups re-applied at the
  *victim's* load base, so a repaired module keeps its legitimate
  per-VM relocation differences. Writing the reference's raw bytes
  would corrupt every rebased slot; the base-collision case (equal
  bases, delta 0) degenerates to a plain byte restore.
* **A trap-armed write window**: the victim range is write-protected
  for the duration of the write-back, so a racing adversary re-tampering
  pages *during* the repair (the MemoryRanger race) is observed as
  trapped guest writes. The privileged path itself never traps — repair
  must not be blinded by its own writes.
* **Bounded retries**: every attempt ends in a full pool re-check; a
  verdict that stays dirty retries up to ``max_attempts`` and then —
  under the ``quarantine-on-repeat-failure`` policy — escalates to
  quarantine instead of looping forever. There are no silent repair
  failures: every terminal state is an audit event (``repair.verified``
  / ``repair.failed`` / ``repair.quarantined``).

MTTR — detection verdict to verified-clean re-check, on the simulated
clock — is recorded per remediation and aggregated in
:class:`RepairStats`, which is the benchmark axis the repair ablation
plots.

The acquisition half of every attempt — re-copying the suspect and the
majority reference before reconstruction, and the full re-verify after
the write — rides the checker's VMI sessions, so on a ``batch=True``
checker those multi-page image reads run on the vectorised acquisition
path with results identical to the scalar reference loop; only the
write-back itself stays per-page (it must interleave with the trap
window frame by frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import (InsufficientPool, IntrospectionFault, PEError,
                      RetryExhausted, TransientFault)
from ..forensics.diff import diff_modules
from ..mem.physical import PAGE_SIZE
from ..pe.constants import DIR_BASERELOC
from ..pe.parser import PEImage
from ..pe.relocations import apply_relocations, parse_reloc_section
from .parser import ParsedModule
from .report import PoolReport
from .searcher import ModuleSearcher

if TYPE_CHECKING:
    from .modchecker import ModChecker

__all__ = ["REPAIR_POLICIES", "RemediationRecord", "RepairStats",
           "RepairEngine"]

#: The repair policies ModChecker (and the CLI) accept. ``detect-only``
#: is the historical behaviour: verdicts raise alerts, nothing is
#: written back. ``repair`` writes back and retries within the attempt
#: budget; ``quarantine-on-repeat-failure`` additionally escalates a
#: spent budget (or an aborted, un-repairable target) to quarantine.
REPAIR_POLICIES = ("detect-only", "repair", "quarantine-on-repeat-failure")


@dataclass
class RemediationRecord:
    """One tampered (vm, module) verdict carried to a terminal state.

    ``status`` is the terminal state: ``verified`` (re-check came back
    clean), ``failed`` (attempt budget spent, no quarantine policy),
    ``quarantined`` (budget spent or target un-repairable, escalated),
    or ``aborted`` (target attestation refused to write and no
    quarantine policy was armed). ``aborted`` additionally stays True
    whenever attestation refused, even when the terminal state is
    ``quarantined`` — the evidence bundle must show that no byte was
    written at a suspect target.
    """

    vm_name: str
    module_name: str
    status: str = "failed"
    attempts: int = 0
    reference_vm: str | None = None
    hunks_written: int = 0
    bytes_written: int = 0
    #: guest writes trapped inside the armed repair window (the racing
    #: adversary's footprint; ring overflow counts as at least one)
    raced_writes: int = 0
    detected_at: float = 0.0
    resolved_at: float | None = None
    reason: str | None = None
    #: region names the differ charged with unexplained hunks
    regions: tuple[str, ...] = ()
    aborted: bool = False

    @property
    def mttr(self) -> float | None:
        """Detect → verified-clean, in simulated seconds (or None)."""
        if self.status != "verified" or self.resolved_at is None:
            return None
        return self.resolved_at - self.detected_at

    def to_dict(self) -> dict:
        doc: dict[str, object] = {
            "vm": self.vm_name, "module": self.module_name,
            "status": self.status, "attempts": self.attempts,
            "hunks_written": self.hunks_written,
            "bytes_written": self.bytes_written,
            "raced_writes": self.raced_writes,
            "detected_at": self.detected_at,
            "regions": list(self.regions),
            "aborted": self.aborted,
        }
        if self.reference_vm is not None:
            doc["reference_vm"] = self.reference_vm
        if self.resolved_at is not None:
            doc["resolved_at"] = self.resolved_at
        if self.mttr is not None:
            doc["mttr"] = self.mttr
        if self.reason is not None:
            doc["reason"] = self.reason
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RemediationRecord":
        return cls(vm_name=doc["vm"], module_name=doc["module"],
                   status=doc["status"], attempts=doc["attempts"],
                   reference_vm=doc.get("reference_vm"),
                   hunks_written=doc["hunks_written"],
                   bytes_written=doc["bytes_written"],
                   raced_writes=doc["raced_writes"],
                   detected_at=doc["detected_at"],
                   resolved_at=doc.get("resolved_at"),
                   reason=doc.get("reason"),
                   regions=tuple(doc.get("regions", ())),
                   aborted=doc.get("aborted", False))


@dataclass
class RepairStats:
    """Cumulative remediation counters (published by the metrics)."""

    attempts: int = 0
    verified: int = 0
    failed: int = 0
    quarantined: int = 0
    aborted: int = 0
    hunks_written: int = 0
    bytes_written: int = 0
    raced_writes: int = 0
    mttr_sum: float = 0.0
    mttr_count: int = 0
    mttr_max: float = 0.0

    def note(self, record: RemediationRecord) -> None:
        """Fold one terminal record into the cumulative counters."""
        if record.status == "verified":
            self.verified += 1
        elif record.status == "quarantined":
            self.quarantined += 1
        else:
            self.failed += 1
        if record.aborted:
            self.aborted += 1
        self.hunks_written += record.hunks_written
        self.bytes_written += record.bytes_written
        self.raced_writes += record.raced_writes
        mttr = record.mttr
        if mttr is not None:
            self.mttr_sum += mttr
            self.mttr_count += 1
            self.mttr_max = max(self.mttr_max, mttr)

    @property
    def mttr_mean(self) -> float:
        return self.mttr_sum / self.mttr_count if self.mttr_count else 0.0


class _AttestationRefused(Exception):
    """Target attestation refused to write (carries the reason)."""


class RepairEngine:
    """Turns tamper verdicts into verified write-back remediations."""

    def __init__(self, checker: "ModChecker", *, max_attempts: int = 3,
                 quarantine: bool = False,
                 max_hunks_per_region: int = 4096) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.checker = checker
        self.max_attempts = max_attempts
        #: escalate a spent budget / un-repairable target to quarantine
        self.quarantine = quarantine
        #: forensic-diff hunk cap for the remediation record; generous,
        #: because a dropped hunk here only truncates *reporting* — the
        #: write plan itself is computed against the reconstruction
        self.max_hunks_per_region = max_hunks_per_region
        self.stats = RepairStats()
        #: escalation hook ``(vm, module, reason)``; the daemon wires
        #: this to its circuit breakers so a quarantined VM actually
        #: leaves the voting pool
        self.on_quarantine: Callable[[str, str, str], None] | None = None

    # -- entry point ---------------------------------------------------------

    def remediate_pool(self, module_name: str, report: PoolReport,
                       vms: list[str], *,
                       detected_at: float) -> list[RemediationRecord]:
        """Remediate every flagged VM of one pool verdict.

        Called by :meth:`ModChecker.check_pool` under its re-entrancy
        guard; degraded VMs are skipped (there is nothing to write to a
        guest we cannot even read).
        """
        records = []
        for vm_name in sorted(report.flagged()):
            if vm_name in report.degraded:
                continue
            records.append(self.remediate_vm(module_name, vm_name, vms,
                                             detected_at=detected_at))
        return records

    def remediate_vm(self, module_name: str, vm_name: str,
                     vms: list[str], *,
                     detected_at: float) -> RemediationRecord:
        """Drive one tampered (vm, module) to a terminal state."""
        events = self.checker.obs.events
        record = RemediationRecord(vm_name=vm_name,
                                   module_name=module_name,
                                   detected_at=detected_at)
        for attempt in range(1, self.max_attempts + 1):
            record.attempts = attempt
            record.reason = None          # each attempt explains itself
            self.stats.attempts += 1
            try:
                verified = self._attempt(module_name, vm_name, vms, record)
            except _AttestationRefused as refused:
                record.aborted = True
                record.reason = f"aborted: {refused}"
                if events.enabled:
                    events.emit("repair.failed", vm=vm_name,
                                module=module_name, attempt=attempt,
                                reason=record.reason)
                break
            if verified:
                record.status = "verified"
                record.resolved_at = self.checker.hv.clock.now
                if events.enabled:
                    events.emit("repair.verified", vm=vm_name,
                                module=module_name, attempts=attempt,
                                mttr=record.mttr)
                break
            record.reason = record.reason or "re-verification still flagged"
            if events.enabled:
                events.emit("repair.failed", vm=vm_name,
                            module=module_name, attempt=attempt,
                            reason=record.reason)
        if record.status != "verified" and self.quarantine:
            record.status = "quarantined"
            reason = record.reason or "repair retry budget exhausted"
            if events.enabled:
                events.emit("repair.quarantined", vm=vm_name,
                            module=module_name, attempts=record.attempts,
                            reason=reason)
            if self.on_quarantine is not None:
                self.on_quarantine(vm_name, module_name, reason)
        self.stats.note(record)
        return record

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, module_name: str, vm_name: str, vms: list[str],
                 record: RemediationRecord) -> bool:
        """One acquire → attest → reconstruct → write → re-verify pass.

        Returns True when the re-check came back clean. Raises
        :class:`_AttestationRefused` when the target must not be
        written at all (terminal for every attempt).
        """
        checker = self.checker
        events = checker.obs.events
        parsed, _, _, failed = checker.fetch_modules(module_name, vms)
        by_vm = {p.vm_name: p for p in parsed}
        suspect = by_vm.get(vm_name)
        if suspect is None:
            record.reason = (f"suspect copy unavailable: "
                             f"{failed.get(vm_name, 'not loaded')}")
            return False
        if len(parsed) < 2:
            record.reason = "no reference copy available"
            return False

        # Fresh local vote over the copies just acquired: the pool may
        # have moved since the detection verdict (the racing adversary
        # counts on exactly that), so the reference choice and the
        # write plan must come from the same acquisition round.
        vote = checker.checker.check_pool(parsed)
        verdict = vote.verdicts.get(vm_name)
        if verdict is not None and verdict.clean:
            # Already back in agreement (e.g. a previous attempt's
            # write landed after the adversary's): just re-verify.
            return self._reverify(module_name, vm_name, vms)
        reference = self._pick_reference(vote, vm_name, by_vm)
        if reference is None:
            record.reason = "no clean majority reference"
            return False
        record.reference_vm = reference.vm_name

        self._attest_target(vm_name, suspect, reference)

        recon = self._reconstruct(suspect, reference)
        diffs = diff_modules(suspect, reference,
                             max_hunks_per_region=self.max_hunks_per_region)
        record.regions = tuple(d.region for d in diffs if not d.clean)

        segments = _clip_to_regions(_diff_segments(suspect.image, recon),
                                    suspect.all_regions())
        if events.enabled:
            events.emit("repair.attempted", vm=vm_name, module=module_name,
                        attempt=record.attempts,
                        reference=reference.vm_name,
                        hunks=len(segments),
                        bytes=sum(e - s for s, e in segments),
                        regions=list(record.regions))
        if segments:
            record.raced_writes += self._write_back(
                vm_name, suspect.base, recon, segments, record)
        # Whatever cached view existed of this (vm, module), the guest's
        # memory just changed under it: the fast path must be re-earned
        # through the full re-verification below.
        checker.invalidate_manifests(vm_name, module_name,
                                     reason="repaired")
        return self._reverify(module_name, vm_name, vms)

    # -- attestation ---------------------------------------------------------

    def _attest_target(self, vm_name: str, suspect: ParsedModule,
                       reference: ParsedModule) -> None:
        """Refuse to write unless the target mapping attests clean.

        The write plan is only as trustworthy as the (base, size) the
        guest's LDR entry reported — which the guest controls. An
        AV-blinding attack that points ``DllBase`` at another module
        would make a naive repairer "restore" an innocent range; every
        gate here raises :class:`_AttestationRefused` instead.
        """
        if len(suspect.image) != len(reference.image):
            raise _AttestationRefused(
                f"size-mismatch: suspect maps {len(suspect.image):#x} "
                f"bytes, majority reference {len(reference.image):#x}")
        if suspect.base % PAGE_SIZE:
            raise _AttestationRefused(
                f"unaligned base {suspect.base:#x}")
        searcher = ModuleSearcher(self.checker.vmi_for(vm_name))
        start, end = suspect.base, suspect.base + len(suspect.image)
        entry_seen = False
        for entry in searcher.list_modules():
            if entry.name == suspect.module_name:
                entry_seen = True
                if entry.dll_base != suspect.base:
                    raise _AttestationRefused(
                        f"entry drifted: DllBase now {entry.dll_base:#x}, "
                        f"acquired at {suspect.base:#x}")
                continue
            o_start = entry.dll_base
            o_end = entry.dll_base + entry.size_of_image
            if o_start < end and start < o_end:
                raise _AttestationRefused(
                    f"aliased-base: target range [{start:#x}, {end:#x}) "
                    f"overlaps listed module {entry.name!r} at "
                    f"[{o_start:#x}, {o_end:#x})")
        if not entry_seen:
            raise _AttestationRefused("suspect entry vanished from the "
                                      "loaded-module list")

    # -- reconstruction ------------------------------------------------------

    def _reconstruct(self, suspect: ParsedModule,
                     reference: ParsedModule) -> bytes:
        """The clean image as it should read at the *suspect's* base.

        The reference image carries fixups for the reference's own load
        base; re-applying its ``.reloc`` list with the inter-base delta
        reproduces exactly what the victim's loader produced, so clean
        relocated slots are never "repaired". A zero delta (base
        collision) is a plain byte restore.
        """
        recon = bytearray(reference.image)
        delta = suspect.base - reference.base
        if delta % (1 << 32):
            try:
                pe = PEImage(bytes(reference.image))
                directory = pe.optional_header.data_directories[
                    DIR_BASERELOC]
                if directory.size:
                    raw = reference.image[
                        directory.virtual_address:
                        directory.virtual_address + directory.size]
                    fixups = parse_reloc_section(bytes(raw))
                    apply_relocations(recon, fixups, delta)
            except PEError as exc:
                raise _AttestationRefused(
                    f"reference reconstruction failed: {exc}") from exc
            # One header walk + one pass over the fixup slots, priced
            # like the parser's local buffer pass.
            self.checker._charge(
                len(reference.image) * self.checker.costs.parse_per_byte)
        return bytes(recon)

    # -- the armed write window ----------------------------------------------

    def _write_back(self, vm_name: str, base: int, recon: bytes,
                    segments: list[tuple[int, int]],
                    record: RemediationRecord) -> int:
        """Write the plan under write-protection; count raced writes.

        The whole victim range is armed for the duration, so a guest
        write racing the repair is trapped (and routed onward to the
        checker's protection records — other modules' manifests on the
        same frames must still see it). The privileged writes below do
        not trap: the hypervisor's repair path bypasses the observer.
        """
        checker = self.checker
        vmi = checker.vmi_for(vm_name)
        # Route anything already pending so pre-window guest writes are
        # not charged to the repair race.
        checker._route_traps(vmi)
        gfns = [g for g in vmi.protect_va_range(base, len(recon))
                if g is not None]
        armed = set(gfns)
        try:
            for seg_start, seg_end in segments:
                vmi.write_va_range(base + seg_start,
                                   recon[seg_start:seg_end])
                record.hunks_written += 1
                record.bytes_written += seg_end - seg_start
            traps, overflowed = vmi.drain_traps()
            checker.route_drained_traps(vm_name, traps, overflowed)
            raced = sum(t.writes for t in traps if t.gfn in armed)
            if overflowed:
                raced = max(raced, 1)
            return raced
        finally:
            for gfn in gfns:
                checker.hv.unprotect_guest_frame(vm_name, gfn)

    # -- re-verification -----------------------------------------------------

    def _reverify(self, module_name: str, vm_name: str,
                  vms: list[str]) -> bool:
        """Full pool re-check; True iff the repaired VM votes clean."""
        try:
            outcome = self.checker.check_pool(module_name, vms=vms)
        except (InsufficientPool, TransientFault, RetryExhausted,
                IntrospectionFault):
            return False
        report = outcome.report
        verdict = report.verdicts.get(vm_name)
        return (verdict is not None and verdict.clean
                and vm_name not in report.degraded)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _pick_reference(vote: PoolReport, vm_name: str,
                        by_vm: dict[str, ParsedModule],
                        ) -> ParsedModule | None:
        """The majority's copy: first clean VM, else best-matching other."""
        for name in sorted(vote.clean_vms()):
            if name != vm_name and name in by_vm:
                return by_vm[name]
        best, best_matches = None, -1
        for name, verdict in sorted(vote.verdicts.items()):
            if name == vm_name or name not in by_vm:
                continue
            if verdict.matches > best_matches:
                best, best_matches = by_vm[name], verdict.matches
        return best


def _diff_segments(current: bytes, target: bytes,
                   join_gap: int = 8) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` runs where ``current != target``.

    Runs separated by fewer than ``join_gap`` equal bytes are merged:
    re-writing a handful of already-clean bytes is cheaper than an
    extra page-crossing write call.
    """
    if len(current) != len(target):
        raise ValueError("write plan requires equal-length images")
    a = np.frombuffer(bytes(current), dtype=np.uint8)
    b = np.frombuffer(bytes(target), dtype=np.uint8)
    mismatch = np.nonzero(a != b)[0]
    if mismatch.size == 0:
        return []
    segments: list[tuple[int, int]] = []
    start = prev = int(mismatch[0])
    for idx in mismatch[1:]:
        idx = int(idx)
        if idx - prev > join_gap:
            segments.append((start, prev + 1))
            start = idx
        prev = idx
    segments.append((start, prev + 1))
    return segments


def _clip_to_regions(segments: list[tuple[int, int]],
                     regions) -> list[tuple[int, int]]:
    """Restrict a write plan to the hashed (header + executable) regions.

    The reconstruction can only vouch for the bytes the integrity claim
    covers. Writable data legitimately differs between clones — IAT
    slots resolve against each VM's own exporter bases, ``.data`` is
    simply mutable — so a byte-wise plan over the whole image would
    "restore" the reference VM's import addresses into the victim.
    Everything outside the suspect's hashed regions is dropped here.
    """
    spans: list[list[int]] = []
    for start, end in sorted((r.start, r.end) for r in regions):
        if spans and start <= spans[-1][1]:
            spans[-1][1] = max(spans[-1][1], end)
        else:
            spans.append([start, end])
    clipped: list[tuple[int, int]] = []
    for seg_start, seg_end in segments:
        for span_start, span_end in spans:
            lo = max(seg_start, span_start)
            hi = min(seg_end, span_end)
            if lo < hi:
                clipped.append((lo, hi))
    return clipped
