"""Continuous checking daemon — ModChecker as a cloud service.

The paper positions ModChecker as "initial light-weight consistency
checks" that trigger deeper analysis on discrepancy (§VI). This module
supplies the missing operational loop: a scheduler that sweeps modules
across the pool on the simulated clock, an alert log, and scheduling
policies:

``RoundRobinPolicy``
    every module, in list order, one per cycle slot;
``PriorityPolicy``
    a critical list (e.g. ``hal.dll``, ``ntoskrnl.exe``) every cycle,
    the long tail rotated one-per-cycle;
``AdaptivePolicy``
    like round-robin, but any module that ever alarmed is re-checked
    every cycle until it has been clean for ``cooldown`` cycles —
    the "flag → watch closely" behaviour an operator wants.

Each cycle also runs the anti-DKOM carving sweep on one VM (rotating),
so hidden modules surface within ``len(pool)`` cycles.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..errors import InsufficientPool
from .modchecker import ModChecker
from .searcher import ModuleSearcher

__all__ = ["Alert", "AlertLog", "SchedulingPolicy", "RoundRobinPolicy",
           "PriorityPolicy", "AdaptivePolicy", "CheckDaemon"]


@dataclass(frozen=True)
class Alert:
    """One discrepancy event."""

    time: float
    module: str
    flagged_vms: tuple[str, ...]
    regions: tuple[str, ...]
    kind: str = "integrity"          # or "hidden-module"

    def __str__(self) -> str:
        return (f"[{self.time:10.3f}s] {self.kind}: {self.module} on "
                f"{','.join(self.flagged_vms)} ({', '.join(self.regions)})")


@dataclass
class AlertLog:
    """Append-only alert store with simple queries."""

    alerts: list[Alert] = field(default_factory=list)

    def add(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def for_module(self, module: str) -> list[Alert]:
        return [a for a in self.alerts if a.module == module]

    def for_vm(self, vm: str) -> list[Alert]:
        return [a for a in self.alerts if vm in a.flagged_vms]

    def __len__(self) -> int:
        return len(self.alerts)


class SchedulingPolicy(abc.ABC):
    """Chooses which modules to check in each cycle."""

    @abc.abstractmethod
    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        """Modules to check this cycle."""


class RoundRobinPolicy(SchedulingPolicy):
    """``per_cycle`` modules per cycle, rotating through the list."""

    def __init__(self, per_cycle: int = 2) -> None:
        if per_cycle < 1:
            raise ValueError("per_cycle must be >= 1")
        self.per_cycle = per_cycle

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        if not modules:
            return []
        start = (cycle * self.per_cycle) % len(modules)
        picked = [modules[(start + i) % len(modules)]
                  for i in range(min(self.per_cycle, len(modules)))]
        return list(dict.fromkeys(picked))


class PriorityPolicy(SchedulingPolicy):
    """Critical modules every cycle; the rest round-robin."""

    def __init__(self, critical: list[str], tail_per_cycle: int = 1) -> None:
        self.critical = list(critical)
        self.tail = RoundRobinPolicy(tail_per_cycle)

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        tail_modules = [m for m in modules if m not in self.critical]
        picked = [m for m in self.critical if m in modules]
        picked += self.tail.select(cycle, tail_modules, log)
        return picked


class AdaptivePolicy(SchedulingPolicy):
    """Round-robin plus every-cycle re-checks of recent offenders."""

    def __init__(self, per_cycle: int = 2, cooldown: int = 3) -> None:
        self.base = RoundRobinPolicy(per_cycle)
        self.cooldown = cooldown
        self._watch: dict[str, int] = {}     # module -> cycles left

    def note_outcome(self, module: str, alarmed: bool) -> None:
        if alarmed:
            self._watch[module] = self.cooldown
        elif module in self._watch:
            self._watch[module] -= 1
            if self._watch[module] <= 0:
                del self._watch[module]

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        picked = [m for m in self._watch if m in modules]
        for m in self.base.select(cycle, modules, log):
            if m not in picked:
                picked.append(m)
        return picked


class CheckDaemon:
    """Periodic integrity sweeps over the cloud."""

    def __init__(self, checker: ModChecker, policy: SchedulingPolicy | None = None,
                 *, interval: float = 60.0, carve: bool = True) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.checker = checker
        self.policy = policy or RoundRobinPolicy()
        self.interval = interval
        self.carve = carve
        self.log = AlertLog()
        self.cycles_run = 0
        self._modules: list[str] | None = None

    def _discover_modules(self) -> list[str]:
        if self._modules is None:
            vms = self.checker.pool_vm_names()
            searcher = ModuleSearcher(self.checker.vmi_for(vms[0]))
            self._modules = [e.name for e in searcher.list_modules()]
        return self._modules

    def run_cycle(self) -> list[Alert]:
        """One daemon cycle: scheduled checks + one carving sweep."""
        clock = self.checker.hv.clock
        modules = self._discover_modules()
        new_alerts: list[Alert] = []

        for module in self.policy.select(self.cycles_run, modules, self.log):
            try:
                report = self.checker.check_pool(module).report
            except InsufficientPool:
                continue
            alarmed = not report.all_clean
            if isinstance(self.policy, AdaptivePolicy):
                self.policy.note_outcome(module, alarmed)
            if alarmed:
                flagged = tuple(report.flagged())
                regions: list[str] = []
                for vm in flagged:
                    for region in report.mismatched_regions(vm):
                        if region not in regions:
                            regions.append(region)
                alert = Alert(clock.now, module, flagged, tuple(regions))
                self.log.add(alert)
                new_alerts.append(alert)

        if self.carve:
            from .crossview import cross_view
            vms = self.checker.pool_vm_names()
            target = vms[self.cycles_run % len(vms)]
            vmi = self.checker.vmi_for(target)
            if self.checker.flush_caches_each_round:
                vmi.flush_caches()
            view = cross_view(vmi)
            for carved, name in self.checker.detect_hidden_modules(target) \
                    if view.carved_only else []:
                alert = Alert(clock.now, name or f"<unknown@{carved.base:#x}>",
                              (target,), ("unlinked from PsLoadedModuleList",),
                              kind="hidden-module")
                self.log.add(alert)
                new_alerts.append(alert)
            for entry in view.listed_only:
                alert = Alert(clock.now, entry.name, (target,),
                              (f"DllBase {entry.dll_base:#x} not backed "
                               f"by a module image",),
                              kind="decoy-entry")
                self.log.add(alert)
                new_alerts.append(alert)

        self.cycles_run += 1
        clock.advance(self.interval)
        return new_alerts

    def run(self, cycles: int) -> AlertLog:
        """Run ``cycles`` sweeps; returns the accumulated alert log."""
        for _ in range(cycles):
            self.run_cycle()
        return self.log
