"""Continuous checking daemon — ModChecker as a cloud service.

The paper positions ModChecker as "initial light-weight consistency
checks" that trigger deeper analysis on discrepancy (§VI). This module
supplies the missing operational loop: a scheduler that sweeps modules
across the pool on the simulated clock, an alert log, and scheduling
policies:

``RoundRobinPolicy``
    every module, in list order, one per cycle slot;
``PriorityPolicy``
    a critical list (e.g. ``hal.dll``, ``ntoskrnl.exe``) every cycle,
    the long tail rotated one-per-cycle;
``AdaptivePolicy``
    like round-robin, but any module that ever alarmed is re-checked
    every cycle until it has been clean for ``cooldown`` cycles —
    the "flag → watch closely" behaviour an operator wants.

Each cycle also runs the anti-DKOM carving sweep on one VM (rotating),
so hidden modules surface within ``len(pool)`` cycles.

The daemon degrades rather than dies. Availability failures are routed
through a per-VM **circuit breaker** (:mod:`repro.core.health`): a VM
whose introspection keeps failing after the retry budget is tripped
OPEN — dropped from sweeps and carving, reported via a ``degraded``
alert — then probed HALF_OPEN after a cool-down, with exponential
back-off if the probe fails too. The daemon also tracks **pool
membership** on every cycle: guests created mid-run are admitted (after
a warm-up walk, so they never vote cold), destroyed guests are evicted,
and a rebooted guest — whose cached VMI session now points at a dead
address space — is re-attached and re-warmed before it votes again.
When churn leaves fewer than ``quorum_floor`` VMs able to vote, the
cycle emits a degraded alert and suspends integrity checks instead of
crashing. An optional chaos engine (``chaos=``) is stepped at the top
of every cycle, which is how the soak tests drive lifecycle churn
deterministically. The module list is re-discovered every
``rediscover_every`` cycles (and forcibly on any membership change), so
modules loaded after the daemon started are picked up and monitored.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from ..errors import (DomainNotFound, InsufficientPool, IntrospectionFault,
                      RetryExhausted, TransientFault, VMIInitError)
from ..obs import (record_breaker_states, record_chaos_stats,
                   record_daemon_cycle, record_membership)
from .health import BreakerConfig, HealthRegistry
from .modchecker import ModChecker
from .searcher import ModuleSearcher

__all__ = ["Alert", "AlertLog", "SchedulingPolicy", "RoundRobinPolicy",
           "PriorityPolicy", "AdaptivePolicy", "CheckDaemon"]


@dataclass(frozen=True)
class Alert:
    """One discrepancy or availability event.

    ``degraded`` names VMs that were dropped from the checking quorum
    for this event (retry budget exhausted); for ``kind="degraded"``
    alerts it is the whole story, for integrity alerts it records which
    VMs could not vote.
    """

    time: float
    module: str
    flagged_vms: tuple[str, ...]
    regions: tuple[str, ...]
    kind: str = "integrity"          # or "hidden-module", "degraded", ...
    degraded: tuple[str, ...] = ()

    def __str__(self) -> str:
        extra = f" [degraded: {','.join(self.degraded)}]" \
            if self.degraded else ""
        return (f"[{self.time:10.3f}s] {self.kind}: {self.module} on "
                f"{','.join(self.flagged_vms)} "
                f"({', '.join(self.regions)}){extra}")


@dataclass
class AlertLog:
    """Append-only alert store with simple queries."""

    alerts: list[Alert] = field(default_factory=list)

    def add(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def for_module(self, module: str) -> list[Alert]:
        return [a for a in self.alerts if a.module == module]

    def for_vm(self, vm: str) -> list[Alert]:
        return [a for a in self.alerts if vm in a.flagged_vms]

    def __len__(self) -> int:
        return len(self.alerts)


class SchedulingPolicy(abc.ABC):
    """Chooses which modules to check in each cycle."""

    @abc.abstractmethod
    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        """Modules to check this cycle."""


class RoundRobinPolicy(SchedulingPolicy):
    """``per_cycle`` modules per cycle, rotating through the list."""

    def __init__(self, per_cycle: int = 2) -> None:
        if per_cycle < 1:
            raise ValueError("per_cycle must be >= 1")
        self.per_cycle = per_cycle

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        if not modules:
            return []
        start = (cycle * self.per_cycle) % len(modules)
        picked = [modules[(start + i) % len(modules)]
                  for i in range(min(self.per_cycle, len(modules)))]
        return list(dict.fromkeys(picked))


class PriorityPolicy(SchedulingPolicy):
    """Critical modules every cycle; the rest round-robin."""

    def __init__(self, critical: list[str], tail_per_cycle: int = 1) -> None:
        self.critical = list(critical)
        self.tail = RoundRobinPolicy(tail_per_cycle)

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        tail_modules = [m for m in modules if m not in self.critical]
        picked = [m for m in self.critical if m in modules]
        picked += self.tail.select(cycle, tail_modules, log)
        return picked


class AdaptivePolicy(SchedulingPolicy):
    """Round-robin plus every-cycle re-checks of recent offenders."""

    def __init__(self, per_cycle: int = 2, cooldown: int = 3) -> None:
        self.base = RoundRobinPolicy(per_cycle)
        self.cooldown = cooldown
        self._watch: dict[str, int] = {}     # module -> cycles left

    def note_outcome(self, module: str, alarmed: bool) -> None:
        if alarmed:
            self._watch[module] = self.cooldown
        elif module in self._watch:
            self._watch[module] -= 1
            if self._watch[module] <= 0:
                del self._watch[module]

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        picked = [m for m in self._watch if m in modules]
        for m in self.base.select(cycle, modules, log):
            if m not in picked:
                picked.append(m)
        return picked


class CheckDaemon:
    """Periodic integrity sweeps over the cloud, degrading gracefully."""

    def __init__(self, checker: ModChecker, policy: SchedulingPolicy | None = None,
                 *, interval: float = 60.0, carve: bool = True,
                 quarantine_cycles: int = 3,
                 rediscover_every: int = 1,
                 quorum_floor: int = 2,
                 breaker: BreakerConfig | None = None,
                 chaos=None,
                 trap_priority: bool = True,
                 scope: Callable[[], list[str]] | None = None,
                 lender: Callable[[int, list[str]], list[str]] | None = None,
                 advance_clock: bool = True,
                 pool_mode: str = "pairwise",
                 slo=None, slo_scope: str = "daemon") -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if quarantine_cycles < 1:
            raise ValueError("quarantine_cycles must be >= 1")
        if rediscover_every < 1:
            raise ValueError("rediscover_every must be >= 1")
        if quorum_floor < 2:
            raise ValueError("quorum_floor must be >= 2 (voting needs two)")
        self.checker = checker
        self.policy = policy or RoundRobinPolicy()
        self.interval = interval
        self.carve = carve
        self.quarantine_cycles = quarantine_cycles
        self.rediscover_every = rediscover_every
        self.quorum_floor = quorum_floor
        #: stepped once at the top of every cycle when present (any
        #: object with a ``step()`` — in practice a ChaosEngine)
        self.chaos = chaos
        #: with an event-driven checker, drain the trap rings at the
        #: top of each cycle and re-check the modules that trapped
        #: *before* the policy rotation gets its turn. Disable to keep
        #: the schedule byte-identical to the polling pipelines (the
        #: metamorphic equivalence suite does).
        self.trap_priority = trap_priority
        #: optional membership closure: when set, this daemon watches
        #: only the named VMs instead of every hypervisor guest — how a
        #: fleet shard scopes its daemon while sharing the hypervisor
        #: with sibling shards. Must match the checker's own scope.
        self.scope = scope
        #: optional quorum lender ``(needed, exclude) -> [vm, ...]``:
        #: when churn leaves this pool short of ``quorum_floor``, the
        #: lender supplies votable reference VMs from *outside* the pool
        #: (sibling shards with the same module fingerprint). Borrowed
        #: VMs vote but are never admitted: their breakers, warm-up and
        #: membership stay with their home shard.
        self.lender = lender
        #: when False the cycle leaves the simulated clock alone so an
        #: outer scheduler (the fleet makespan model) can advance it
        #: once for many concurrent shards
        self.advance_clock = advance_clock
        #: "pairwise" (the paper's O(t^2) vote) or "canonical" (the
        #: O(t) clustering vote — what a large fleet shard wants)
        self.pool_mode = pool_mode
        #: optional :class:`~repro.obs.slo.SloEngine`: when set, every
        #: cycle feeds cycle latency / detection latency / MTTR /
        #: coverage under ``slo_scope`` and re-evaluates burn rates. A
        #: fleet does NOT pass this to its shard daemons — the shard
        #: clocks are frozen under deferred charging, so the fleet
        #: records per-shard signals itself from its cost model.
        self.slo = slo
        self.slo_scope = slo_scope
        #: the last :class:`~repro.obs.slo.SloStatus` evaluated (None
        #: until the first cycle with an engine attached)
        self.last_slo_status = None
        #: per-VM circuit breakers; ``quarantine_cycles`` keeps its old
        #: meaning as the breaker's base cool-down
        self.health = HealthRegistry(breaker or BreakerConfig(
            open_cycles=quarantine_cycles,
            max_open_cycles=max(32, quarantine_cycles)))
        self.log = AlertLog()
        self.cycles_run = 0
        #: pool checks completed / per-VM verdicts produced / borrowed
        #: reference votes used (all cumulative, for the fleet metrics)
        self.checks_run = 0
        self.vm_checks_run = 0
        self.borrowed_refs = 0
        #: terminal remediation outcomes routed through the alert path
        #: (cumulative; only nonzero with a repair-capable checker)
        self.repairs_verified = 0
        self.repairs_failed = 0
        self.repairs_quarantined = 0
        self._modules: list[str] | None = None
        self._modules_cycle = 0
        self._force_rediscover = False
        #: VMs awaiting a successful warm-up walk before they may vote
        self._warmup: set[str] = set()
        #: VM name -> boot generation last seen; seeded from the pool at
        #: construction so cycle 0 does not treat every VM as new
        self._seen_generation: dict[str, int] = {
            d.name: d.boot_generation for d in self._member_domains()}
        #: every membership event observed: (sim time, event, vm) with
        #: event in {"admit", "evict", "reboot"}
        self.membership_log: list[tuple[float, str, str]] = []

    # -- degradation bookkeeping ---------------------------------------------

    @property
    def quarantined(self) -> list[str]:
        """VMs currently excluded from sweeps (sorted for determinism)."""
        return self.health.open_vms()

    def _active_vms(self) -> list[str]:
        """Pool members able to vote: breaker allows, warm-up done."""
        return [vm for vm in self.checker.pool_vm_names()
                if self.health.allowed(vm) and vm not in self._warmup]

    def votable_vms(self) -> list[str]:
        """Public view of the votable pool — what a sibling shard may
        borrow as majority references when its own quorum starves."""
        return self._active_vms()

    def _raise_alert(self, alert: Alert, new_alerts: list[Alert]) -> None:
        """Log + return an alert, and put it on the audit record."""
        self.log.add(alert)
        new_alerts.append(alert)
        events = self.checker.obs.events
        if events.enabled:
            events.emit("alert.raised", kind=alert.kind,
                        module=alert.module,
                        flagged=list(alert.flagged_vms),
                        regions=list(alert.regions))

    def _trip_vm(self, vm: str, reason: str,
                 new_alerts: list[Alert]) -> None:
        """Route a failure to the VM's breaker; alert when it trips."""
        if not self.health.record_failure(vm, reason):
            return
        events = self.checker.obs.events
        if events.enabled:
            events.emit("breaker.tripped", vm=vm, reason=reason)
        # A tripped VM's manifests may describe memory we could no
        # longer read; when the breaker re-closes the VM re-earns its
        # fast path through one full verification.
        self.checker.invalidate_manifests(vm, reason="breaker")
        self._raise_alert(Alert(self.checker.hv.clock.now, "<pool>", (vm,),
                                (reason,), kind="degraded", degraded=(vm,)),
                          new_alerts)

    def _handle_remediations(self, module: str, remediations: list,
                             own: set, new_alerts: list[Alert]) -> None:
        """Fold the repair engine's terminal records into the alert log.

        A verified repair raises a ``repaired`` alert (the operator
        should know the pool self-healed, not just that it alarmed); a
        failed or aborted one raises ``repair-failed`` — never silent —
        and a quarantined record additionally trips the VM's breaker so
        the re-tampering guest stops voting until its cool-down probe.
        Borrowed voters' breakers belong to their home pool, so only
        ``own`` members are tripped here.
        """
        clock = self.checker.hv.clock
        for rec in remediations:
            if rec.status == "verified":
                self.repairs_verified += 1
                if self.slo is not None and rec.mttr is not None:
                    self.slo.record(self.slo_scope, "mttr", rec.mttr,
                                    clock.now)
                self._raise_alert(
                    Alert(clock.now, module, (rec.vm_name,),
                          tuple(rec.regions), kind="repaired"),
                    new_alerts)
                continue
            reason = rec.reason or "repair retry budget exhausted"
            if rec.status == "quarantined":
                self.repairs_quarantined += 1
                if rec.vm_name in own:
                    self._trip_vm(rec.vm_name,
                                  f"repair quarantine: {reason}",
                                  new_alerts)
            else:
                self.repairs_failed += 1
            self._raise_alert(
                Alert(clock.now, module, (rec.vm_name,),
                      (reason,), kind="repair-failed"
                      if rec.status != "quarantined" else "repair-quarantined"),
                new_alerts)

    # -- membership ----------------------------------------------------------

    def _member_domains(self) -> list:
        """Domains this daemon is responsible for.

        Unscoped, that is every hypervisor guest; scoped (fleet shard)
        it is the scope's names resolved against the hypervisor — a
        scoped name whose domain vanished is simply absent, which is
        exactly what lets :meth:`_reconcile_membership` evict it.
        """
        if self.scope is None:
            return list(self.checker.hv.guests())
        domains = []
        for name in self.scope():
            try:
                domains.append(self.checker.hv.domain(name))
            except DomainNotFound:
                continue        # vanished: reconcile will evict it
        return domains

    def _note_membership(self, event: str, vm: str) -> None:
        self.membership_log.append(
            (self.checker.hv.clock.now, event, vm))
        self._force_rediscover = True
        events = self.checker.obs.events
        if events.enabled:
            events.emit("membership.changed", event=event, vm=vm)

    def admit_vm(self, vm: str) -> None:
        """Add a VM to the monitored pool (it warms up before voting)."""
        self._seen_generation[vm] = \
            self.checker.hv.domain(vm).boot_generation
        self.checker.admit_vm(vm)
        self._warmup.add(vm)
        self._note_membership("admit", vm)

    def evict_vm(self, vm: str) -> None:
        """Remove a VM from the monitored pool and forget its state."""
        self._seen_generation.pop(vm, None)
        self._warmup.discard(vm)
        self.health.evict(vm)
        self.checker.evict_vm(vm)
        self._note_membership("evict", vm)

    def _reconcile_membership(self) -> None:
        """Diff the hypervisor's pool against what we last saw.

        New guests are admitted (→ warm-up), vanished guests evicted,
        and a changed boot generation means the guest rebooted behind
        our back: its cached VMI session is stale, so it re-attaches
        and re-warms before voting again.
        """
        current = {d.name: d.boot_generation
                   for d in self._member_domains()}
        for vm in sorted(set(self._seen_generation) - set(current)):
            self.evict_vm(vm)
        for vm, generation in current.items():
            seen = self._seen_generation.get(vm)
            if seen is None:
                self.admit_vm(vm)
            elif generation != seen:
                self._seen_generation[vm] = generation
                self.checker.admit_vm(vm)
                self._warmup.add(vm)
                self._note_membership("reboot", vm)

    def _warm_up_pending(self, new_alerts: list[Alert]) -> None:
        """Try to warm every pending VM; failures go to its breaker."""
        for vm in sorted(self._warmup):
            if not self.health.allowed(vm):
                continue        # breaker OPEN: don't even probe
            try:
                self.checker.warm_up(vm)
            except (TransientFault, RetryExhausted, IntrospectionFault,
                    VMIInitError) as exc:
                self._trip_vm(vm, f"warm-up failed: {exc}", new_alerts)
                continue
            self._warmup.discard(vm)
            self.health.record_success(vm)

    # -- discovery -----------------------------------------------------------

    def _discover_modules(self, active: list[str] | None = None) -> list[str]:
        """(Re-)walk the active VMs' module lists on the discovery TTL.

        The list is refreshed every ``rediscover_every`` cycles so
        modules loaded after the daemon started get monitored too, and
        it is the *union* over the active pool — a module DKOM-hidden
        on one VM stays monitored via every other VM's list. A VM whose
        walk faults is skipped; if every active VM fails, the last
        known list is reused (or :class:`InsufficientPool` is raised
        when there never was one).
        """
        stale = (self._force_rediscover
                 or self._modules is None
                 or self.cycles_run - self._modules_cycle
                 >= self.rediscover_every)
        if not stale:
            return self._modules  # type: ignore[return-value]
        vms = active if active is not None else self._active_vms()
        if not vms and self._modules is None:
            raise InsufficientPool(
                "no reachable guest to discover modules from")
        union: list[str] = []
        seen: set[str] = set()
        walked = False
        for vm in vms:
            try:
                vmi = self.checker.vmi_for(vm)
                if self.checker.flush_caches_each_round:
                    vmi.flush_caches()
                entries = ModuleSearcher(vmi).list_modules()
            except (TransientFault, RetryExhausted):
                continue
            walked = True
            for entry in entries:
                if entry.name not in seen:
                    seen.add(entry.name)
                    union.append(entry.name)
        if walked:
            self._modules = union
            self._modules_cycle = self.cycles_run
            self._force_rediscover = False
        if self._modules is None:
            raise InsufficientPool(
                "module discovery failed on every reachable guest")
        return self._modules

    # -- the cycle -----------------------------------------------------------

    def run_cycle(self) -> list[Alert]:
        """One daemon cycle: scheduled checks + one carving sweep."""
        clock = self.checker.hv.clock
        obs = self.checker.obs
        events = obs.events
        cycle_start = clock.now
        new_alerts: list[Alert] = []
        # One correlation id per cycle: every event emitted anywhere
        # below — in ModChecker, the integrity checker, the breakers —
        # carries it, making the cycle one joinable causal record.
        check_id = events.new_check_id()
        with events.correlate(check_id), \
             obs.tracer.span("daemon.cycle",
                             cycle=self.cycles_run) as cycle_span:
            if self.chaos is not None:
                for chaos_event in self.chaos.step():
                    if events.enabled:
                        events.emit("chaos.applied", kind=chaos_event.kind,
                                    vm=chaos_event.vm)
                    if chaos_event.kind == "migrate-finish":
                        # Live migration rewrites the guest's physical
                        # placement; page digests recorded pre-move are
                        # no longer evidence about the new frames.
                        self.checker.invalidate_manifests(
                            chaos_event.vm, reason="migration")
            self.health.tick()
            self._reconcile_membership()
            self._warm_up_pending(new_alerts)
            active = self._active_vms()
            borrowed: list[str] = []
            if 0 < len(active) < self.quorum_floor \
                    and self.lender is not None:
                # Quorum starved but the pool is not empty: ask the
                # lender for sibling references. Borrowed VMs vote this
                # cycle only; they are never admitted here, and their
                # breakers stay with their home pool. Target one voter
                # *above* the floor: a two-voter pool can only tie on a
                # mismatch (both flagged), while floor+1 lets the
                # borrowed majority out-vote a tampered member.
                needed = self.quorum_floor + 1 - len(active)
                borrowed = [vm for vm in self.lender(needed, active)
                            if vm not in active]
                if borrowed:
                    self.borrowed_refs += len(borrowed)
                    if events.enabled:
                        events.emit("quorum.borrowed",
                                    pool=len(active),
                                    borrowed=list(borrowed),
                                    floor=self.quorum_floor)
            voters = active + borrowed
            own = set(active)

            if len(voters) >= self.quorum_floor and active:
                modules = self._discover_modules(active)
                schedule = self.policy.select(self.cycles_run, modules,
                                              self.log)
                if self.trap_priority \
                        and getattr(self.checker, "event_driven", False):
                    # Trap subscription: modules whose protected pages
                    # were written get re-checked this cycle, ahead of
                    # the rotation, instead of waiting their turn.
                    urgent = [m for m in
                              self.checker.pending_trap_modules(active)
                              if m in modules]
                    schedule = list(dict.fromkeys(urgent + list(schedule)))
                for module in schedule:
                    try:
                        outcome = self.checker.check_pool(
                            module, vms=voters, mode=self.pool_mode)
                    except InsufficientPool:
                        continue
                    report = outcome.report
                    self.checks_run += 1
                    self.vm_checks_run += len(report.verdicts)
                    for vm, reason in sorted(report.degraded.items()):
                        # Exhausted retry budgets and vanished domains
                        # indicate a sick VM; an "unreadable:" reason is a
                        # permanent failure of this one module (e.g. a decoy
                        # entry) — degrade the check, keep the VM voting.
                        # Borrowed voters' health is their home pool's
                        # business, not ours.
                        if vm in own and reason.startswith(
                                ("retry-exhausted", "unreachable")):
                            self._trip_vm(vm, reason, new_alerts)
                    for vm in report.verdicts:
                        if vm in own:
                            self.health.record_success(vm)
                    alarmed = not report.all_clean
                    if isinstance(self.policy, AdaptivePolicy):
                        self.policy.note_outcome(module, alarmed)
                    if alarmed:
                        flagged = tuple(report.flagged())
                        regions: list[str] = []
                        for vm in flagged:
                            for region in report.mismatched_regions(vm):
                                if region not in regions:
                                    regions.append(region)
                        self._raise_alert(
                            Alert(clock.now, module, flagged,
                                  tuple(regions),
                                  degraded=tuple(sorted(report.degraded))),
                            new_alerts)
                    self._handle_remediations(module, outcome.remediations,
                                              own, new_alerts)
            elif self.scope is not None \
                    or len(self.checker.pool_vm_names()) > len(active):
                # Degrade loudly, never crash the service. Unscoped
                # daemons alert only when *churn* (not pool size as
                # provisioned) starved the quorum — a 1-VM testbed is
                # the operator's choice, not an incident. A scoped
                # (fleet-shard) daemon always alerts: the fleet placed
                # this shard, so an unborrowable starved shard is an
                # operational signal its operator needs to see.
                self._raise_alert(
                    Alert(clock.now, "<pool>", (),
                          (f"quorum starved: {len(active)} votable "
                           f"VM(s), floor is {self.quorum_floor}; "
                           f"integrity checks suspended",),
                          kind="degraded",
                          degraded=tuple(self.health.open_vms())),
                    new_alerts)

            if self.carve and active:
                self._carve_sweep(active, new_alerts)

            cycle_span.set(alerts=len(new_alerts),
                           quarantined=len(self.health.open_vms()),
                           pool=len(active))
            if events.enabled:
                events.emit("daemon.cycle", cycle=self.cycles_run,
                            alerts=len(new_alerts), pool=len(active),
                            quarantined=len(self.health.open_vms()))
        self.cycles_run += 1
        if self.slo is not None:
            now = clock.now
            self.slo.record(self.slo_scope, "cycle_latency",
                            now - cycle_start, now)
            pool = self.checker.pool_vm_names()
            if pool:
                self.slo.record(self.slo_scope, "coverage",
                                len(active) / len(pool), now)
            for alert in new_alerts:
                if alert.kind in ("integrity", "hidden-module"):
                    self.slo.record(self.slo_scope, "detection_latency",
                                    alert.time - cycle_start, now)
            self.last_slo_status = self.slo.evaluate(now)
        if obs.metrics.enabled:
            record_daemon_cycle(obs.metrics,
                                duration=clock.now - cycle_start,
                                alerts=new_alerts,
                                quarantined=len(self.health.open_vms()))
            record_breaker_states(obs.metrics, self.health)
            if self.scope is None:
                # Scoped daemons share one registry with their sibling
                # shards; the cumulative membership counters carry no
                # per-pool label, so per-shard publication would fight
                # over one series. The fleet publishes its own
                # membership aggregates instead.
                record_membership(
                    obs.metrics,
                    pool_size=len(self.checker.pool_vm_names()),
                    events=self.membership_log)
            if self.chaos is not None and hasattr(self.chaos, "stats"):
                record_chaos_stats(obs.metrics, self.chaos.stats)
        if self.advance_clock:
            clock.advance(self.interval)
        return new_alerts

    def _carve_sweep(self, active: list[str],
                     new_alerts: list[Alert]) -> None:
        """Cross-view one rotating VM, carving its driver arena *once*.

        The carve is shared between hidden-module detection and decoy
        spotting: ``cross_view`` already carved the arena, so its
        ``carved_only`` images go straight to identification instead of
        a second carve of the same guest.
        """
        from .crossview import cross_view
        clock = self.checker.hv.clock
        target = active[self.cycles_run % len(active)]
        try:
            vmi = self.checker.vmi_for(target)
            if self.checker.flush_caches_each_round:
                vmi.flush_caches()
            view = cross_view(vmi)
            identified = self.checker.identify_carved_modules(
                target, view.carved_only)
        except (TransientFault, RetryExhausted, VMIInitError) as exc:
            self._trip_vm(target, f"carving sweep failed: {exc}",
                          new_alerts)
            return
        events = self.checker.obs.events
        if events.enabled:
            events.emit("module.carved", vm=target,
                        hidden=len(identified),
                        decoys=len(view.listed_only))
        for carved, name in identified:
            self._raise_alert(
                Alert(clock.now, name or f"<unknown@{carved.base:#x}>",
                      (target,), ("unlinked from PsLoadedModuleList",),
                      kind="hidden-module"),
                new_alerts)
        for entry in view.listed_only:
            self._raise_alert(
                Alert(clock.now, entry.name, (target,),
                      (f"DllBase {entry.dll_base:#x} not backed "
                       f"by a module image",),
                      kind="decoy-entry"),
                new_alerts)

    def run(self, cycles: int) -> AlertLog:
        """Run ``cycles`` sweeps; returns the accumulated alert log."""
        for _ in range(cycles):
            self.run_cycle()
        return self.log
