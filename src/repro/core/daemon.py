"""Continuous checking daemon — ModChecker as a cloud service.

The paper positions ModChecker as "initial light-weight consistency
checks" that trigger deeper analysis on discrepancy (§VI). This module
supplies the missing operational loop: a scheduler that sweeps modules
across the pool on the simulated clock, an alert log, and scheduling
policies:

``RoundRobinPolicy``
    every module, in list order, one per cycle slot;
``PriorityPolicy``
    a critical list (e.g. ``hal.dll``, ``ntoskrnl.exe``) every cycle,
    the long tail rotated one-per-cycle;
``AdaptivePolicy``
    like round-robin, but any module that ever alarmed is re-checked
    every cycle until it has been clean for ``cooldown`` cycles —
    the "flag → watch closely" behaviour an operator wants.

Each cycle also runs the anti-DKOM carving sweep on one VM (rotating),
so hidden modules surface within ``len(pool)`` cycles.

The daemon degrades rather than dies: a VM whose introspection keeps
failing after the retry budget (fault windows, paused/unreachable
domains) is **quarantined** for ``quarantine_cycles`` cycles — dropped
from sweeps and carving, reported via a ``degraded`` alert — and then
probed again. The module list is re-discovered every
``rediscover_every`` cycles, so modules loaded after the daemon started
are picked up and monitored.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..errors import InsufficientPool, RetryExhausted, TransientFault
from ..obs import record_daemon_cycle
from .modchecker import ModChecker
from .searcher import ModuleSearcher

__all__ = ["Alert", "AlertLog", "SchedulingPolicy", "RoundRobinPolicy",
           "PriorityPolicy", "AdaptivePolicy", "CheckDaemon"]


@dataclass(frozen=True)
class Alert:
    """One discrepancy or availability event.

    ``degraded`` names VMs that were dropped from the checking quorum
    for this event (retry budget exhausted); for ``kind="degraded"``
    alerts it is the whole story, for integrity alerts it records which
    VMs could not vote.
    """

    time: float
    module: str
    flagged_vms: tuple[str, ...]
    regions: tuple[str, ...]
    kind: str = "integrity"          # or "hidden-module", "degraded", ...
    degraded: tuple[str, ...] = ()

    def __str__(self) -> str:
        extra = f" [degraded: {','.join(self.degraded)}]" \
            if self.degraded else ""
        return (f"[{self.time:10.3f}s] {self.kind}: {self.module} on "
                f"{','.join(self.flagged_vms)} "
                f"({', '.join(self.regions)}){extra}")


@dataclass
class AlertLog:
    """Append-only alert store with simple queries."""

    alerts: list[Alert] = field(default_factory=list)

    def add(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def for_module(self, module: str) -> list[Alert]:
        return [a for a in self.alerts if a.module == module]

    def for_vm(self, vm: str) -> list[Alert]:
        return [a for a in self.alerts if vm in a.flagged_vms]

    def __len__(self) -> int:
        return len(self.alerts)


class SchedulingPolicy(abc.ABC):
    """Chooses which modules to check in each cycle."""

    @abc.abstractmethod
    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        """Modules to check this cycle."""


class RoundRobinPolicy(SchedulingPolicy):
    """``per_cycle`` modules per cycle, rotating through the list."""

    def __init__(self, per_cycle: int = 2) -> None:
        if per_cycle < 1:
            raise ValueError("per_cycle must be >= 1")
        self.per_cycle = per_cycle

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        if not modules:
            return []
        start = (cycle * self.per_cycle) % len(modules)
        picked = [modules[(start + i) % len(modules)]
                  for i in range(min(self.per_cycle, len(modules)))]
        return list(dict.fromkeys(picked))


class PriorityPolicy(SchedulingPolicy):
    """Critical modules every cycle; the rest round-robin."""

    def __init__(self, critical: list[str], tail_per_cycle: int = 1) -> None:
        self.critical = list(critical)
        self.tail = RoundRobinPolicy(tail_per_cycle)

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        tail_modules = [m for m in modules if m not in self.critical]
        picked = [m for m in self.critical if m in modules]
        picked += self.tail.select(cycle, tail_modules, log)
        return picked


class AdaptivePolicy(SchedulingPolicy):
    """Round-robin plus every-cycle re-checks of recent offenders."""

    def __init__(self, per_cycle: int = 2, cooldown: int = 3) -> None:
        self.base = RoundRobinPolicy(per_cycle)
        self.cooldown = cooldown
        self._watch: dict[str, int] = {}     # module -> cycles left

    def note_outcome(self, module: str, alarmed: bool) -> None:
        if alarmed:
            self._watch[module] = self.cooldown
        elif module in self._watch:
            self._watch[module] -= 1
            if self._watch[module] <= 0:
                del self._watch[module]

    def select(self, cycle: int, modules: list[str],
               log: AlertLog) -> list[str]:
        picked = [m for m in self._watch if m in modules]
        for m in self.base.select(cycle, modules, log):
            if m not in picked:
                picked.append(m)
        return picked


class CheckDaemon:
    """Periodic integrity sweeps over the cloud, degrading gracefully."""

    def __init__(self, checker: ModChecker, policy: SchedulingPolicy | None = None,
                 *, interval: float = 60.0, carve: bool = True,
                 quarantine_cycles: int = 3,
                 rediscover_every: int = 1) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if quarantine_cycles < 1:
            raise ValueError("quarantine_cycles must be >= 1")
        if rediscover_every < 1:
            raise ValueError("rediscover_every must be >= 1")
        self.checker = checker
        self.policy = policy or RoundRobinPolicy()
        self.interval = interval
        self.carve = carve
        self.quarantine_cycles = quarantine_cycles
        self.rediscover_every = rediscover_every
        self.log = AlertLog()
        self.cycles_run = 0
        self._modules: list[str] | None = None
        self._modules_cycle = 0
        #: VM name -> remaining quarantine cycles
        self._quarantine: dict[str, int] = {}

    # -- degradation bookkeeping ---------------------------------------------

    @property
    def quarantined(self) -> list[str]:
        """VMs currently excluded from sweeps (sorted for determinism)."""
        return sorted(self._quarantine)

    def _active_vms(self) -> list[str]:
        pool = self.checker.pool_vm_names()
        if not pool:
            raise InsufficientPool("no guests in the pool to monitor")
        return [vm for vm in pool if vm not in self._quarantine]

    def _tick_quarantine(self) -> None:
        for vm in list(self._quarantine):
            self._quarantine[vm] -= 1
            if self._quarantine[vm] <= 0:
                del self._quarantine[vm]

    def _quarantine_vm(self, vm: str, reason: str,
                       new_alerts: list[Alert]) -> None:
        if vm in self._quarantine:
            return
        self._quarantine[vm] = self.quarantine_cycles
        alert = Alert(self.checker.hv.clock.now, "<pool>", (vm,),
                      (reason,), kind="degraded", degraded=(vm,))
        self.log.add(alert)
        new_alerts.append(alert)

    # -- discovery -----------------------------------------------------------

    def _discover_modules(self, active: list[str] | None = None) -> list[str]:
        """(Re-)walk the active VMs' module lists on the discovery TTL.

        The list is refreshed every ``rediscover_every`` cycles so
        modules loaded after the daemon started get monitored too, and
        it is the *union* over the active pool — a module DKOM-hidden
        on one VM stays monitored via every other VM's list. A VM whose
        walk faults is skipped; if every active VM fails, the last
        known list is reused (or :class:`InsufficientPool` is raised
        when there never was one).
        """
        stale = (self._modules is None
                 or self.cycles_run - self._modules_cycle
                 >= self.rediscover_every)
        if not stale:
            return self._modules  # type: ignore[return-value]
        vms = active if active is not None else self._active_vms()
        if not vms and self._modules is None:
            raise InsufficientPool(
                "no reachable guest to discover modules from")
        union: list[str] = []
        seen: set[str] = set()
        walked = False
        for vm in vms:
            try:
                vmi = self.checker.vmi_for(vm)
                if self.checker.flush_caches_each_round:
                    vmi.flush_caches()
                entries = ModuleSearcher(vmi).list_modules()
            except (TransientFault, RetryExhausted):
                continue
            walked = True
            for entry in entries:
                if entry.name not in seen:
                    seen.add(entry.name)
                    union.append(entry.name)
        if walked:
            self._modules = union
            self._modules_cycle = self.cycles_run
        if self._modules is None:
            raise InsufficientPool(
                "module discovery failed on every reachable guest")
        return self._modules

    # -- the cycle -----------------------------------------------------------

    def run_cycle(self) -> list[Alert]:
        """One daemon cycle: scheduled checks + one carving sweep."""
        clock = self.checker.hv.clock
        obs = self.checker.obs
        cycle_start = clock.now
        new_alerts: list[Alert] = []
        with obs.tracer.span("daemon.cycle",
                             cycle=self.cycles_run) as cycle_span:
            self._tick_quarantine()
            active = self._active_vms()
            modules = self._discover_modules(active)

            if len(active) >= 2:
                for module in self.policy.select(self.cycles_run, modules,
                                                 self.log):
                    try:
                        report = self.checker.check_pool(module,
                                                         vms=active).report
                    except InsufficientPool:
                        continue
                    for vm, reason in sorted(report.degraded.items()):
                        # Only exhausted retry budgets indicate a sick VM;
                        # an "unreadable:" reason is a permanent failure of
                        # this one module (e.g. a decoy entry) — degrade the
                        # check, keep the VM in the pool.
                        if reason.startswith("retry-exhausted"):
                            self._quarantine_vm(vm, reason, new_alerts)
                    alarmed = not report.all_clean
                    if isinstance(self.policy, AdaptivePolicy):
                        self.policy.note_outcome(module, alarmed)
                    if alarmed:
                        flagged = tuple(report.flagged())
                        regions: list[str] = []
                        for vm in flagged:
                            for region in report.mismatched_regions(vm):
                                if region not in regions:
                                    regions.append(region)
                        alert = Alert(clock.now, module, flagged,
                                      tuple(regions),
                                      degraded=tuple(sorted(report.degraded)))
                        self.log.add(alert)
                        new_alerts.append(alert)

            if self.carve and active:
                self._carve_sweep(active, new_alerts)

            cycle_span.set(alerts=len(new_alerts),
                           quarantined=len(self._quarantine))
        self.cycles_run += 1
        if obs.metrics.enabled:
            record_daemon_cycle(obs.metrics,
                                duration=clock.now - cycle_start,
                                alerts=new_alerts,
                                quarantined=len(self._quarantine))
        clock.advance(self.interval)
        return new_alerts

    def _carve_sweep(self, active: list[str],
                     new_alerts: list[Alert]) -> None:
        """Cross-view one rotating VM, carving its driver arena *once*.

        The carve is shared between hidden-module detection and decoy
        spotting: ``cross_view`` already carved the arena, so its
        ``carved_only`` images go straight to identification instead of
        a second carve of the same guest.
        """
        from .crossview import cross_view
        clock = self.checker.hv.clock
        target = active[self.cycles_run % len(active)]
        vmi = self.checker.vmi_for(target)
        if self.checker.flush_caches_each_round:
            vmi.flush_caches()
        try:
            view = cross_view(vmi)
            identified = self.checker.identify_carved_modules(
                target, view.carved_only)
        except (TransientFault, RetryExhausted) as exc:
            self._quarantine_vm(target, f"carving sweep failed: {exc}",
                                new_alerts)
            return
        for carved, name in identified:
            alert = Alert(clock.now, name or f"<unknown@{carved.base:#x}>",
                          (target,), ("unlinked from PsLoadedModuleList",),
                          kind="hidden-module")
            self.log.add(alert)
            new_alerts.append(alert)
        for entry in view.listed_only:
            alert = Alert(clock.now, entry.name, (target,),
                          (f"DllBase {entry.dll_base:#x} not backed "
                           f"by a module image",),
                          kind="decoy-entry")
            self.log.add(alert)
            new_alerts.append(alert)

    def run(self, cycles: int) -> AlertLog:
        """Run ``cycles`` sweeps; returns the accumulated alert log."""
        for _ in range(cycles):
            self.run_cycle()
        return self.log
