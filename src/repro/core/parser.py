"""Module-Parser — headers and executable content extraction.

Implements the paper's Algorithm 1 on a copied module image: verify the
DOS magic, chase ``e_lfanew`` to the NT headers, read
``NumberOfSections`` section headers, and slice out each section's data
— keeping, per §III-B2, the headers and the *executable* section data
for the Integrity-Checker.

Runs entirely in Dom0 on the local buffer; its (small) CPU cost is
charged per byte through the optional ``charge`` hook, which is how the
Module-Parser series of Figs. 7/8 is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..obs import NULL_OBS, Observability
from ..pe.parser import PEImage, Region
from ..perf.costmodel import DEFAULT_COST_MODEL, CostModel
from .searcher import ModuleCopy

__all__ = ["ParsedModule", "ModuleParser"]


def _no_charge(_seconds: float) -> None:
    """Default charge hook: free parsing (unit tests, offline use)."""


@dataclass
class ParsedModule:
    """Parser output: named regions of one VM's module copy."""

    vm_name: str
    module_name: str
    base: int
    image: bytes
    header_regions: list[Region] = field(default_factory=list)
    code_regions: list[Region] = field(default_factory=list)

    def region_bytes(self, region: Region) -> bytes:
        return region.slice(self.image)

    def all_regions(self) -> list[Region]:
        return self.header_regions + self.code_regions

    def region_names(self) -> list[str]:
        return [r.name for r in self.all_regions()]


class ModuleParser:
    """Parses :class:`ModuleCopy` buffers into hashable regions."""

    def __init__(self, *, cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge: Callable[[float], None] | None = None,
                 obs: Observability = NULL_OBS) -> None:
        self.costs = cost_model
        self._charge = charge or _no_charge
        self.obs = obs

    def parse(self, copy: ModuleCopy) -> ParsedModule:
        """Algorithm 1: extract headers and executable section data."""
        with self.obs.tracer.span("parser.parse", vm=copy.vm_name,
                                  module=copy.module_name) as span:
            pe = PEImage(copy.image)
            parsed = ParsedModule(
                vm_name=copy.vm_name, module_name=copy.module_name,
                base=copy.base, image=copy.image,
                header_regions=pe.header_regions(),
                code_regions=pe.code_regions())
            # Cost: one pass over headers + the extracted section data.
            touched = sum(r.size for r in parsed.all_regions())
            self._charge(touched * self.costs.parse_per_byte)
            span.set(bytes=touched,
                     regions=len(parsed.all_regions()))
        return parsed
