"""Relative-virtual-address adjustment — the paper's Algorithm 2.

Two clean copies of a module loaded at different bases differ exactly
at the 32-bit slots the loader rebased. Integrity-Checker cannot hash
the raw bytes; it first *reverses* relocation: wherever the two byte
streams differ it assumes an absolute address starts nearby, computes
``RVA = absolute - base`` on both sides, and if the RVAs agree replaces
both 4-byte slots with the RVA — restoring base-independent content
(Fig. 4 of the paper).

Three implementations:

``adjust_rva_faithful``
    The paper's pseudocode, literally: the start-of-address offset is
    derived *once* from the first differing byte of the two base
    addresses, and the scan steps over each difference window. The
    heuristic is sound for genuine relocation slots — two sums
    ``rva + base1`` / ``rva + base2`` first differ exactly at the
    bases' first differing byte (lower bytes are equal, so carries into
    it are equal) — but it gives up entirely when the bases happen to
    share all four bytes, and its fixed offset can misfire on bytes an
    attacker changed. The paper's line 22 reads
    ``j ← j − offset + 1 − 4``, which walks backwards — an obvious typo
    for *advancing past* the 4-byte slot; we implement the advance.

``adjust_rva_robust``
    No assumption about where the address starts: every candidate start
    in the 4-byte window before a difference is tried and accepted iff
    both sides yield the *same, plausible* RVA.

``adjust_rva_vectorized``
    Same acceptance rule as *robust*, but difference positions come
    from one numpy comparison over the whole section (guides: vectorise
    the hot loop) and candidate windows are verified in batches. For
    clean modules (sparse diffs) this is the fast path the parallel
    checker uses.

All three return new buffers plus :class:`RvaAdjustStats`; a difference
window no candidate start can explain is counted in ``unresolved`` —
for clean modules that count is 0, and tampering shows up both as
``unresolved`` windows and as a final hash mismatch.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RvaAdjustStats",
    "first_differing_base_byte",
    "adjust_rva_faithful",
    "adjust_rva_robust",
    "adjust_rva_vectorized",
    "ADJUSTERS",
]

_U32 = struct.Struct("<I")


@dataclass
class RvaAdjustStats:
    """Outcome counters of one adjustment pass."""

    replaced: int = 0      # address slots rewritten to their RVA
    unresolved: int = 0    # difference windows no RVA could explain
    windows: int = 0       # difference windows examined

    @property
    def clean(self) -> bool:
        """True when every difference was explained by relocation."""
        return self.unresolved == 0


def first_differing_base_byte(base1: int, base2: int) -> int | None:
    """0-based index of the first differing byte of two LE base addresses.

    ``None`` when the bases are identical (no adjustment needed —
    identical bases produce identical clean images). This is the
    paper's ``offset`` (theirs is 1-based).
    """
    b1 = _U32.pack(base1 & 0xFFFFFFFF)
    b2 = _U32.pack(base2 & 0xFFFFFFFF)
    for i in range(4):
        if b1[i] != b2[i]:
            return i
    return None


def _read_u32(buf: bytearray, off: int) -> int:
    return _U32.unpack_from(buf, off)[0]


def _write_u32(buf: bytearray, off: int, value: int) -> None:
    _U32.pack_into(buf, off, value & 0xFFFFFFFF)


def adjust_rva_faithful(data1: bytes, base1: int, data2: bytes, base2: int,
                        *, max_rva: int | None = None,
                        ) -> tuple[bytes, bytes, RvaAdjustStats]:
    """The paper's Algorithm 2, byte-for-byte.

    ``max_rva`` bounds plausible RVAs (defaults to the section length
    times 16 — generous, since code references data in sibling
    sections); implausible RVAs are treated as unresolved rather than
    rewritten, which keeps tampered bytes visible to the hash.
    """
    if len(data1) != len(data2):
        raise ValueError("section copies differ in length")
    out1, out2 = bytearray(data1), bytearray(data2)
    stats = RvaAdjustStats()
    d = first_differing_base_byte(base1, base2)
    if d is None:                       # IsDifferenceExist == 0
        return bytes(out1), bytes(out2), stats
    limit = max_rva if max_rva is not None else max(len(data1) * 16, 1 << 20)
    n = len(out1)
    j = 0
    while j < n:
        if out1[j] != out2[j]:
            stats.windows += 1
            start = j - d               # paper: j - offset + 1, 0-based
            if 0 <= start and start + 4 <= n:
                abs1 = _read_u32(out1, start)
                abs2 = _read_u32(out2, start)
                rva1 = (abs1 - base1) & 0xFFFFFFFF
                rva2 = (abs2 - base2) & 0xFFFFFFFF
                if rva1 == rva2 and rva1 < limit:
                    _write_u32(out1, start, rva1)
                    _write_u32(out2, start, rva2)
                    stats.replaced += 1
                    j = start + 4       # paper line 22 (with the sign fixed)
                    continue
            stats.unresolved += 1
            j = max(j + 1, start + 4 if start >= 0 else j + 1)
            continue
        j += 1
    return bytes(out1), bytes(out2), stats


def _try_window(out1: bytearray, out2: bytearray, j: int, base1: int,
                base2: int, limit: int) -> int | None:
    """Find a candidate slot start covering difference position ``j``.

    Returns the accepted start offset, or None. Candidates are tried
    from the earliest position whose 4-byte slot still covers ``j``.
    """
    n = len(out1)
    for start in range(max(0, j - 3), min(j, n - 4) + 1):
        abs1 = _read_u32(out1, start)
        abs2 = _read_u32(out2, start)
        rva1 = (abs1 - base1) & 0xFFFFFFFF
        rva2 = (abs2 - base2) & 0xFFFFFFFF
        if rva1 == rva2 and rva1 < limit:
            _write_u32(out1, start, rva1)
            _write_u32(out2, start, rva2)
            return start
    return None


def adjust_rva_robust(data1: bytes, base1: int, data2: bytes, base2: int,
                      *, max_rva: int | None = None,
                      ) -> tuple[bytes, bytes, RvaAdjustStats]:
    """Candidate-window search; no base-byte-pattern assumption."""
    if len(data1) != len(data2):
        raise ValueError("section copies differ in length")
    out1, out2 = bytearray(data1), bytearray(data2)
    stats = RvaAdjustStats()
    if base1 == base2:
        return bytes(out1), bytes(out2), stats
    limit = max_rva if max_rva is not None else max(len(data1) * 16, 1 << 20)
    n = len(out1)
    j = 0
    while j < n:
        if out1[j] == out2[j]:
            j += 1
            continue
        stats.windows += 1
        start = _try_window(out1, out2, j, base1, base2, limit)
        if start is None:
            stats.unresolved += 1
            j += 1
        else:
            stats.replaced += 1
            j = start + 4
    return bytes(out1), bytes(out2), stats


def adjust_rva_vectorized(data1: bytes, base1: int, data2: bytes, base2: int,
                          *, max_rva: int | None = None,
                          ) -> tuple[bytes, bytes, RvaAdjustStats]:
    """Numpy-accelerated variant with the robust acceptance rule.

    One vector compare finds all difference positions; the (sparse)
    positions are then resolved with the same candidate-window logic.
    Equivalent output to :func:`adjust_rva_robust` — asserted by a
    hypothesis property test — at a fraction of the Python-loop cost.
    """
    if len(data1) != len(data2):
        raise ValueError("section copies differ in length")
    out1, out2 = bytearray(data1), bytearray(data2)
    stats = RvaAdjustStats()
    if base1 == base2 or not data1:
        return bytes(out1), bytes(out2), stats
    limit = max_rva if max_rva is not None else max(len(data1) * 16, 1 << 20)

    a1 = np.frombuffer(bytes(data1), dtype=np.uint8)
    a2 = np.frombuffer(bytes(data2), dtype=np.uint8)
    diffs = np.nonzero(a1 != a2)[0]
    consumed_until = -1
    for j in map(int, diffs):
        if j <= consumed_until:
            continue
        stats.windows += 1
        start = _try_window(out1, out2, j, base1, base2, limit)
        if start is None:
            stats.unresolved += 1
        else:
            stats.replaced += 1
            consumed_until = start + 3
    return bytes(out1), bytes(out2), stats


#: Registry used by ModChecker's ``rva_mode`` option and the A3 ablation.
ADJUSTERS = {
    "faithful": adjust_rva_faithful,
    "robust": adjust_rva_robust,
    "vectorized": adjust_rva_vectorized,
}
