"""Integrity-Checker — hashing, RVA adjustment, majority voting.

Per the paper (§III-B3, §IV-C): MD5 each header region directly
(headers are base-independent — the loader never rewrites them in
memory), RVA-adjust each executable section pairwise and MD5 the
adjusted bytes, then vote: a VM's module is clean iff its hashes fully
match a majority of the other ``t-1`` VMs.

Structural divergence is also a signal: if the two copies expose
different region *sets* (e.g. an injected extra section header), the
symmetric difference is reported as mismatched, and region size
differences mismatch trivially via the hash.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from ..obs import NULL_OBS, Observability
from ..perf.costmodel import DEFAULT_COST_MODEL, CostModel
from .parser import ParsedModule
from .report import PairComparison, PoolReport, VMCheckReport, VMVerdict
from .rva import ADJUSTERS, RvaAdjustStats

__all__ = ["IntegrityChecker", "md5_hex", "SUPPORTED_HASHES"]

#: Digests the checker accepts. The paper uses MD5 (OpenSSL); MD5 is
#: collision-broken today, so deployments should prefer SHA-256 — the
#: cross-VM protocol is digest-agnostic.
SUPPORTED_HASHES = ("md5", "sha1", "sha256")


def md5_hex(data: bytes) -> str:
    """MD5 digest (hex) — the paper's OpenSSL MD5, via hashlib."""
    return hashlib.md5(data).hexdigest()


def _no_charge(_seconds: float) -> None:
    """Default charge hook: free checking (unit tests, offline use)."""


class IntegrityChecker:
    """Pairwise comparison + majority vote over parsed module copies."""

    def __init__(self, *, rva_mode: str = "robust",
                 hash_algorithm: str = "md5",
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 charge: Callable[[float], None] | None = None,
                 obs: Observability = NULL_OBS) -> None:
        if rva_mode not in ADJUSTERS:
            raise ValueError(
                f"unknown rva_mode {rva_mode!r}; pick from {sorted(ADJUSTERS)}")
        if hash_algorithm not in SUPPORTED_HASHES:
            raise ValueError(
                f"unknown hash {hash_algorithm!r}; "
                f"pick from {SUPPORTED_HASHES}")
        self.rva_mode = rva_mode
        self.hash_algorithm = hash_algorithm
        self._adjust = ADJUSTERS[rva_mode]
        self.costs = cost_model
        self._charge = charge or _no_charge
        self.obs = obs

    def digest(self, data: bytes) -> str:
        """Hash ``data`` with the configured algorithm."""
        return hashlib.new(self.hash_algorithm, data).hexdigest()

    # -- pair comparison ----------------------------------------------------------

    def compare_pair(self, mod_a: ParsedModule,
                     mod_b: ParsedModule) -> PairComparison:
        """Compare one module between two VMs, region by region."""
        mismatched: list[str] = []
        rva_stats: dict[str, RvaAdjustStats] = {}
        cost = self.costs.compare_per_pair

        regions_a = {r.name: r for r in mod_a.header_regions}
        regions_b = {r.name: r for r in mod_b.header_regions}
        for name in regions_a.keys() | regions_b.keys():
            ra, rb = regions_a.get(name), regions_b.get(name)
            if ra is None or rb is None:
                mismatched.append(name)      # structural divergence
                continue
            data_a, data_b = mod_a.region_bytes(ra), mod_b.region_bytes(rb)
            cost += (len(data_a) + len(data_b)) * self.costs.hash_per_byte
            if self.digest(data_a) != self.digest(data_b):
                mismatched.append(name)

        code_a = {r.name: r for r in mod_a.code_regions}
        code_b = {r.name: r for r in mod_b.code_regions}
        for name in code_a.keys() | code_b.keys():
            ra, rb = code_a.get(name), code_b.get(name)
            if ra is None or rb is None:
                mismatched.append(name)
                continue
            data_a, data_b = mod_a.region_bytes(ra), mod_b.region_bytes(rb)
            if len(data_a) != len(data_b):
                mismatched.append(name)
                continue
            adj_a, adj_b, stats = self._adjust(
                data_a, mod_a.base, data_b, mod_b.base,
                max_rva=max(len(mod_a.image), len(mod_b.image)))
            rva_stats[name] = stats
            cost += 2 * len(data_a) * (self.costs.rva_scan_per_byte
                                       + self.costs.hash_per_byte)
            if self.digest(adj_a) != self.digest(adj_b):
                mismatched.append(name)

        self._charge(cost)
        order = mod_a.region_names()
        mismatched.sort(key=lambda n: order.index(n) if n in order else 999)
        pair = PairComparison(mod_a.vm_name, mod_b.vm_name,
                              tuple(mismatched), rva_stats)
        events = self.obs.events
        if events.enabled:
            events.emit("pair.compared", module=mod_a.module_name,
                        vm_a=pair.vm_a, vm_b=pair.vm_b,
                        matched=pair.matched,
                        mismatched=list(pair.mismatched_regions))
        return pair

    # -- voting ----------------------------------------------------------------------

    def check_target(self, target: ParsedModule,
                     others: list[ParsedModule]) -> VMCheckReport:
        """Linear mode: the target VM's module vs each other VM (Figs. 7/8)."""
        pairs = tuple(self.compare_pair(target, other) for other in others)
        matches = sum(1 for p in pairs if p.matched)
        return VMCheckReport(
            module_name=target.module_name, target_vm=target.vm_name,
            pairs=pairs, matches=matches, comparisons=len(pairs))

    def check_pool_canonical(self, modules: list[ParsedModule]) -> PoolReport:
        """O(t) pool check via canonicalisation (vs O(t²) pairwise).

        The paper's checker compares every pair. But RVA adjustment of
        a *clean* copy always yields the same base-independent bytes,
        so one pass suffices: adjust every VM against a single
        reference, digest the adjusted regions, and cluster the digest
        vectors — the majority cluster is clean, everyone else is
        flagged. Equivalent verdicts to :meth:`check_pool` whenever a
        strict majority of copies is pristine (the regime the paper's
        vote needs anyway); the A6 ablation measures the speedup.

        Synthesised ``PairComparison`` records cover reference↔VM pairs
        only (that is all this mode computes).

        Base collisions: RVA adjustment is driven by byte *differences*,
        so a VM that happens to share the reference's load base would
        come back untouched — raw relocated bytes whose digests can
        never match the RVA-normalised majority (a guaranteed false
        positive once pools are large enough for slide collisions).
        Such VMs are adjusted against a *partner* instead: the first
        pool member whose base differs. A clean copy reaches the same
        canonical bytes either way; only when every copy shares one
        base is no adjustment possible, and then raw digests cluster
        correctly on their own.
        """
        if not modules:
            return PoolReport(module_name="", vm_names=[], pairs=[],
                              verdicts={})
        reference = modules[0]
        partner = next((m for m in modules[1:] if m.base != reference.base),
                       None)
        names = [m.vm_name for m in modules]

        def region_vector(mod: ParsedModule, adjusted: dict[str, bytes],
                          ) -> tuple:
            items = []
            for region in mod.header_regions:
                items.append((region.name,
                              self.digest(mod.region_bytes(region))))
            for region in mod.code_regions:
                data = adjusted.get(region.name,
                                    mod.region_bytes(region))
                items.append((region.name, self.digest(data)))
            return tuple(sorted(items))

        vectors: dict[str, tuple] = {}
        pairs: list[PairComparison] = []
        ref_adjusted: dict[str, bytes] = {}
        for mod in modules[1:]:
            counterpart = (reference if mod.base != reference.base
                           else partner)
            adjusted: dict[str, bytes] = {}
            cost = self.costs.compare_per_pair
            code_ref = ({r.name: r for r in counterpart.code_regions}
                        if counterpart is not None else {})
            for region in mod.code_regions:
                ref_region = code_ref.get(region.name)
                if ref_region is None:
                    continue
                data_ref = counterpart.region_bytes(ref_region)
                data_mod = mod.region_bytes(region)
                if len(data_ref) != len(data_mod):
                    continue
                adj_ref, adj_mod, _stats = self._adjust(
                    data_ref, counterpart.base, data_mod, mod.base,
                    max_rva=max(len(counterpart.image), len(mod.image)))
                adjusted[region.name] = adj_mod
                if counterpart is reference:
                    ref_adjusted.setdefault(region.name, adj_ref)
                cost += 2 * len(data_mod) * (self.costs.rva_scan_per_byte
                                             + self.costs.hash_per_byte)
            self._charge(cost)
            vectors[mod.vm_name] = region_vector(mod, adjusted)
        vectors[reference.vm_name] = region_vector(reference, ref_adjusted)

        # Cluster by digest vector; majority cluster is clean.
        clusters: dict[tuple, list[str]] = {}
        for vm, vector in vectors.items():
            clusters.setdefault(vector, []).append(vm)
        majority = max(clusters.values(), key=len)
        t = len(modules)
        clean = {vm: (vm in majority and len(majority) > t / 2)
                 for vm in names}

        verdicts: dict[str, VMVerdict] = {}
        for vm in names:
            same = len(clusters[vectors[vm]]) - 1
            regions: tuple[str, ...] = ()
            if not clean[vm] and majority:
                ref_vec = dict(vectors[majority[0]])
                own = dict(vectors[vm])
                diff = [k for k in (own.keys() | ref_vec.keys())
                        if own.get(k) != ref_vec.get(k)]
                regions = tuple(sorted(diff))
            verdicts[vm] = VMVerdict(vm_name=vm, matches=same,
                                     comparisons=t - 1, clean=clean[vm],
                                     mismatched_regions=regions)
        for mod in modules[1:]:
            a, b = vectors[reference.vm_name], vectors[mod.vm_name]
            mism = tuple(sorted(
                k for k in (dict(a).keys() | dict(b).keys())
                if dict(a).get(k) != dict(b).get(k)))
            pair = PairComparison(reference.vm_name, mod.vm_name, mism)
            pairs.append(pair)
            events = self.obs.events
            if events.enabled:
                events.emit("pair.compared",
                            module=reference.module_name,
                            vm_a=pair.vm_a, vm_b=pair.vm_b,
                            matched=pair.matched,
                            mismatched=list(pair.mismatched_regions))
        return PoolReport(module_name=reference.module_name,
                          vm_names=names, pairs=pairs, verdicts=verdicts)

    def check_pool(self, modules: list[ParsedModule]) -> PoolReport:
        """Full cross-check: every pair once, then per-VM majority votes."""
        pairs: list[PairComparison] = []
        for i, mod_a in enumerate(modules):
            for mod_b in modules[i + 1:]:
                pairs.append(self.compare_pair(mod_a, mod_b))
        return self.vote(modules, pairs)

    def vote(self, modules: list[ParsedModule],
             pairs: list[PairComparison]) -> PoolReport:
        """Majority-vote already-computed pair comparisons into a report.

        Split from :meth:`check_pool` so callers that schedule the
        pairwise comparisons themselves (the parallel checker) can
        reuse the exact voting semantics.
        """
        names = [m.vm_name for m in modules]
        match_count = {name: 0 for name in names}
        for p in pairs:
            if p.matched:
                match_count[p.vm_a] += 1
                match_count[p.vm_b] += 1
        t = len(modules)
        clean = {name: match_count[name] > (t - 1) / 2 for name in names}

        verdicts: dict[str, VMVerdict] = {}
        for name in names:
            regions: list[str] = []
            for p in pairs:
                if p.involves(name) and clean.get(p.other(name), False):
                    for region in p.mismatched_regions:
                        if region not in regions:
                            regions.append(region)
            verdicts[name] = VMVerdict(
                vm_name=name, matches=match_count[name], comparisons=t - 1,
                clean=clean[name],
                mismatched_regions=tuple(regions) if not clean[name] else ())
        return PoolReport(module_name=modules[0].module_name if modules else "",
                          vm_names=names, pairs=pairs, verdicts=verdicts)
