"""Module-Searcher — the only component that touches guest memory.

Walks the guest's ``PsLoadedModuleList`` (paper Fig. 2, §IV-A): obtain
the head from the OS profile's exported global, follow ``FLINK``
pointers through ``LDR_DATA_TABLE_ENTRY`` nodes, resolve each node's
``BaseDllName`` UNICODE_STRING, and on a (case-insensitive) name match
copy the whole module image — ``SizeOfImage`` bytes from ``DllBase`` —
page by page into a local Dom0 buffer.

Defences a real introspection tool needs are kept: a traversal bound
(a malicious guest could loop the list), pointer sanity checks, and a
fault-tolerant name read (an unmapped name page skips the node rather
than crashing the checker).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import (IntrospectionFault, ModuleNotLoadedError,
                      RetryExhausted, TransientFault)
from ..guest.unicode_string import UnicodeString
from ..obs import NULL_OBS
from ..vmi.core import VMIInstance

__all__ = ["ModuleListEntry", "ModuleCopy", "ModuleSearcher"]

#: Bound on list traversal; XP loads well under this many modules.
MAX_LIST_WALK = 1024
#: Bound on a single module image; a corrupted SizeOfImage must not
#: make Dom0 copy gigabytes.
MAX_IMAGE_BYTES = 64 * 1024 * 1024
#: Copy granularity for images larger than one chunk. Every catalog
#: module fits in a single chunk, so the common case remains one
#: ``read_va`` call (byte-identical cost accounting); a hostile
#: SizeOfImage claim under the cap pays for at most one chunk of page
#: reads before the first unbacked VA faults the copy.
COPY_CHUNK_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ModuleListEntry:
    """One decoded node of the loaded-module list."""

    name: str
    dll_base: int
    entry_point: int
    size_of_image: int
    ldr_entry_va: int


@dataclass(frozen=True)
class ModuleCopy:
    """A module image copied out of one guest."""

    vm_name: str
    module_name: str
    base: int
    image: bytes
    ldr_entry_va: int


class ModuleSearcher:
    """Finds and extracts in-memory modules from one guest via VMI."""

    def __init__(self, vmi: VMIInstance) -> None:
        self.vmi = vmi
        # DumpAnalyzer quacks like a VMIInstance but carries no obs.
        self.obs = getattr(vmi, "obs", NULL_OBS)

    # -- list walking -----------------------------------------------------------

    def list_modules(self) -> list[ModuleListEntry]:
        """Decode every node of PsLoadedModuleList, in load order."""
        with self.obs.tracer.span("searcher.walk",
                                  vm=self.vmi.domain.name) as span:
            entries = self._walk_module_list()
            span.set(entries=len(entries))
        return entries

    def _walk_module_list(self) -> list[ModuleListEntry]:
        profile = self.vmi.profile
        head = self.vmi.symbol("PsLoadedModuleList")
        off_base = profile.offset("LDR_DATA_TABLE_ENTRY.DllBase")
        off_entry = profile.offset("LDR_DATA_TABLE_ENTRY.EntryPoint")
        off_size = profile.offset("LDR_DATA_TABLE_ENTRY.SizeOfImage")
        off_name = profile.offset("LDR_DATA_TABLE_ENTRY.BaseDllName")

        entries: list[ModuleListEntry] = []
        cursor = self.vmi.read_u32(head)            # head.FLINK
        steps = 0
        while cursor != head:
            steps += 1
            if steps > MAX_LIST_WALK:
                raise IntrospectionFault(
                    "PsLoadedModuleList walk exceeded bound "
                    f"({MAX_LIST_WALK}); list may be cyclic or corrupted")
            if cursor == 0:
                raise IntrospectionFault("NULL FLINK in module list")
            dll_base = self.vmi.read_u32(cursor + off_base)
            entry_point = self.vmi.read_u32(cursor + off_entry)
            size = self.vmi.read_u32(cursor + off_size)
            name = self._read_name(cursor + off_name)
            if name is not None:
                entries.append(ModuleListEntry(name, dll_base, entry_point,
                                               size, cursor))
            cursor = self.vmi.read_u32(cursor)      # node.FLINK
        return entries

    def _read_name(self, us_va: int) -> str | None:
        try:
            us = UnicodeString.unpack(self.vmi.read_va(us_va,
                                                       UnicodeString.SIZE))
            if us.buffer == 0 or us.length == 0 or us.length > 512:
                return None
            return us.decode(self.vmi.read_va(us.buffer, us.length))
        except IntrospectionFault:
            return None

    # -- incremental fast path ---------------------------------------------------

    def verify_cached_entry(self, ldr_entry_va: int, *, dll_base: int,
                            size_of_image: int) -> bool:
        """Re-validate a previously seen LDR entry without a list walk.

        The incremental pipeline's replacement for :meth:`find`: six
        u32 reads instead of decoding the whole list. True iff the node
        still describes the same mapping (``DllBase``/``SizeOfImage``
        unchanged) *and* is still linked — both neighbours must point
        back at it. The neighbour check matters: a DKOM unlink rewires
        ``pred.FLINK``/``succ.BLINK`` around the node while leaving the
        node's own fields intact, so base/size alone would keep serving
        manifest hits for a module the full walk no longer sees.

        Transient faults propagate (the caller degrades the VM exactly
        as the full path would); a permanent :class:`IntrospectionFault`
        means the entry is gone — report False and let the full walk
        decide.
        """
        profile = self.vmi.profile
        off_base = profile.offset("LDR_DATA_TABLE_ENTRY.DllBase")
        off_size = profile.offset("LDR_DATA_TABLE_ENTRY.SizeOfImage")
        try:
            if self.vmi.read_u32(ldr_entry_va + off_base) != dll_base:
                return False
            if self.vmi.read_u32(ldr_entry_va + off_size) != size_of_image:
                return False
            succ = self.vmi.read_u32(ldr_entry_va)          # node.FLINK
            pred = self.vmi.read_u32(ldr_entry_va + 4)      # node.BLINK
            if succ == 0 or pred == 0:
                return False
            if self.vmi.read_u32(succ + 4) != ldr_entry_va:  # succ.BLINK
                return False
            if self.vmi.read_u32(pred) != ldr_entry_va:      # pred.FLINK
                return False
        except (TransientFault, RetryExhausted):
            raise       # sick VM: degrade, exactly like the full path
        except IntrospectionFault:
            return False
        return True

    # -- extraction ----------------------------------------------------------------

    def find(self, module_name: str) -> ModuleListEntry:
        """Locate a module by BaseDllName (case-insensitive)."""
        wanted = module_name.lower()
        for entry in self.list_modules():
            if entry.name.lower() == wanted:
                return entry
        raise ModuleNotLoadedError(
            f"{module_name!r} not in {self.vmi.domain.name}'s module list")

    def copy_module(self, module_name: str) -> ModuleCopy:
        """Find the module and copy its whole image into a local buffer.

        When the VMI session carries a :class:`~repro.vmi.retry.RetryPolicy`,
        a copy whose page-level retry budget is spent mid-image is retried
        *as a whole* up to ``module_attempts`` times — a fresh walk-and-copy
        usually lands after a fault window has closed. Failing all attempts,
        the last fault propagates (the pool layer degrades the VM).

        The image read itself goes through ``vmi.read_va``, so on a
        ``batch=True`` session (the default) the whole multi-page copy
        is served by the vectorised acquisition path — one walk pass,
        one frame gather — with byte- and accounting-identical results
        to the per-page loop (``batch=False``). The list *walk* that
        finds the entry stays scalar either way: it is a pointer chase
        of 4-byte reads, where batching has nothing to gather.
        """
        retry = getattr(self.vmi, "retry", None)
        attempts = retry.module_attempts if retry is not None else 1
        for attempt in range(attempts):
            try:
                return self._copy_module_once(module_name)
            except (TransientFault, RetryExhausted):
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _copy_module_once(self, module_name: str) -> ModuleCopy:
        """One walk-find-copy attempt (no module-level retry)."""
        with self.obs.tracer.span("searcher.copy", vm=self.vmi.domain.name,
                                  module=module_name) as span:
            entry = self.find(module_name)
            if not (0 < entry.size_of_image <= MAX_IMAGE_BYTES):
                raise IntrospectionFault(
                    f"{module_name}: implausible SizeOfImage "
                    f"{entry.size_of_image:#x}")
            image = self._read_image(entry)
            span.set(bytes=len(image))
        return ModuleCopy(self.vmi.domain.name, entry.name, entry.dll_base,
                          image, entry.ldr_entry_va)

    def _read_image(self, entry: ModuleListEntry) -> bytes:
        """Copy ``SizeOfImage`` bytes from ``DllBase``, chunked.

        A guest-controlled size that passed the plausibility cap can
        still vastly overstate the mapped image; chunking means Dom0
        commits to at most :data:`COPY_CHUNK_BYTES` of page reads
        before the first unbacked VA aborts the copy with a clean
        :class:`IntrospectionFault`.
        """
        size = entry.size_of_image
        if size <= COPY_CHUNK_BYTES:
            return self.vmi.read_va(entry.dll_base, size)
        parts: list[bytes] = []
        for off in range(0, size, COPY_CHUNK_BYTES):
            n = min(COPY_CHUNK_BYTES, size - off)
            try:
                parts.append(self.vmi.read_va(entry.dll_base + off, n))
            except IntrospectionFault as exc:
                raise IntrospectionFault(
                    f"{entry.name}: SizeOfImage {size:#x} is not backed "
                    f"past offset {off:#x}: {exc}") from exc
        return b"".join(parts)
