"""ModChecker — orchestration of Searcher → Parser → Integrity-Checker.

The top-level object a Dom0 operator uses (paper Fig. 1): attach to a
pool of guests through VMI, then either

* :meth:`check_on_vm` — verify one VM's copy of a module against the
  other ``t-1`` VMs (the linear-cost mode whose runtime the paper's
  Figs. 7/8 measure), or
* :meth:`check_pool` — cross-check every VM against every other and
  majority-vote each one (the detection experiments E1–E4), or
* :meth:`check_all_modules` — sweep the whole loaded-module list.

Component timings are taken from the simulated clock around each phase,
yielding the Searcher/Parser/Checker breakdown the paper plots.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, NamedTuple

from ..errors import (DomainNotFound, InsufficientPool, IntrospectionFault,
                      ModuleNotLoadedError, RetryExhausted, TransientFault,
                      VMIInitError)
from ..hypervisor.xen import Hypervisor
from ..mem.physical import PAGE_SIZE
from ..obs import (NULL_OBS, Observability, record_fault_stats,
                   record_manifest_stats, record_pool_report,
                   record_repair_stats, record_stage_timings,
                   record_trap_stats, record_vmi_instance)
from ..perf.costmodel import DEFAULT_COST_MODEL, CostModel
from ..perf.timing import ComponentTimings
from ..vmi.cache import CheckManifest, LRUCache, ManifestStore
from ..vmi.core import VMIInstance, VMIStats
from ..vmi.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..vmi.symbols import OSProfile
from .integrity import IntegrityChecker
from .parser import ModuleParser, ParsedModule
from .report import PairComparison, PoolReport, VMCheckReport
from .searcher import ModuleSearcher

if TYPE_CHECKING:
    from ..forensics.evidence import EvidenceRecorder

__all__ = ["ModChecker", "CheckOutcome", "PoolOutcome", "FetchResult"]


def _page_digests(image: bytes) -> tuple[bytes, ...]:
    """Per-page MD5 digests of a local image buffer.

    Must agree with :meth:`Hypervisor.checksum_guest_frame` over the
    same content, so a short tail chunk is zero-padded to a full page
    (the guest loader zero-fills the remainder of the last frame).
    """
    out = []
    for off in range(0, len(image), PAGE_SIZE):
        chunk = image[off:off + PAGE_SIZE]
        if len(chunk) < PAGE_SIZE:
            chunk = chunk + b"\x00" * (PAGE_SIZE - len(chunk))
        out.append(hashlib.md5(chunk).digest())
    return tuple(out)


def _content_key(base: int, size: int, digests: tuple[bytes, ...]) -> str:
    """The content address of one acquisition: digest over (placement,
    per-page digests). Two copies share a key iff their bytes *and*
    load base agree — exactly the inputs ``compare_pair`` is a pure
    function of, which is what makes pair replay sound."""
    h = hashlib.md5(f"{base:#x}:{size:#x}".encode())
    for digest in digests:
        h.update(digest)
    return h.hexdigest()


@dataclass(frozen=True)
class _AcqMeta:
    """Per-VM bookkeeping for one fetch round (incremental mode)."""

    ldr_entry_va: int
    base: int
    size: int
    boot_generation: int
    digests: tuple[bytes, ...]
    content_key: str
    parsed: ParsedModule
    from_manifest: bool


@dataclass
class _Protection:
    """Armed write-protection state for one (vm, module) manifest.

    ``page_gfns`` parallels the manifest's ``page_digests`` (None =
    unprotectable, stays on the sweep path); ``guard_gfns`` cover the
    LDR entry node and both list neighbours, so any relink that
    :meth:`ModuleSearcher.verify_cached_entry` could catch necessarily
    raises a trap first — which is what makes *skipping* the entry
    re-verify on trap silence sound.
    """

    base: int
    size: int
    boot_generation: int
    #: the domain's protection_epoch at arm time; a mismatch later
    #: means a lifecycle event disarmed everything behind our back
    epoch: int
    page_gfns: tuple[int | None, ...]
    #: gfn -> manifest page index (protected pages only)
    page_index: dict[int, int]
    #: manifest page indices that could not be armed (swept every round)
    unprotected: tuple[int, ...]
    #: guard frames, with multiplicity (protections are refcounted)
    guard_gfns: tuple[int, ...]
    dirty_pages: set[int] = field(default_factory=set)
    guard_dirty: bool = False
    #: the trap ring overflowed since our last look: silence proves
    #: nothing, the next validation must sweep everything
    overflowed: bool = False
    validations: int = 0


@dataclass
class CheckOutcome:
    """A single-target check plus its component timing breakdown."""

    report: VMCheckReport
    timings: ComponentTimings
    per_vm_searcher: dict[str, float] = field(default_factory=dict)


@dataclass
class PoolOutcome:
    """A full pool cross-check plus its timing breakdown.

    ``remediations`` carries one :class:`~repro.core.repair.
    RemediationRecord` per flagged VM when a repair policy is active
    (empty under ``detect-only`` and for the repair engine's own
    re-verification checks).
    """

    report: PoolReport
    timings: ComponentTimings
    per_vm_searcher: dict[str, float] = field(default_factory=dict)
    remediations: list = field(default_factory=list)


class FetchResult(NamedTuple):
    """Outcome of the acquisition phase over a VM pool.

    ``failed`` maps VMs whose copy could not be acquired to a reason
    string prefixed with a category: ``retry-exhausted:`` when the
    retry budget was spent on transient faults (the VM is likely sick —
    quarantine material), ``unreadable:`` for a permanent introspection
    failure of this one module (e.g. a decoy entry's unbacked DllBase).
    VMs that simply do not have the module loaded appear in neither
    ``parsed`` nor ``failed``. Prefer ``parsed, *rest = fetch_modules(...)``
    when only the copies matter.
    """

    parsed: list[ParsedModule]
    timings: ComponentTimings
    per_vm_searcher: dict[str, float]
    failed: dict[str, str]


class ModChecker:
    """Kernel-module integrity checker over a pool of cloned guests."""

    def __init__(self, hypervisor: Hypervisor,
                 profile: OSProfile | None = None, *,
                 rva_mode: str = "robust",
                 hash_algorithm: str = "md5",
                 enable_caches: bool = True,
                 flush_caches_each_round: bool = True,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 retry: RetryPolicy | None = DEFAULT_RETRY_POLICY,
                 obs: Observability = NULL_OBS,
                 evidence: "EvidenceRecorder | None" = None,
                 incremental: bool = False,
                 recheck_ttl: float | None = None,
                 manifest_capacity: int = 1024,
                 event_driven: bool = False,
                 paranoia_every: int | None = 64,
                 repair_policy: str = "detect-only",
                 repair_max_attempts: int = 3,
                 batch: bool = True,
                 members: "Callable[[], list[str]] | None" = None) -> None:
        self.hv = hypervisor
        #: vectorised acquisition for every VMI session this checker
        #: opens; ``batch=False`` pins the pool to the scalar reference
        #: path (the differential harness's control arm)
        self.batch = batch
        #: optional membership closure: when set, the checker's pool is
        #: whatever names the closure returns *right now* instead of
        #: every guest on the hypervisor. This is how a fleet shard
        #: scopes its checker to the shard's own VMs while sharing one
        #: hypervisor with every sibling shard.
        self.members = members
        if profile is None:
            guests = hypervisor.guests()
            if not guests:
                raise InsufficientPool("no guests to derive a profile from")
            profile = OSProfile.from_guest(guests[0].kernel)
        self.profile = profile
        self.costs = cost_model
        self.enable_caches = enable_caches
        self.flush_caches_each_round = flush_caches_each_round
        self.retry = retry
        self.obs = obs
        #: forensic capture hook; bundles materialise only when a pool
        #: verdict is non-clean, so the clean path never pays for it
        self.evidence = evidence
        #: incremental mode: content-addressed manifests let unchanged
        #: modules skip the walk/copy/parse/compare pipeline entirely
        self.incremental = incremental or event_driven
        #: event-driven mode (implies incremental): committed manifests
        #: write-protect their pages, and later validations check only
        #: what trapped — O(writes) instead of O(pages) at steady state
        self.event_driven = event_driven
        #: force a full entry-verify + sweep every N trap validations
        #: (None/0 disables): a cheap hedge against any write path the
        #: trap model does not observe
        self.paranoia_every = paranoia_every
        #: (vm, module) -> armed protection state
        self._protections: dict[tuple[str, str], _Protection] = {}
        #: trap-path accounting (cumulative; published by the metrics)
        self.trap_validations = 0
        self.trap_pages_checked = 0
        self.trap_fallbacks: dict[str, int] = {}
        self.recheck_ttl = recheck_ttl
        self.manifests = ManifestStore(manifest_capacity, ttl=recheck_ttl)
        #: (module, vm_a, vm_b) -> (key_a, key_b, PairComparison);
        #: replayed only when both content keys still match, so a
        #: stale pair is unreachable rather than merely evicted
        self._pair_cache: LRUCache[tuple[str, str, str],
                                   tuple[str, str, PairComparison]] = \
            LRUCache(8192)
        #: pairwise comparisons served from the replay cache (cumulative)
        self.pair_replays = 0
        #: per-fetch acquisition metadata, reset by every fetch round
        self._acq_meta: dict[str, _AcqMeta] = {}
        self._vmis: dict[str, VMIInstance] = {}
        #: per-VM counters folded in from retired sessions, so the
        #: cumulative VMI metrics survive re-attach (reboot churn)
        #: without ever running backwards
        self._vmi_stats_base: dict[str, "VMIStats"] = {}
        self.parser = ModuleParser(cost_model=cost_model,
                                   charge=self._charge, obs=obs)
        self.checker = IntegrityChecker(rva_mode=rva_mode,
                                        hash_algorithm=hash_algorithm,
                                        cost_model=cost_model,
                                        charge=self._charge, obs=obs)
        # Imported here, not at module top: repair pulls in the
        # forensics package, whose bundle machinery reaches back into
        # core types.
        from .repair import REPAIR_POLICIES, RepairEngine
        if repair_policy not in REPAIR_POLICIES:
            raise ValueError(f"unknown repair policy {repair_policy!r}; "
                             f"expected one of {REPAIR_POLICIES}")
        #: "detect-only" keeps verdicts as alerts; "repair" and
        #: "quarantine-on-repeat-failure" attach a RepairEngine that
        #: writes flagged modules back to the majority's clean image
        self.repair_policy = repair_policy
        self.repair: RepairEngine | None = None
        if repair_policy != "detect-only":
            self.repair = RepairEngine(
                self, max_attempts=repair_max_attempts,
                quarantine=repair_policy == "quarantine-on-repeat-failure")
        #: re-entrancy guard: the repair engine's re-verification runs
        #: through check_pool and must not trigger nested remediation
        #: (or a second evidence capture for the same incident)
        self._in_repair = False

    def _charge(self, cpu_seconds: float) -> None:
        self.hv.charge_dom0(cpu_seconds)

    # -- VMI session management ------------------------------------------------------

    def _retire_vmi(self, vm_name: str) -> None:
        """Drop a session, preserving its counters for the metrics."""
        vmi = self._vmis.pop(vm_name, None)
        if vmi is None:
            return
        base = self._vmi_stats_base.setdefault(vm_name, VMIStats())
        for name, value in vars(vmi.stats).items():
            setattr(base, name, getattr(base, name) + value)

    def vmi_for(self, vm_name: str) -> VMIInstance:
        vmi = self._vmis.get(vm_name)
        if vmi is not None and self._vmi_stale(vm_name, vmi):
            self._retire_vmi(vm_name)
            vmi = None
        if vmi is None:
            vmi = VMIInstance(self.hv, vm_name, self.profile,
                              cost_model=self.costs,
                              enable_caches=self.enable_caches,
                              retry=self.retry, batch=self.batch,
                              obs=self.obs)
            self._vmis[vm_name] = vmi
        return vmi

    def _vmi_stale(self, vm_name: str, vmi: VMIInstance) -> bool:
        """A cached session is stale when its guest rebooted (the CR3
        and page tables it captured at attach are gone) or the name now
        resolves to a different domain (destroy + create)."""
        try:
            domain = self.hv.domain(vm_name)
        except DomainNotFound:
            return True     # re-attach will raise VMIInitError cleanly
        return (domain is not vmi.domain
                or domain.boot_generation != vmi.boot_generation)

    # -- pool membership -------------------------------------------------------

    def admit_vm(self, vm_name: str) -> None:
        """A VM joined (or re-joined) the pool: drop any stale session.

        The next :meth:`vmi_for` re-attaches against the domain's
        current boot generation. Any manifests for the VM go too — an
        (re-)admission means we no longer know what is in its memory.
        """
        self._retire_vmi(vm_name)
        self.invalidate_manifests(vm_name, reason="admit")

    def evict_vm(self, vm_name: str) -> None:
        """A VM left the pool: release its introspection session."""
        self._retire_vmi(vm_name)
        self.invalidate_manifests(vm_name, reason="evict")

    # -- incremental manifests -------------------------------------------------

    def invalidate_manifests(self, vm_name: str | None = None,
                             module_name: str | None = None, *,
                             reason: str) -> int:
        """Drop cached manifests (all / one VM / one (vm, module)).

        The invalidation surface of the incremental pipeline: called on
        membership changes (``admit``/``evict``), on a flagged verdict
        (``flagged``), on content drift detected by the sweep
        (``page-delta``/``entry-moved``), and by the daemon on breaker
        trips (``breaker``) and migration completions (``migration``).
        Emits one ``manifest.invalidated`` audit event when anything
        was actually removed.
        """
        removed = self.manifests.invalidate(vm_name, module_name,
                                            reason=reason)
        if self.event_driven:
            # Protections exist to keep a manifest honest; a manifest
            # that no longer exists must not keep frames protected (and
            # a protection may outlive its manifest, e.g. LRU eviction,
            # so this does not condition on ``removed``).
            for key in [k for k in self._protections
                        if (vm_name is None or k[0] == vm_name)
                        and (module_name is None or k[1] == module_name)]:
                self._drop_protection(*key)
        if removed:
            events = self.obs.events
            if events.enabled:
                events.emit("manifest.invalidated",
                            vm=vm_name or "*", module=module_name or "*",
                            reason=reason, entries=removed)
        return removed

    def _try_manifest(self, vmi: VMIInstance, searcher: ModuleSearcher,
                      module_name: str) -> ParsedModule | None:
        """The incremental fast path for one VM, or None for full work.

        Three gates, cheapest first: a structurally valid manifest
        (generation + TTL, free), the LDR entry still in place (six
        u32 reads), and the per-page checksum sweep (every page is
        still observed every round — the sweep is how tampering is
        caught; what it skips is the copy/parse/compare machinery, not
        the looking). Any mismatch invalidates and reports None, and
        the caller runs the full pipeline in the same round.

        In event-driven mode the second and third gates are replaced by
        the trap protocol (:meth:`_try_manifest_event`): the looking is
        delegated to write traps, so an unchanged module costs one
        empty ring drain instead of an O(pages) sweep.
        """
        vm_name = vmi.domain.name
        manifest = self.manifests.lookup(
            vm_name, module_name,
            boot_generation=vmi.boot_generation, now=self.hv.clock.now)
        if manifest is None:
            if self.event_driven:
                # generation/TTL/eviction miss: whatever was armed no
                # longer matches anything we can validate against
                self._drop_protection(vm_name, module_name)
            return None
        if self.event_driven:
            return self._try_manifest_event(vmi, searcher, module_name,
                                            manifest)
        if not self._verify_entry(vmi, searcher, module_name, manifest):
            return None
        if not self._sweep_matches(vmi, module_name, manifest):
            return None
        return self._manifest_hit(vmi, module_name, manifest,
                                  pages=len(manifest.page_digests))

    def _verify_entry(self, vmi: VMIInstance, searcher: ModuleSearcher,
                      module_name: str, manifest: CheckManifest) -> bool:
        """Gate 2: the LDR entry still describes the same mapping."""
        if not searcher.verify_cached_entry(manifest.ldr_entry_va,
                                            dll_base=manifest.base,
                                            size_of_image=manifest.size):
            self.invalidate_manifests(vmi.domain.name, module_name,
                                      reason="entry-moved")
            return False
        return True

    def _sweep_matches(self, vmi: VMIInstance, module_name: str,
                       manifest: CheckManifest) -> bool:
        """Gate 3: the full per-page checksum sweep."""
        vm_name = vmi.domain.name
        try:
            digests = vmi.checksum_va_range(manifest.base, manifest.size)
        except (TransientFault, RetryExhausted):
            raise       # sick VM: the caller degrades it
        except IntrospectionFault:
            # a page of the recorded range no longer translates — a
            # content change as far as the manifest is concerned; fall
            # back to the full walk, which sees the current truth
            self.invalidate_manifests(vm_name, module_name,
                                      reason="page-delta")
            return False
        if digests != manifest.page_digests:
            self.invalidate_manifests(vm_name, module_name,
                                      reason="page-delta")
            return False
        return True

    def _manifest_hit(self, vmi: VMIInstance, module_name: str,
                      manifest: CheckManifest, *,
                      pages: int) -> ParsedModule:
        """Serve a validated manifest (``pages`` = pages re-digested)."""
        self._acq_meta[vmi.domain.name] = _AcqMeta(
            ldr_entry_va=manifest.ldr_entry_va, base=manifest.base,
            size=manifest.size, boot_generation=manifest.boot_generation,
            digests=manifest.page_digests,
            content_key=manifest.content_key, parsed=manifest.parsed,
            from_manifest=True)
        events = self.obs.events
        if events.enabled:
            events.emit("manifest.hit", vm=vmi.domain.name,
                        module=module_name, pages=pages)
        return manifest.parsed

    # -- event-driven mode (write-protection traps) ----------------------------

    def _try_manifest_event(self, vmi: VMIInstance,
                            searcher: ModuleSearcher, module_name: str,
                            manifest: CheckManifest,
                            ) -> ParsedModule | None:
        """Validate a manifest from trap evidence instead of a sweep.

        Steady state — armed protection, empty ring — costs a single
        drain. Traps narrow the work: a guard trap re-runs the LDR
        entry verify, an image trap re-digests exactly the written
        pages. The full sweep remains the fallback whenever silence is
        not trustworthy (ring overflow, a lifecycle protection drop,
        the periodic paranoia re-sweep) and for pages that could never
        be armed; fallbacks emit ``trap.fallback`` with the reason.
        """
        vm_name = vmi.domain.name
        self._route_traps(vmi)
        rec = self._protections.get((vm_name, module_name))
        if rec is not None and (rec.boot_generation
                                != manifest.boot_generation
                                or rec.base != manifest.base
                                or rec.size != manifest.size):
            # armed against a different incarnation of the manifest
            self._drop_protection(vm_name, module_name)
            rec = None
        if rec is not None and rec.epoch != vmi.domain.protection_epoch:
            # reboot/migrate-finish disarmed everything behind our
            # back; traps could not have fired, so silence means nothing
            self._fallback(vm_name, module_name, "lifecycle")
            self._drop_protection(vm_name, module_name)
            rec = None
        if rec is None:
            # nothing armed: classic gates now, arm on success
            if not self._verify_entry(vmi, searcher, module_name, manifest):
                return None
            if not self._sweep_matches(vmi, module_name, manifest):
                return None
            self._arm_protection(vmi, module_name, manifest)
            return self._manifest_hit(vmi, module_name, manifest,
                                      pages=len(manifest.page_digests))
        rec.validations += 1
        paranoia_due = bool(self.paranoia_every) \
            and rec.validations % self.paranoia_every == 0
        if rec.overflowed or paranoia_due:
            self._fallback(vm_name, module_name,
                           "exhausted" if rec.overflowed else "paranoia")
            if not self._verify_entry(vmi, searcher, module_name, manifest):
                return None
            if not self._sweep_matches(vmi, module_name, manifest):
                return None
            if rec.guard_dirty:
                self._refresh_guards(vmi, rec, manifest)
            rec.overflowed = False
            rec.guard_dirty = False
            rec.dirty_pages.clear()
            return self._manifest_hit(vmi, module_name, manifest,
                                      pages=len(manifest.page_digests))
        if rec.guard_dirty:
            # someone wrote near the LDR node: re-run the entry verify
            # and re-derive the guards (the neighbours may have moved)
            if not self._verify_entry(vmi, searcher, module_name, manifest):
                return None
            self._refresh_guards(vmi, rec, manifest)
            rec.guard_dirty = False
        pages = rec.dirty_pages | set(rec.unprotected)
        checked = 0
        if pages:
            if rec.unprotected:
                self._fallback(vm_name, module_name, "unprotectable")
            try:
                digests = vmi.checksum_pages(manifest.base, manifest.size,
                                             pages)
            except (TransientFault, RetryExhausted):
                raise   # sick VM: the caller degrades it
            except IntrospectionFault:
                self.invalidate_manifests(vm_name, module_name,
                                          reason="page-delta")
                return None
            for idx, digest in digests.items():
                if digest != manifest.page_digests[idx]:
                    self.invalidate_manifests(vm_name, module_name,
                                              reason="page-delta")
                    return None
            checked = len(digests)
            self.trap_pages_checked += checked
            rec.dirty_pages.clear()
        self.trap_validations += 1
        return self._manifest_hit(vmi, module_name, manifest,
                                  pages=checked)

    def _route_traps(self, vmi: VMIInstance) -> None:
        """Drain one VM's trap ring and mark every affected protection.

        Routing, not consumption: a guard page may back the LDR nodes
        of several modules and an overflow taints every protection on
        the VM, so each drained trap updates *all* matching records.
        """
        traps, overflowed = vmi.drain_traps()
        self.route_drained_traps(vmi.domain.name, traps, overflowed)

    def route_drained_traps(self, vm_name: str, traps, overflowed: bool,
                            ) -> None:
        """Route traps a caller already drained into the protections.

        The repair engine drains the ring itself (it needs the trap
        list to count writes racing its armed window) and hands the
        drain here so other modules' protections on the same VM still
        observe those writes.
        """
        if not traps and not overflowed:
            return
        for (rec_vm, _mod), rec in self._protections.items():
            if rec_vm != vm_name:
                continue
            if overflowed:
                rec.overflowed = True
            for trap in traps:
                idx = rec.page_index.get(trap.gfn)
                if idx is not None:
                    rec.dirty_pages.add(idx)
                if trap.gfn in rec.guard_gfns:
                    rec.guard_dirty = True
        events = self.obs.events
        if events.enabled:
            events.emit("trap.delivered", vm=vm_name, traps=len(traps),
                        writes=sum(t.writes for t in traps),
                        overflowed=overflowed)

    def _arm_protection(self, vmi: VMIInstance, module_name: str,
                        manifest: CheckManifest) -> None:
        """Write-protect a freshly validated manifest (best effort).

        Arms the image range plus the LDR guard pages. A guest that
        faults mid-arming simply stays on the sweep path — protections
        are an optimisation, never a correctness dependency.
        """
        vm_name = vmi.domain.name
        epoch = vmi.domain.protection_epoch
        try:
            page_gfns = vmi.protect_va_range(manifest.base, manifest.size)
            guard_gfns = self._protect_guards(vmi, manifest)
        except IntrospectionFault:
            self._drop_protection(vm_name, module_name)
            return
        rec = _Protection(
            base=manifest.base, size=manifest.size,
            boot_generation=manifest.boot_generation, epoch=epoch,
            page_gfns=page_gfns,
            page_index={gfn: i for i, gfn in enumerate(page_gfns)
                        if gfn is not None},
            unprotected=tuple(i for i, gfn in enumerate(page_gfns)
                              if gfn is None),
            guard_gfns=guard_gfns)
        self._protections[(vm_name, module_name)] = rec
        events = self.obs.events
        if events.enabled:
            events.emit("trap.protected", vm=vm_name, module=module_name,
                        pages=len(rec.page_index) + len(guard_gfns),
                        unprotectable=len(rec.unprotected))

    def _protect_guards(self, vmi: VMIInstance,
                        manifest: CheckManifest) -> tuple[int, ...]:
        """Arm the frames every ``verify_cached_entry`` read touches.

        The entry node (through its largest verified field) plus both
        neighbours' LIST_ENTRY heads: any relink the verify could
        detect must write one of these, so a clean ring soundly skips
        the verify. Returned with multiplicity — protections refcount,
        and shared frames must be released as many times as armed.
        """
        entry = manifest.ldr_entry_va
        entry_span = vmi.profile.offset("LDR_DATA_TABLE_ENTRY.size")
        succ = vmi.read_u32(entry)          # node.FLINK
        pred = vmi.read_u32(entry + 4)      # node.BLINK
        list_span = vmi.profile.offset("LIST_ENTRY.size")
        gfns: list[int] = []
        for va, span in ((entry, entry_span), (succ, list_span),
                         (pred, list_span)):
            gfns.extend(g for g in vmi.protect_va_range(va, span)
                        if g is not None)
        return tuple(gfns)

    def _refresh_guards(self, vmi: VMIInstance, rec: _Protection,
                        manifest: CheckManifest) -> None:
        """Re-derive the guard set after a verified guard write (the
        neighbours may legitimately have changed, e.g. another module
        loaded or unloaded next to ours)."""
        for gfn in rec.guard_gfns:
            self.hv.unprotect_guest_frame(vmi.domain.name, gfn)
        rec.guard_gfns = self._protect_guards(vmi, manifest)

    def _drop_protection(self, vm_name: str, module_name: str) -> None:
        """Disarm and forget one protection record (refcount-correct).

        Forgiving about the domain being gone — the hypervisor already
        bulk-dropped the frames on destroy, and ``unprotect`` treats a
        missing domain or frame as a no-op.
        """
        rec = self._protections.pop((vm_name, module_name), None)
        if rec is None:
            return
        for gfn in rec.page_gfns:
            if gfn is not None:
                self.hv.unprotect_guest_frame(vm_name, gfn)
        for gfn in rec.guard_gfns:
            self.hv.unprotect_guest_frame(vm_name, gfn)

    def _fallback(self, vm_name: str, module_name: str,
                  reason: str) -> None:
        """Account one fall-back to sweep work (taxonomy: ``exhausted``
        / ``paranoia`` / ``lifecycle`` / ``unprotectable``)."""
        self.trap_fallbacks[reason] = self.trap_fallbacks.get(reason, 0) + 1
        events = self.obs.events
        if events.enabled:
            events.emit("trap.fallback", vm=vm_name, module=module_name,
                        reason=reason)

    def pending_trap_modules(self, vm_names: list[str]) -> list[str]:
        """Drain the given VMs' rings; name the modules needing work.

        The daemon's subscription hook: called at the top of a cycle so
        modules with trapped writes can be re-checked *ahead of* the
        policy rotation instead of waiting their turn. Ring peeks are
        free; only VMs with pending traps pay for a drain. Routed
        state persists on the protection records, so the subsequent
        per-module validation sees exactly what was drained here.
        """
        if not self.event_driven:
            return []
        eligible = set(vm_names)
        for vm_name in vm_names:
            if self.hv.traps.pending(vm_name) == 0:
                continue
            try:
                self._route_traps(self.vmi_for(vm_name))
            except VMIInitError:
                continue    # vanished domain: membership will reconcile
        return sorted({module for (vm, module), rec
                       in self._protections.items()
                       if vm in eligible
                       and (rec.dirty_pages or rec.guard_dirty
                            or rec.overflowed)})

    def _note_acquisition(self, vmi: VMIInstance, copy,
                          parsed: ParsedModule) -> None:
        """Content-address a full acquisition (incremental mode only).

        The per-page digests are computed over the local buffer just
        copied out (charged at ``hash_per_byte``, which is noise next
        to the copy itself) and become the candidate manifest —
        committed only if this round's verdict comes back clean.
        """
        digests = _page_digests(copy.image)
        self._charge(len(copy.image) * self.costs.hash_per_byte)
        self._acq_meta[copy.vm_name] = _AcqMeta(
            ldr_entry_va=copy.ldr_entry_va, base=copy.base,
            size=len(copy.image), boot_generation=vmi.boot_generation,
            digests=digests,
            content_key=_content_key(copy.base, len(copy.image), digests),
            parsed=parsed, from_manifest=False)

    def _compare_or_replay(self, mod_a: ParsedModule,
                           mod_b: ParsedModule) -> PairComparison:
        """One pairwise comparison, replayed from cache when sound.

        ``compare_pair`` is a pure function of (bytes, base) on both
        sides; the content keys pin exactly those inputs, so a cached
        :class:`PairComparison` whose keys both still match is the
        comparison — byte-for-byte, including its ``rva_stats`` — at
        zero simulated cost. The replay emits the same ``pair.compared``
        audit event the computed path would.
        """
        meta_a = self._acq_meta.get(mod_a.vm_name)
        meta_b = self._acq_meta.get(mod_b.vm_name)
        if meta_a is not None and meta_b is not None:
            key = (mod_a.module_name, mod_a.vm_name, mod_b.vm_name)
            cached = self._pair_cache.peek(key)
            if (cached is not None and cached[0] == meta_a.content_key
                    and cached[1] == meta_b.content_key):
                pair = cached[2]
                self.pair_replays += 1
                events = self.obs.events
                if events.enabled:
                    events.emit("pair.compared", module=mod_a.module_name,
                                vm_a=pair.vm_a, vm_b=pair.vm_b,
                                matched=pair.matched,
                                mismatched=list(pair.mismatched_regions))
                return pair
        pair = self.checker.compare_pair(mod_a, mod_b)
        if meta_a is not None and meta_b is not None:
            self._pair_cache.put(
                (mod_a.module_name, mod_a.vm_name, mod_b.vm_name),
                (meta_a.content_key, meta_b.content_key, pair))
        return pair

    def _update_manifests(self, module_name: str,
                          report: PoolReport) -> None:
        """Commit/invalidate manifests from one pool verdict.

        Manifests record hashes *from the last clean verdict*: a fully
        re-acquired copy is committed only when its VM voted clean; a
        flagged VM's manifest is dropped so it can never serve a hit
        while suspect. A sweep hit keeps its manifest untouched — in
        particular ``verified_at`` is NOT refreshed, so the recheck TTL
        measures time since the last *full* verification and a
        tampered-then-restored page cannot hide behind matching
        checksums forever.
        """
        now = self.hv.clock.now
        for vm_name, verdict in report.verdicts.items():
            meta = self._acq_meta.get(vm_name)
            if meta is None:
                continue
            if not verdict.clean:
                self.invalidate_manifests(vm_name, module_name,
                                          reason="flagged")
                continue
            if meta.from_manifest:
                continue
            if meta.base % PAGE_SIZE:
                # a frame-granular sweep cannot address an image whose
                # *base* is unaligned; leave such modules on the full
                # path forever. An unaligned *size* is fine: the tail
                # digest is masked to the in-image bytes at both commit
                # (``_page_digests`` zero-pads) and sweep time
                # (``checksum_va_range`` scopes the final frame).
                continue
            manifest = CheckManifest(
                vm_name=vm_name, module_name=module_name,
                boot_generation=meta.boot_generation, base=meta.base,
                size=meta.size, ldr_entry_va=meta.ldr_entry_va,
                page_digests=meta.digests, content_key=meta.content_key,
                parsed=meta.parsed, verified_at=now)
            self.manifests.commit(manifest)
            if self.event_driven:
                # the clean verdict both commits and arms: from the
                # next cycle on, this module is validated by traps
                self._drop_protection(vm_name, module_name)
                vmi = self._vmis.get(vm_name)
                if vmi is not None and not self._vmi_stale(vm_name, vmi):
                    self._arm_protection(vmi, module_name, manifest)

    def warm_up(self, vm_name: str) -> list[str]:
        """Prime a (re-)admitted VM before it votes in any quorum.

        Re-attaches the VMI session and walks the full loaded-module
        list once, so translation/page caches are warm and a guest that
        cannot even be walked fails *here* — in the membership path,
        where the daemon routes it to the circuit breaker — rather than
        poisoning a sweep. Returns the module names seen.
        """
        vmi = self.vmi_for(vm_name)
        if self.flush_caches_each_round:
            vmi.flush_caches()
        return [e.name for e in ModuleSearcher(vmi).list_modules()]

    # -- observability ---------------------------------------------------------

    def _record_outcome(self, module_name: str, timings: ComponentTimings,
                        report: PoolReport | None = None) -> None:
        """Publish one check's metrics (no-op with NULL_OBS)."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        record_stage_timings(metrics, timings, module=module_name)
        if report is not None:
            record_pool_report(metrics, report, module=module_name)
        # Union of live sessions and retired baselines: a VM that was
        # evicted (and never re-attached) still publishes its folded
        # counters, so the cumulative series never loses a session tail.
        # A scoped (fleet-shard) checker publishes only its *members*:
        # a borrowed reference VM gets a session here too, but its
        # per-VM series belongs to its home shard — two publishers on
        # one label would drive the shared counter backwards.
        members = set(self.members()) if self.members is not None else None
        for vm_name in sorted(set(self._vmis) | set(self._vmi_stats_base)):
            if (members is not None and vm_name not in members
                    and vm_name not in self._vmi_stats_base):
                continue
            record_vmi_instance(metrics, vm_name, self._vmis.get(vm_name),
                                base=self._vmi_stats_base.get(vm_name))
        injector = getattr(self.hv, "fault_injector", None)
        if injector is not None:
            record_fault_stats(metrics, injector.stats)
        if self.incremental:
            record_manifest_stats(metrics, self.manifests,
                                  pair_replays=self.pair_replays)
        if self.repair is not None:
            record_repair_stats(metrics, self.repair.stats)
        if self.event_driven:
            record_trap_stats(
                metrics, self.hv.traps.stats,
                validations=self.trap_validations,
                pages_checked=self.trap_pages_checked,
                fallbacks=self.trap_fallbacks,
                protected_frames=sum(len(d.protected_frames)
                                     for d in self.hv.guests()))

    def pool_vm_names(self, vms: list[str] | None = None) -> list[str]:
        if vms is not None:
            return list(vms)
        if self.members is not None:
            return list(self.members())
        return [d.name for d in self.hv.guests()]

    # -- acquisition phase -------------------------------------------------------------

    def fetch_modules(self, module_name: str, vm_names: list[str],
                      ) -> FetchResult:
        """Run Searcher + Parser for every VM; returns parsed copies.

        VMs where the module is not loaded are skipped (the paper only
        compares "modules actually loaded in memory") — but the Searcher
        time spent *discovering* that is still accounted: the walk was
        charged to the Dom0 clock either way. VMs whose reads keep
        failing after the retry budget land in ``failed`` instead of
        aborting the sweep.
        """
        timings = ComponentTimings()
        per_vm: dict[str, float] = {}
        failed: dict[str, str] = {}
        parsed: list[ParsedModule] = []
        events = self.obs.events

        def acquired(vm_name: str, outcome: str) -> None:
            if events.enabled:
                events.emit("module.acquired", module=module_name,
                            vm=vm_name, outcome=outcome)

        with self.obs.tracer.span("modchecker.fetch", module=module_name,
                                  vms=len(vm_names)) as fetch_span:
            self._acq_meta = {}
            for vm_name in vm_names:
                try:
                    vmi = self.vmi_for(vm_name)
                except VMIInitError as exc:
                    # The domain vanished between membership reconcile
                    # and this sweep (destroy races the check cycle).
                    failed[vm_name] = f"unreachable: {exc}"
                    per_vm[vm_name] = 0.0
                    acquired(vm_name, "unreachable")
                    continue
                if self.flush_caches_each_round:
                    vmi.flush_caches()
                searcher = ModuleSearcher(vmi)
                copy = None
                cached = None
                with self.hv.clock.span() as span:
                    try:
                        if self.incremental:
                            cached = self._try_manifest(vmi, searcher,
                                                        module_name)
                        if cached is None:
                            copy = searcher.copy_module(module_name)
                    except ModuleNotLoadedError:
                        pass
                    except (TransientFault, RetryExhausted) as exc:
                        failed[vm_name] = f"retry-exhausted: {exc}"
                    except IntrospectionFault as exc:
                        failed[vm_name] = f"unreadable: {exc}"
                timings.searcher += span.elapsed
                per_vm[vm_name] = span.elapsed
                if cached is not None:
                    # manifest hit: the stored ParsedModule re-enters the
                    # vote directly; no copy, no parse
                    parsed.append(cached)
                    acquired(vm_name, "manifest")
                    continue
                if copy is None:
                    acquired(vm_name, failed.get(vm_name, "not-loaded")
                             .split(":", 1)[0])
                    continue
                with self.hv.clock.span() as span:
                    parsed_mod = self.parser.parse(copy)
                    if self.incremental:
                        self._note_acquisition(vmi, copy, parsed_mod)
                    parsed.append(parsed_mod)
                timings.parser += span.elapsed
                acquired(vm_name, "ok")
            fetch_span.set(acquired=len(parsed), failed=len(failed))
        return FetchResult(parsed, timings, per_vm, failed)

    # -- checking modes -------------------------------------------------------------

    def check_on_vm(self, module_name: str, target_vm: str,
                    vms: list[str] | None = None) -> CheckOutcome:
        """Verify ``target_vm``'s copy against the rest of the pool."""
        names = self.pool_vm_names(vms)
        if target_vm not in names:
            names = [target_vm] + names
        events = self.obs.events
        cid = events.current_check or events.new_check_id()
        with events.correlate(cid), \
             self.obs.tracer.span("modchecker.check", module=module_name,
                                  mode="target", target=target_vm):
            if events.enabled:
                events.emit("check.start", module=module_name,
                            mode="target", target=target_vm,
                            vms=len(names))
            parsed, timings, per_vm, failed = self.fetch_modules(module_name,
                                                                names)
            by_vm = {p.vm_name: p for p in parsed}
            if target_vm in failed:
                raise RetryExhausted(
                    f"cannot acquire {module_name!r} from target {target_vm}: "
                    f"{failed[target_vm]}")
            if target_vm not in by_vm:
                raise ModuleNotLoadedError(
                    f"{module_name!r} not loaded on target {target_vm}")
            others = [p for p in parsed if p.vm_name != target_vm]
            if not others:
                raise InsufficientPool(
                    f"no other VM exposes {module_name!r} for comparison")
            with self.obs.tracer.span("checker.compare", module=module_name,
                                      pairs=len(others)):
                with self.hv.clock.span() as span:
                    report = self.checker.check_target(by_vm[target_vm],
                                                       others)
            timings.checker = span.elapsed
            if events.enabled:
                events.emit("check.verdict", module=module_name,
                            mode="target", target=target_vm,
                            clean=report.clean, matches=report.matches,
                            comparisons=report.comparisons)
        self._record_outcome(module_name, timings)
        return CheckOutcome(report=report, timings=timings,
                            per_vm_searcher=per_vm)

    def check_pool(self, module_name: str,
                   vms: list[str] | None = None, *,
                   mode: str = "pairwise") -> PoolOutcome:
        """Cross-check the module on every VM (detection experiments).

        ``mode="pairwise"`` is the paper's O(t²) all-pairs vote;
        ``mode="canonical"`` is the O(t) clustering variant
        (:meth:`IntegrityChecker.check_pool_canonical`).

        VMs whose introspection keeps failing after the retry budget
        are *degraded*: dropped from the quorum, reported in
        ``PoolReport.degraded``, and the majority vote is recomputed
        over the survivors. :class:`InsufficientPool` is raised only
        when the surviving quorum drops below 2.
        """
        if mode not in ("pairwise", "canonical"):
            raise ValueError(f"unknown pool mode {mode!r}")
        names = self.pool_vm_names(vms)
        events = self.obs.events
        cid = events.current_check or events.new_check_id()
        with events.correlate(cid), \
             self.obs.tracer.span("modchecker.check", module=module_name,
                                  mode=mode):
            if events.enabled:
                events.emit("check.start", module=module_name, mode=mode,
                            vms=len(names))
            parsed, timings, per_vm, failed = self.fetch_modules(module_name,
                                                                names)
            if len(parsed) < 2:
                degraded_note = (f" ({len(failed)} degraded: "
                                 f"{', '.join(sorted(failed))})"
                                 if failed else "")
                raise InsufficientPool(
                    f"{module_name!r} present on {len(parsed)} VM(s); "
                    f"need at least 2{degraded_note}")
            n_pairs = (len(parsed) - 1 if mode == "canonical"
                       else len(parsed) * (len(parsed) - 1) // 2)
            with self.obs.tracer.span("checker.compare", module=module_name,
                                      pairs=n_pairs):
                with self.hv.clock.span() as span:
                    if mode == "canonical":
                        report = self.checker.check_pool_canonical(parsed)
                    elif self.incremental:
                        pairs = []
                        for i, mod_a in enumerate(parsed):
                            for mod_b in parsed[i + 1:]:
                                pairs.append(
                                    self._compare_or_replay(mod_a, mod_b))
                        report = self.checker.vote(parsed, pairs)
                    else:
                        report = self.checker.check_pool(parsed)
            timings.checker = span.elapsed
            report.degraded = dict(failed)
            if self.incremental:
                self._update_manifests(module_name, report)
            if events.enabled:
                events.emit("check.verdict", module=module_name, mode=mode,
                            clean=report.all_clean,
                            flagged=sorted(report.flagged()),
                            degraded=sorted(failed))
            # Forensics ride the alert path only: a clean report never
            # reaches capture, keeping evidence cost off the hot path.
            # The repair engine's own re-verification checks are also
            # excluded — the incident already has its bundle.
            captured = None
            if (self.evidence is not None and not report.all_clean
                    and not self._in_repair):
                captured = self.evidence.record(
                    report, parsed, events=events, check_id=cid or None,
                    captured_at=self.hv.clock.now)
                self.obs.metrics.counter(
                    "modchecker_evidence_bundles_total",
                    "Evidence bundles captured for non-clean "
                    "verdicts").inc()
            remediations: list = []
            if (self.repair is not None and not self._in_repair
                    and not report.all_clean):
                self._in_repair = True
                try:
                    remediations = self.repair.remediate_pool(
                        module_name, report, names,
                        detected_at=self.hv.clock.now)
                finally:
                    self._in_repair = False
                if captured is not None and remediations:
                    self.evidence.attach_remediations(captured,
                                                      remediations)
        self._record_outcome(module_name, timings, report)
        return PoolOutcome(report=report, timings=timings,
                           per_vm_searcher=per_vm,
                           remediations=remediations)

    # -- carving extension (defeats DKOM hiding) ------------------------------------

    def detect_hidden_modules(self, vm_name: str,
                              reference_vm: str | None = None,
                              ) -> list[tuple["CarvedModule", str | None]]:
        """Carve the guest's driver arena and report unlisted modules.

        Returns ``[(carved module, identified name or None)]`` — images
        mapped in kernel space but absent from ``PsLoadedModuleList``
        (DKOM hiding). Identification fingerprints the carved image
        against the modules a reference clone lists.
        """
        from .carver import ModuleCarver
        vmi = self.vmi_for(vm_name)
        if self.flush_caches_each_round:
            vmi.flush_caches()
        searcher = ModuleSearcher(vmi)
        listed = {e.dll_base for e in searcher.list_modules()}
        hidden = ModuleCarver(vmi).find_hidden(listed)
        return self.identify_carved_modules(vm_name, hidden,
                                            reference_vm=reference_vm)

    def identify_carved_modules(self, vm_name: str,
                                hidden: list["CarvedModule"],
                                reference_vm: str | None = None,
                                ) -> list[tuple["CarvedModule", str | None]]:
        """Name already-carved hidden images against a reference clone.

        Split out from :meth:`detect_hidden_modules` so callers that
        have *already* carved the guest (e.g. the daemon's cross-view
        sweep) can identify the findings without paying for a second
        carve of the same VM.
        """
        from .carver import identify_carved
        if not hidden:
            return []
        ref = reference_vm or next(
            (n for n in self.pool_vm_names() if n != vm_name), None)
        named: dict[str, bytes] = {}
        if ref is not None:
            from ..errors import IntrospectionFault
            ref_searcher = ModuleSearcher(self.vmi_for(ref))
            for entry in ref_searcher.list_modules():
                try:
                    named[entry.name] = \
                        ref_searcher.copy_module(entry.name).image
                except IntrospectionFault:
                    # The reference VM may itself carry decoy entries
                    # whose DllBase is unbacked; skip them.
                    continue
        return [(m, identify_carved(m, named)) for m in hidden]

    def check_carved_module(self, carved: "CarvedModule", name: str,
                            vms: list[str] | None = None) -> VMCheckReport:
        """Integrity-check a carved (hidden) module against the pool."""
        names = [n for n in self.pool_vm_names(vms)
                 if n != carved.vm_name]
        parsed, *_ = self.fetch_modules(name, names)
        if not parsed:
            raise InsufficientPool(
                f"no other VM exposes {name!r} for comparison")
        target = self.parser.parse(carved.as_module_copy(name))
        return self.checker.check_target(target, parsed)

    def check_all_modules(self, vms: list[str] | None = None,
                          ) -> dict[str, PoolOutcome]:
        """Sweep every module present in the first pool VM's list."""
        names = self.pool_vm_names(vms)
        if not names:
            raise InsufficientPool("empty VM pool")
        searcher = ModuleSearcher(self.vmi_for(names[0]))
        outcomes: dict[str, PoolOutcome] = {}
        for entry in searcher.list_modules():
            try:
                outcomes[entry.name] = self.check_pool(entry.name, names)
            except InsufficientPool:
                continue
        return outcomes
