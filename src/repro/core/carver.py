"""Module carving — finding kernel modules without the module list.

Module-Searcher trusts ``PsLoadedModuleList``, so a rootkit that
unlinks its ``LDR_DATA_TABLE_ENTRY`` (classic DKOM hiding — the paper's
related work calls this out for in-guest tools) becomes invisible to
it even though its image pages stay mapped and executable.

:class:`ModuleCarver` closes that gap the way Volatility's
``modscan``/``driverscan`` do: sweep the kernel driver arena for mapped
pages whose first bytes are a plausible PE header (``MZ`` magic, sane
``e_lfanew``, ``PE\\0\\0`` signature, plausible ``SizeOfImage``),
then extract the image exactly as the searcher would. The sweep walks
the guest's page tables *at page-directory granularity* — one PDE read
skips 4 MiB of unmapped space — so scanning the 48 MiB arena costs a
few hundred introspection reads, not tens of thousands.

Carved modules carry no ``BaseDllName``; :func:`identify_carved`
matches them to named modules from other VMs by their base-independent
header fingerprint (``TimeDateStamp``, ``SizeOfImage``, section names
and sizes) — identical across clones of one installation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import IntrospectionFault, PEFormatError
from ..mem.address_space import DRIVER_AREA_BASE, DRIVER_AREA_END
from ..mem.paging import PDE_LARGE, PTE_PRESENT
from ..mem.physical import PAGE_SIZE
from ..pe.parser import PEImage
from ..vmi.core import VMIInstance
from .parser import ParsedModule
from .searcher import MAX_IMAGE_BYTES, ModuleCopy

__all__ = ["CarvedModule", "ModuleCarver", "module_fingerprint",
           "identify_carved"]

_PDE_SPAN = 1 << 22              # one page directory entry covers 4 MiB


@dataclass(frozen=True)
class CarvedModule:
    """A PE image found by carving, with no list entry to name it."""

    vm_name: str
    base: int
    image: bytes

    @property
    def size_of_image(self) -> int:
        return len(self.image)

    def as_module_copy(self, name: str) -> ModuleCopy:
        """Promote to a ModuleCopy once identified."""
        return ModuleCopy(self.vm_name, name, self.base, self.image, 0)


def module_fingerprint(image: bytes) -> tuple:
    """Base-independent identity of a module image.

    Clones of one installation share link timestamp, image size and
    section geometry; relocation only rewrites code bytes, never these.
    """
    pe = PEImage(image)
    return (pe.file_header.time_date_stamp,
            pe.optional_header.size_of_image,
            tuple((s.name, s.virtual_size, s.characteristics)
                  for s in pe.sections))


class ModuleCarver:
    """Signature-scans one guest's driver arena for module images."""

    def __init__(self, vmi: VMIInstance,
                 arena: tuple[int, int] = (DRIVER_AREA_BASE,
                                           DRIVER_AREA_END)) -> None:
        self.vmi = vmi
        self.arena = arena

    # -- page-table-guided sweep -------------------------------------------------

    def _mapped_pages(self):
        """Yield mapped page VAs in the arena, skipping 4 MiB holes."""
        start, end = self.arena
        pd_base = self.vmi.cr3 & ~(PAGE_SIZE - 1)
        va = start & ~(_PDE_SPAN - 1)
        while va < end:
            pde_i = (va >> 22) & 0x3FF
            pde, = struct.unpack(
                "<I", self.vmi.read_pa(pd_base + 4 * pde_i, 4))
            if not pde & PTE_PRESENT:
                va += _PDE_SPAN
                continue
            if pde & PDE_LARGE:
                # a PSE 4 MiB page: every covered page is mapped
                for pte_i in range(1024):
                    page_va = (pde_i << 22) | (pte_i << 12)
                    if start <= page_va < end:
                        yield page_va
                va += _PDE_SPAN
                continue
            # One mapped read fetches the whole page table.
            pt = self.vmi.read_pa(pde & ~(PAGE_SIZE - 1), PAGE_SIZE)
            for pte_i in range(1024):
                page_va = (pde_i << 22) | (pte_i << 12)
                if not (start <= page_va < end):
                    continue
                pte, = struct.unpack_from("<I", pt, 4 * pte_i)
                if pte & PTE_PRESENT:
                    yield page_va
            va += _PDE_SPAN

    # -- candidate validation -----------------------------------------------------

    def _probe_header(self, page_va: int) -> int | None:
        """Return SizeOfImage if the page starts a plausible PE image."""
        head = self.vmi.read_va(page_va, 0x40)
        if head[:2] != b"MZ":
            return None
        e_lfanew = struct.unpack_from("<I", head, 0x3C)[0]
        if not 0x40 <= e_lfanew <= PAGE_SIZE - 0xF8:
            return None
        nt = self.vmi.read_va(page_va + e_lfanew, 0x60)
        if nt[:4] != b"PE\x00\x00":
            return None
        # SizeOfImage lives at optional header offset 56.
        size_of_image = struct.unpack_from("<I", nt, 4 + 20 + 56)[0]
        if not 0 < size_of_image <= MAX_IMAGE_BYTES:
            return None
        return size_of_image

    def carve(self) -> list[CarvedModule]:
        """Find every module image mapped in the arena."""
        found: list[CarvedModule] = []
        skip_until = -1
        for page_va in self._mapped_pages():
            if page_va < skip_until:
                continue          # interior page of a carved image
            size = self._probe_header(page_va)
            if size is None:
                continue
            try:
                image = self.vmi.read_va(page_va, size)
                PEImage(image)    # full structural validation
            except (PEFormatError, IntrospectionFault):
                continue          # false hit or partially unmapped tail
            found.append(CarvedModule(self.vmi.domain.name, page_va, image))
            skip_until = page_va + size
        return found

    def find_hidden(self, listed_bases: set[int]) -> list[CarvedModule]:
        """Carved images whose base is absent from the module list —
        the DKOM-hiding signal."""
        return [m for m in self.carve() if m.base not in listed_bases]


def identify_carved(carved: CarvedModule,
                    named: dict[str, ParsedModule | ModuleCopy | bytes],
                    ) -> str | None:
    """Match a carved image against named module images from other VMs.

    ``named`` maps module name → a ParsedModule/ModuleCopy/image whose
    fingerprint to compare. Returns the matching name or None.
    """
    fp = module_fingerprint(carved.image)
    for name, other in named.items():
        image = other if isinstance(other, (bytes, bytearray)) \
            else other.image
        if module_fingerprint(bytes(image)) == fp:
            return name
    return None
