"""Result records: pair comparisons, per-VM verdicts, pool reports.

The paper reports results in two forms — which PE *components*
mismatched (e.g. E4: "IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, all
SECTION_HEADER's and .text") and which VM fails the majority vote
(§III-B: clean iff ``n > (t-1)/2`` successful matches). Both live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rva import RvaAdjustStats

__all__ = ["PairComparison", "VMVerdict", "PoolReport"]


@dataclass(frozen=True)
class PairComparison:
    """Outcome of comparing one module between two VMs."""

    vm_a: str
    vm_b: str
    mismatched_regions: tuple[str, ...]
    rva_stats: dict[str, RvaAdjustStats] = field(default_factory=dict)

    @property
    def matched(self) -> bool:
        """True when every header and code hash agreed."""
        return not self.mismatched_regions

    def involves(self, vm: str) -> bool:
        return vm in (self.vm_a, self.vm_b)

    def other(self, vm: str) -> str:
        if vm == self.vm_a:
            return self.vm_b
        if vm == self.vm_b:
            return self.vm_a
        raise ValueError(f"{vm} not in pair ({self.vm_a}, {self.vm_b})")


@dataclass(frozen=True)
class VMVerdict:
    """Majority-vote verdict for the module on one VM."""

    vm_name: str
    matches: int                 # n successful full matches
    comparisons: int             # t - 1
    clean: bool                  # n > (t-1)/2
    mismatched_regions: tuple[str, ...]   # vs the majority cluster


@dataclass
class PoolReport:
    """Full cross-VM check of one module.

    ``degraded`` lists VMs that were *dropped from the quorum* because
    introspection kept failing after the full retry budget (fault
    windows, unreachable domains): they carry no verdict, and the
    majority vote is recomputed over the surviving quorum. A degraded
    VM is an availability event, not an integrity verdict.
    """

    module_name: str
    vm_names: list[str]
    pairs: list[PairComparison]
    verdicts: dict[str, VMVerdict]
    #: VM name -> reason it was dropped from the quorum
    degraded: dict[str, str] = field(default_factory=dict)

    def flagged(self) -> list[str]:
        """VMs whose module failed the majority vote."""
        return [name for name, v in self.verdicts.items() if not v.clean]

    def clean_vms(self) -> list[str]:
        return [name for name, v in self.verdicts.items() if v.clean]

    def pair(self, vm_a: str, vm_b: str) -> PairComparison:
        for p in self.pairs:
            if {p.vm_a, p.vm_b} == {vm_a, vm_b}:
                return p
        raise KeyError((vm_a, vm_b))

    def mismatched_regions(self, vm: str) -> tuple[str, ...]:
        """The PE components that flagged this VM (paper's reporting)."""
        return self.verdicts[vm].mismatched_regions

    @property
    def all_clean(self) -> bool:
        return not self.flagged()


@dataclass(frozen=True)
class VMCheckReport:
    """Single-target check: one VM's module against the rest of the pool.

    This is the linear-cost mode (t-1 comparisons) whose runtime the
    paper plots in Figs. 7/8.
    """

    module_name: str
    target_vm: str
    pairs: tuple[PairComparison, ...]
    matches: int
    comparisons: int

    @property
    def clean(self) -> bool:
        return self.matches > (self.comparisons) / 2

    def mismatched_regions(self) -> tuple[str, ...]:
        out: list[str] = []
        for p in self.pairs:
            for region in p.mismatched_regions:
                if region not in out:
                    out.append(region)
        return tuple(out)


__all__.append("VMCheckReport")
