"""ModChecker core: Searcher, Parser, Integrity-Checker, orchestration,
plus the carving (anti-DKOM) and daemon extensions."""

from .baselines import BaselineVerdict, DictionaryChecker, SVVChecker
from .carver import (CarvedModule, ModuleCarver, identify_carved,
                     module_fingerprint)
from .crossview import CrossViewReport, cross_view
from .versioning import (VersionGroup, VersionedPoolReport,
                         check_pool_versioned, partition_by_version)
from .daemon import (AdaptivePolicy, Alert, AlertLog, CheckDaemon,
                     PriorityPolicy, RoundRobinPolicy)
from .health import (BreakerConfig, BreakerState, CircuitBreaker,
                     HealthRegistry)
from .integrity import SUPPORTED_HASHES, IntegrityChecker, md5_hex
from .modchecker import CheckOutcome, FetchResult, ModChecker, PoolOutcome
from .parallel import ParallelModChecker, makespan
from .parser import ModuleParser, ParsedModule
from .report import (PairComparison, PoolReport, VMCheckReport, VMVerdict)
from .rva import (ADJUSTERS, RvaAdjustStats, adjust_rva_faithful,
                  adjust_rva_robust, adjust_rva_vectorized,
                  first_differing_base_byte)
from .searcher import ModuleCopy, ModuleListEntry, ModuleSearcher

__all__ = [
    "BaselineVerdict", "DictionaryChecker", "SVVChecker",
    "CarvedModule", "ModuleCarver", "identify_carved", "module_fingerprint",
    "CrossViewReport", "cross_view",
    "VersionGroup", "VersionedPoolReport", "check_pool_versioned",
    "partition_by_version",
    "AdaptivePolicy", "Alert", "AlertLog", "CheckDaemon", "PriorityPolicy",
    "RoundRobinPolicy",
    "BreakerConfig", "BreakerState", "CircuitBreaker", "HealthRegistry",
    "SUPPORTED_HASHES", "IntegrityChecker", "md5_hex",
    "CheckOutcome", "FetchResult", "ModChecker", "PoolOutcome",
    "ParallelModChecker", "makespan",
    "ModuleParser", "ParsedModule",
    "PairComparison", "PoolReport", "VMCheckReport", "VMVerdict",
    "ADJUSTERS", "RvaAdjustStats", "adjust_rva_faithful",
    "adjust_rva_robust", "adjust_rva_vectorized",
    "first_differing_base_byte",
    "ModuleCopy", "ModuleListEntry", "ModuleSearcher",
]
