"""Per-VM circuit breakers: principled degradation bookkeeping.

PR 1 taught the daemon to *quarantine* a VM whose introspection kept
failing — a bare ``{vm: cycles_left}`` counter. Under lifecycle churn
that is not enough: a VM can fail, recover, and fail again (flapping),
and re-admitting a still-sick VM at full trust makes every sweep pay
its retry budget again. This module replaces the counter with the
standard circuit-breaker state machine:

``CLOSED``
    healthy — the VM votes in every sweep; consecutive failures are
    counted, and at ``fail_threshold`` the breaker **trips**;
``OPEN``
    excluded — the VM is dropped from sweeps for ``open_cycles``
    daemon cycles (no introspection attempts at all, so a blacked-out
    domain costs nothing);
``HALF_OPEN``
    probing — the cool-down expired; the VM is admitted again, but one
    more failure re-opens the breaker with an exponentially longer
    cool-down (``backoff_factor``, capped at ``max_open_cycles``),
    while ``probe_successes`` clean results close it fully.

The state machine is deliberately clock-free: it advances on *daemon
cycles* (one :meth:`CircuitBreaker.tick` per cycle), so breaker
behaviour is a pure function of the observed failure sequence and the
whole schedule stays deterministic under the simulated clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker",
           "HealthRegistry"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for one VM's breaker (cycles, not seconds)."""

    #: consecutive failures (while CLOSED) before tripping
    fail_threshold: int = 1
    #: cycles a tripped breaker stays OPEN before probing
    open_cycles: int = 3
    #: clean probes needed to close a HALF_OPEN breaker
    probe_successes: int = 1
    #: each re-trip from HALF_OPEN multiplies the next cool-down
    backoff_factor: float = 2.0
    #: cool-down ceiling, so a dead VM is still probed occasionally
    max_open_cycles: int = 32

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.open_cycles < 1:
            raise ValueError("open_cycles must be >= 1")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_open_cycles < self.open_cycles:
            raise ValueError("max_open_cycles must be >= open_cycles")


class CircuitBreaker:
    """One VM's failure state machine (see module docstring)."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.open_left = 0          # cycles of cool-down remaining
        self._failures = 0          # consecutive, while CLOSED
        self._probes_ok = 0         # clean probes, while HALF_OPEN
        self._retrip_level = 0      # how many times HALF_OPEN re-opened
        #: lifetime transition counters, keyed by entered state
        self.transitions: dict[str, int] = {
            s.value: 0 for s in BreakerState}
        self.last_reason: str | None = None

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.state.value}, "
                f"open_left={self.open_left})")

    @property
    def allowed(self) -> bool:
        """May the daemon introspect this VM right now?"""
        return self.state is not BreakerState.OPEN

    def _enter(self, state: BreakerState) -> None:
        self.state = state
        self.transitions[state.value] += 1

    def _cooldown(self) -> int:
        cfg = self.config
        cycles = cfg.open_cycles * cfg.backoff_factor ** self._retrip_level
        return min(int(cycles), cfg.max_open_cycles)

    # -- events --------------------------------------------------------------

    def tick(self) -> None:
        """One daemon cycle elapsed; advance an OPEN cool-down."""
        if self.state is BreakerState.OPEN:
            self.open_left -= 1
            if self.open_left <= 0:
                self.open_left = 0
                self._probes_ok = 0
                self._enter(BreakerState.HALF_OPEN)

    def record_failure(self, reason: str = "") -> bool:
        """An introspection failure; returns True when this trips OPEN."""
        self.last_reason = reason or None
        if self.state is BreakerState.OPEN:
            return False
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back off harder before the next one.
            self._retrip_level += 1
            self.open_left = self._cooldown()
            self._enter(BreakerState.OPEN)
            return True
        self._failures += 1
        if self._failures >= self.config.fail_threshold:
            self._failures = 0
            self.open_left = self._cooldown()
            self._enter(BreakerState.OPEN)
            return True
        return False

    def record_success(self) -> bool:
        """A clean check; returns True when this closes the breaker."""
        if self.state is BreakerState.CLOSED:
            self._failures = 0
            return False
        if self.state is BreakerState.HALF_OPEN:
            self._probes_ok += 1
            if self._probes_ok >= self.config.probe_successes:
                self._failures = 0
                self._probes_ok = 0
                self._retrip_level = 0
                self.last_reason = None
                self._enter(BreakerState.CLOSED)
                return True
        return False


class HealthRegistry:
    """The daemon's view of pool health: one breaker per known VM."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, vm: str) -> CircuitBreaker:
        b = self._breakers.get(vm)
        if b is None:
            b = CircuitBreaker(self.config)
            self._breakers[vm] = b
        return b

    def evict(self, vm: str) -> None:
        """Forget a VM (destroyed / removed from the pool)."""
        self._breakers.pop(vm, None)

    def tick(self) -> None:
        """Advance every breaker by one daemon cycle."""
        for b in self._breakers.values():
            b.tick()

    def allowed(self, vm: str) -> bool:
        b = self._breakers.get(vm)
        return b is None or b.allowed

    def record_failure(self, vm: str, reason: str = "") -> bool:
        return self.breaker(vm).record_failure(reason)

    def record_success(self, vm: str) -> bool:
        return self.breaker(vm).record_success()

    def open_vms(self) -> list[str]:
        """VMs currently excluded (sorted for determinism)."""
        return sorted(vm for vm, b in self._breakers.items()
                      if b.state is BreakerState.OPEN)

    def states(self) -> dict[str, BreakerState]:
        """Current state per known VM (sorted by name)."""
        return {vm: self._breakers[vm].state
                for vm in sorted(self._breakers)}

    def transition_counts(self) -> dict[str, dict[str, int]]:
        """Lifetime transition counters per VM, for metrics export."""
        return {vm: dict(self._breakers[vm].transitions)
                for vm in sorted(self._breakers)}
