"""Baseline detectors from the paper's related work (§II), as code.

The paper argues for cross-VM comparison by contrast with two existing
approaches; both are implemented here so the comparison is a runnable
experiment rather than prose:

``SVVChecker`` — Rutkowska's System Virginity Verifier style:
    compare each VM's *in-memory* executable sections against the
    expectation derived from that VM's **own disk file** (map the file,
    apply its relocations at the observed base). Catches runtime
    patches; by construction cannot see infections that reached the
    disk file first — "most malware infects files on disk first, and
    then loads the infected file into memory", the paper's §II point.

``DictionaryChecker`` — Livewire / signed-modules style:
    a database of known-good hashes built from a trusted reference
    catalog; each VM's in-memory module is relocated *back* to its
    canonical file form and every hashed region compared against the
    database. Catches both disk- and memory-level infections — but
    needs the database the paper calls "cumbersome": any legitimate
    update not in the DB is a false alarm, which is the scenario
    ModChecker's dictionary-free design removes.

Both run per-VM, so (unlike ModChecker) neither needs a pool — and
neither benefits from one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pe.builder import DriverBlueprint
from ..pe.constants import DIR_BASERELOC
from ..pe.parser import PEImage, map_file_to_memory
from ..pe.relocations import apply_relocations, parse_reloc_section
from ..vmi.core import VMIInstance
from .integrity import IntegrityChecker
from .parser import ModuleParser
from .searcher import ModuleSearcher

__all__ = ["BaselineVerdict", "SVVChecker", "DictionaryChecker"]


@dataclass(frozen=True)
class BaselineVerdict:
    """One baseline detector's verdict on one VM's module."""

    detector: str
    vm_name: str
    module_name: str
    clean: bool
    mismatched_regions: tuple[str, ...] = ()
    note: str = ""


def _relocated_expectation(file_bytes: bytes, base: int) -> bytes:
    """The memory image a clean load of ``file_bytes`` at ``base`` yields
    (imports unresolved — callers must not compare IAT-bearing regions).
    """
    image = map_file_to_memory(file_bytes)
    pe = PEImage(bytes(image))
    reloc = pe.optional_header.data_directories[DIR_BASERELOC]
    if reloc.size:
        fixups = parse_reloc_section(
            bytes(image[reloc.virtual_address:
                        reloc.virtual_address + reloc.size]))
        apply_relocations(image, fixups,
                          (base - pe.optional_header.image_base)
                          & 0xFFFFFFFF)
    return bytes(image)


class SVVChecker:
    """Disk-vs-memory comparison, per VM (System Virginity Verifier)."""

    name = "svv"

    def __init__(self, vmi: VMIInstance,
                 disk_catalog: dict[str, DriverBlueprint | bytes]) -> None:
        """``disk_catalog`` is **this VM's own disk** — on an infected
        machine it contains the infected file, which is the point.
        Values may be blueprints or raw file bytes (e.g. read straight
        from a :class:`~repro.guest.filesystem.GuestFilesystem`)."""
        self.vmi = vmi
        self.disk = disk_catalog

    def check_module(self, module_name: str) -> BaselineVerdict:
        searcher = ModuleSearcher(self.vmi)
        copy = searcher.copy_module(module_name)
        entry = self.disk[module_name]
        file_bytes = entry if isinstance(entry, (bytes, bytearray)) \
            else entry.file_bytes
        expected = _relocated_expectation(bytes(file_bytes), copy.base)

        in_memory = PEImage(copy.image)
        mismatched: list[str] = []
        # SVV verifies code sections (plus we include headers, which are
        # equally base-independent).
        for region in in_memory.header_regions() + in_memory.code_regions():
            got = region.slice(copy.image)
            want = expected[region.start:region.end]
            if got != want:
                mismatched.append(region.name)
        return BaselineVerdict(
            detector=self.name, vm_name=copy.vm_name,
            module_name=module_name, clean=not mismatched,
            mismatched_regions=tuple(mismatched),
            note="compares memory against this VM's own disk file")


class DictionaryChecker:
    """Known-good hash database, per VM (Livewire / signed modules)."""

    name = "dictionary"

    def __init__(self, reference_catalog: dict[str, DriverBlueprint],
                 *, hash_algorithm: str = "md5") -> None:
        """``reference_catalog`` is the trusted golden build — the
        database the paper says is cumbersome to maintain."""
        self._digester = IntegrityChecker(hash_algorithm=hash_algorithm)
        self._parser = ModuleParser()
        self.database: dict[str, dict[str, str]] = {}
        self.reference = reference_catalog
        for name, blueprint in reference_catalog.items():
            image = bytes(map_file_to_memory(blueprint.file_bytes))
            pe = PEImage(image)
            self.database[name] = {
                region.name: self._digester.digest(region.slice(image))
                for region in pe.header_regions() + pe.code_regions()}

    def check_module(self, vmi: VMIInstance,
                     module_name: str) -> BaselineVerdict:
        searcher = ModuleSearcher(vmi)
        copy = searcher.copy_module(module_name)
        known = self.database.get(module_name)
        if known is None:
            return BaselineVerdict(
                detector=self.name, vm_name=copy.vm_name,
                module_name=module_name, clean=False,
                mismatched_regions=("<module not in database>",),
                note="unknown module")

        # Undo relocation using the *reference* file's fixup list, then
        # hash each region against the database.
        blueprint = self.reference[module_name]
        image = bytearray(copy.image)
        reloc = blueprint.optional_header.data_directories[DIR_BASERELOC]
        if reloc.size and len(image) >= reloc.virtual_address + reloc.size:
            delta = (copy.base - blueprint.image_base) & 0xFFFFFFFF
            try:
                fixups = blueprint.fixup_rvas
                apply_relocations(image, fixups, (-delta) & 0xFFFFFFFF)
            except Exception:
                pass                     # corrupted image: hashes differ
        mismatched: list[str] = []
        try:
            pe = PEImage(bytes(image))
            regions = {r.name: r
                       for r in pe.header_regions() + pe.code_regions()}
        except Exception:
            return BaselineVerdict(
                detector=self.name, vm_name=copy.vm_name,
                module_name=module_name, clean=False,
                mismatched_regions=("<unparseable image>",))
        for name, digest in known.items():
            region = regions.get(name)
            if region is None or \
                    self._digester.digest(region.slice(bytes(image))) != digest:
                mismatched.append(name)
        for name in regions:
            if name not in known:
                mismatched.append(name)
        return BaselineVerdict(
            detector=self.name, vm_name=copy.vm_name,
            module_name=module_name, clean=not mismatched,
            mismatched_regions=tuple(mismatched),
            note="hashes vs trusted reference database")
