"""Cross-view comparison: the module list vs the carved ground truth.

Classic cross-view detection (the idea behind Rutkowska's SVV and
Volatility's ``psxview``) compares two independent enumerations of the
same objects; a rootkit must fool *both* to stay invisible. Here the
views are:

* **listed** — what ``PsLoadedModuleList`` claims (Module-Searcher);
* **carved** — what is actually mapped in the driver arena
  (:class:`~repro.core.carver.ModuleCarver`).

Discrepancies in either direction are attack signals:

* *carved-only* (mapped image, no list entry) — DKOM hiding;
* *listed-only* (list entry, no valid image at ``DllBase``) — a decoy
  entry planted to confuse list-walking tools, or an entry whose image
  was unmapped out from under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .carver import CarvedModule, ModuleCarver
from .searcher import ModuleListEntry, ModuleSearcher
from ..vmi.core import VMIInstance

__all__ = ["CrossViewReport", "cross_view"]


@dataclass
class CrossViewReport:
    """Outcome of one guest's listed-vs-carved comparison."""

    vm_name: str
    #: entries whose DllBase is backed by a carved image
    confirmed: list[ModuleListEntry] = field(default_factory=list)
    #: carved images with no list entry (DKOM hiding)
    carved_only: list[CarvedModule] = field(default_factory=list)
    #: list entries with no carvable image at DllBase (decoys)
    listed_only: list[ModuleListEntry] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.carved_only and not self.listed_only

    def summary(self) -> str:
        return (f"{self.vm_name}: {len(self.confirmed)} confirmed, "
                f"{len(self.carved_only)} hidden, "
                f"{len(self.listed_only)} decoy")


def cross_view(vmi: VMIInstance) -> CrossViewReport:
    """Compare the guest's two module views."""
    searcher = ModuleSearcher(vmi)
    listed = searcher.list_modules()
    carved = ModuleCarver(vmi).carve()
    carved_by_base = {m.base: m for m in carved}

    report = CrossViewReport(vm_name=vmi.domain.name)
    listed_bases = set()
    for entry in listed:
        listed_bases.add(entry.dll_base)
        if entry.dll_base in carved_by_base:
            report.confirmed.append(entry)
        else:
            report.listed_only.append(entry)
    report.carved_only = [m for m in carved if m.base not in listed_bases]
    return report
