"""Parallel introspection — the paper's explicitly-invited extension.

§V-C-1: "The modular design of ModChecker can support parallel access
of virtual machines' memory which would considerably enhance the
runtime performance." This module implements that: the per-VM
Searcher/Parser work is gathered with the hypervisor clock *deferred*,
then the clock is advanced once with a makespan model —

* the per-VM work items are packed onto ``threads`` Dom0 workers with a
  longest-processing-time greedy (the classic multiprocessor-schedule
  bound);
* each worker is stretched by the contention factor for ``threads``
  busy Dom0 vCPUs, so the speedup saturates once Dom0 threads + guest
  load exceed the physical CPUs — parallelism is *not* free on a
  saturated host, which the A1 ablation bench demonstrates.

The integrity-check phase also parallelises (comparisons are
independent); the same makespan treatment applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InsufficientPool, ModuleNotLoadedError
from ..perf.timing import ComponentTimings
from .modchecker import CheckOutcome, ModChecker
from .report import VMCheckReport

__all__ = ["ParallelModChecker", "makespan"]


def makespan(work_items: list[float], workers: int) -> float:
    """LPT greedy makespan of ``work_items`` over ``workers`` bins."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not work_items:
        return 0.0
    bins = [0.0] * min(workers, len(work_items))
    for item in sorted(work_items, reverse=True):
        i = min(range(len(bins)), key=bins.__getitem__)
        bins[i] += item
    return max(bins)


@dataclass
class ParallelTimings:
    """Sequential-equivalent CPU seconds vs parallel wall seconds."""

    cpu: ComponentTimings
    wall: ComponentTimings

    @property
    def speedup(self) -> float:
        return self.cpu.total / self.wall.total if self.wall.total else 1.0


class ParallelModChecker(ModChecker):
    """ModChecker with ``threads``-way concurrent guest access."""

    def __init__(self, hypervisor, profile=None, *, threads: int = 4,
                 **kwargs) -> None:
        super().__init__(hypervisor, profile, **kwargs)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads

    def check_on_vm(self, module_name: str, target_vm: str,
                    vms: list[str] | None = None) -> CheckOutcome:
        names = self.pool_vm_names(vms)
        if target_vm not in names:
            names = [target_vm] + names

        # Phase 1+2: fetch/parse each VM with charges deferred, cutting
        # the accumulator at VM boundaries to get per-VM work items.
        per_vm_work: dict[str, float] = {}
        parsed = []
        with self.hv.deferred_charges() as acc:
            for vm_name in names:
                vmi = self.vmi_for(vm_name)
                if self.flush_caches_each_round:
                    vmi.flush_caches()
                before = acc.total
                from .searcher import ModuleSearcher
                searcher = ModuleSearcher(vmi)
                try:
                    copy = searcher.copy_module(module_name)
                except ModuleNotLoadedError:
                    continue
                parsed.append(self.parser.parse(copy))
                per_vm_work[vm_name] = acc.total - before

        by_vm = {p.vm_name: p for p in parsed}
        if target_vm not in by_vm:
            raise ModuleNotLoadedError(
                f"{module_name!r} not loaded on target {target_vm}")
        others = [p for p in parsed if p.vm_name != target_vm]
        if not others:
            raise InsufficientPool(
                f"no other VM exposes {module_name!r} for comparison")

        # Phase 3: pairwise comparisons, also deferred per pair.
        pair_work: list[float] = []
        pairs = []
        with self.hv.deferred_charges() as acc:
            for other in others:
                before = acc.total
                pairs.append(self.checker.compare_pair(by_vm[target_vm],
                                                       other))
                pair_work.append(acc.total - before)

        # Advance the clock with the makespan model.
        factor = self.hv.scheduler.dom0_slowdown(self.hv.guest_demand(),
                                                 dom0_threads=self.threads)
        fetch_wall = makespan(list(per_vm_work.values()), self.threads) * factor
        check_wall = makespan(pair_work, self.threads) * factor
        self.hv.clock.advance(fetch_wall + check_wall)

        matches = sum(1 for p in pairs if p.matched)
        report = VMCheckReport(
            module_name=module_name, target_vm=target_vm,
            pairs=tuple(pairs), matches=matches, comparisons=len(pairs))
        fetch_cpu = sum(per_vm_work.values())
        timings = ComponentTimings(searcher=fetch_wall, parser=0.0,
                                   checker=check_wall)
        outcome = CheckOutcome(report=report, timings=timings,
                               per_vm_searcher=dict(per_vm_work))
        outcome.parallel = ParallelTimings(   # type: ignore[attr-defined]
            cpu=ComponentTimings(searcher=fetch_cpu, parser=0.0,
                                 checker=sum(pair_work)),
            wall=timings)
        return outcome
