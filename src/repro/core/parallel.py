"""Parallel introspection — the paper's explicitly-invited extension.

§V-C-1: "The modular design of ModChecker can support parallel access
of virtual machines' memory which would considerably enhance the
runtime performance." This module implements that: the per-VM
Searcher/Parser work is gathered with the hypervisor clock *deferred*,
then the clock is advanced once with a makespan model —

* the per-VM work items are packed onto ``threads`` Dom0 workers with a
  longest-processing-time greedy (the classic multiprocessor-schedule
  bound);
* each worker is stretched by the contention factor for ``threads``
  busy Dom0 vCPUs, so the speedup saturates once Dom0 threads + guest
  load exceed the physical CPUs — parallelism is *not* free on a
  saturated host, which the A1 ablation bench demonstrates.

All three checking modes parallelise: :meth:`check_on_vm` (t-1 fetches,
t-1 comparisons), :meth:`check_pool` (t fetches, t·(t-1)/2 pairwise
comparisons — the comparisons are independent, so the O(t²) vote is
where parallelism pays most), and :meth:`check_all_modules` (inherited;
every per-module pool check runs through the parallel path). Component
wall time is attributed by each phase's share of CPU work, so the
Fig. 7/8-style breakdowns keep a truthful Parser series rather than
folding it into Searcher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import (InsufficientPool, IntrospectionFault,
                      ModuleNotLoadedError, RetryExhausted, TransientFault)
from ..perf.timing import ComponentTimings
from .modchecker import CheckOutcome, ModChecker, PoolOutcome
from .report import VMCheckReport
from .searcher import ModuleSearcher

__all__ = ["ParallelModChecker", "makespan"]


def makespan(work_items: list[float], workers: int) -> float:
    """LPT greedy makespan of ``work_items`` over ``workers`` bins."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not work_items:
        return 0.0
    bins = [0.0] * min(workers, len(work_items))
    for item in sorted(work_items, reverse=True):
        i = min(range(len(bins)), key=bins.__getitem__)
        bins[i] += item
    return max(bins)


@dataclass
class ParallelTimings:
    """Sequential-equivalent CPU seconds vs parallel wall seconds."""

    cpu: ComponentTimings
    wall: ComponentTimings

    @property
    def speedup(self) -> float:
        return self.cpu.total / self.wall.total if self.wall.total else 1.0


class ParallelModChecker(ModChecker):
    """ModChecker with ``threads``-way concurrent guest access."""

    def __init__(self, hypervisor, profile=None, *, threads: int = 4,
                 **kwargs) -> None:
        super().__init__(hypervisor, profile, **kwargs)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads

    # -- shared phases --------------------------------------------------------

    def _parallel_fetch(self, module_name: str, names: list[str],
                        ) -> tuple[list, dict[str, float], dict[str, float],
                                   dict[str, str]]:
        """Fetch+parse each VM with charges deferred.

        Returns ``(parsed, searcher_work, parser_work, failed)`` where
        the work dicts hold per-VM CPU seconds, cut at the
        searcher/parser boundary so each component's share of the
        makespan can be attributed truthfully.
        """
        searcher_work: dict[str, float] = {}
        parser_work: dict[str, float] = {}
        failed: dict[str, str] = {}
        parsed = []
        with self.hv.deferred_charges() as acc:
            self._acq_meta = {}
            for vm_name in names:
                vmi = self.vmi_for(vm_name)
                if self.flush_caches_each_round:
                    vmi.flush_caches()
                searcher = ModuleSearcher(vmi)
                before = acc.total
                cached = None
                copy = None
                try:
                    if self.incremental:
                        cached = self._try_manifest(vmi, searcher,
                                                    module_name)
                    if cached is None:
                        copy = searcher.copy_module(module_name)
                except ModuleNotLoadedError:
                    searcher_work[vm_name] = acc.total - before
                    continue
                except (TransientFault, RetryExhausted) as exc:
                    searcher_work[vm_name] = acc.total - before
                    failed[vm_name] = f"retry-exhausted: {exc}"
                    continue
                except IntrospectionFault as exc:
                    searcher_work[vm_name] = acc.total - before
                    failed[vm_name] = f"unreadable: {exc}"
                    continue
                searcher_work[vm_name] = acc.total - before
                if cached is not None:
                    # manifest hit: no parse item lands on this VM's
                    # worker chain this round
                    parsed.append(cached)
                    continue
                before = acc.total
                parsed_mod = self.parser.parse(copy)
                if self.incremental:
                    self._note_acquisition(vmi, copy, parsed_mod)
                parsed.append(parsed_mod)
                parser_work[vm_name] = acc.total - before
        return parsed, searcher_work, parser_work, failed

    def _compare_deferred(self, pair_jobs) -> tuple[list, list[float]]:
        """Run ``compare_pair`` jobs with per-pair work-item cuts.

        In incremental mode each job goes through
        :meth:`ModChecker._compare_or_replay`; a replayed pair charges
        nothing, so its work item is 0.0 and it never lengthens any
        worker's chain in the makespan.
        """
        pairs = []
        pair_work: list[float] = []
        with self.hv.deferred_charges() as acc:
            for mod_a, mod_b in pair_jobs:
                before = acc.total
                if self.incremental:
                    pairs.append(self._compare_or_replay(mod_a, mod_b))
                else:
                    pairs.append(self.checker.compare_pair(mod_a, mod_b))
                pair_work.append(acc.total - before)
        return pairs, pair_work

    def _advance_makespan(self, searcher_work: dict[str, float],
                          parser_work: dict[str, float],
                          pair_work: list[float]) -> ComponentTimings:
        """Advance the clock once; return the wall-time breakdown.

        Fetch items are per-VM chains (searcher then parser on one
        worker), so the makespan is taken over their sums and the wall
        time split by each component's share of the CPU work.
        """
        factor = self.hv.scheduler.dom0_slowdown(self.hv.guest_demand(),
                                                 dom0_threads=self.threads)
        fetch_items = [searcher_work.get(vm, 0.0) + parser_work.get(vm, 0.0)
                       for vm in searcher_work.keys() | parser_work.keys()]
        fetch_wall = makespan(fetch_items, self.threads) * factor
        check_wall = makespan(pair_work, self.threads) * factor
        self.hv.clock.advance(fetch_wall + check_wall)
        s_cpu = sum(searcher_work.values())
        p_cpu = sum(parser_work.values())
        share = s_cpu / (s_cpu + p_cpu) if s_cpu + p_cpu else 1.0
        return ComponentTimings(searcher=fetch_wall * share,
                                parser=fetch_wall * (1.0 - share),
                                checker=check_wall)

    # -- checking modes -------------------------------------------------------

    def check_on_vm(self, module_name: str, target_vm: str,
                    vms: list[str] | None = None) -> CheckOutcome:
        names = self.pool_vm_names(vms)
        if target_vm not in names:
            names = [target_vm] + names

        with self.obs.tracer.span("modchecker.check", module=module_name,
                                  mode="parallel-target", target=target_vm,
                                  threads=self.threads):
            with self.obs.tracer.span("modchecker.fetch",
                                      module=module_name, vms=len(names)):
                parsed, searcher_work, parser_work, failed = \
                    self._parallel_fetch(module_name, names)
            by_vm = {p.vm_name: p for p in parsed}
            if target_vm in failed:
                raise RetryExhausted(
                    f"cannot acquire {module_name!r} from target {target_vm}: "
                    f"{failed[target_vm]}")
            if target_vm not in by_vm:
                raise ModuleNotLoadedError(
                    f"{module_name!r} not loaded on target {target_vm}")
            others = [p for p in parsed if p.vm_name != target_vm]
            if not others:
                raise InsufficientPool(
                    f"no other VM exposes {module_name!r} for comparison")

            with self.obs.tracer.span("checker.compare", module=module_name,
                                      pairs=len(others)):
                pairs, pair_work = self._compare_deferred(
                    (by_vm[target_vm], other) for other in others)
            timings = self._advance_makespan(searcher_work, parser_work,
                                             pair_work)

        matches = sum(1 for p in pairs if p.matched)
        report = VMCheckReport(
            module_name=module_name, target_vm=target_vm,
            pairs=tuple(pairs), matches=matches, comparisons=len(pairs))
        per_vm_work = {vm: searcher_work[vm] + parser_work.get(vm, 0.0)
                       for vm in searcher_work}
        outcome = CheckOutcome(report=report, timings=timings,
                               per_vm_searcher=per_vm_work)
        outcome.parallel = ParallelTimings(   # type: ignore[attr-defined]
            cpu=ComponentTimings(searcher=sum(searcher_work.values()),
                                 parser=sum(parser_work.values()),
                                 checker=sum(pair_work)),
            wall=timings)
        self._record_outcome(module_name, timings)
        return outcome

    def check_pool(self, module_name: str,
                   vms: list[str] | None = None, *,
                   mode: str = "pairwise") -> PoolOutcome:
        """Pool cross-check with the fetches *and* the O(t²) pairwise
        comparisons packed onto ``threads`` workers.

        Same verdicts and degradation semantics as the sequential
        :meth:`ModChecker.check_pool`; only the clock model differs.
        ``mode="canonical"`` keeps its O(t) single-reference pass, which
        is inherently sequential per module, so only its fetch phase
        parallelises.
        """
        if mode not in ("pairwise", "canonical"):
            raise ValueError(f"unknown pool mode {mode!r}")
        names = self.pool_vm_names(vms)
        with self.obs.tracer.span("modchecker.check", module=module_name,
                                  mode=f"parallel-{mode}",
                                  threads=self.threads):
            with self.obs.tracer.span("modchecker.fetch",
                                      module=module_name, vms=len(names)):
                parsed, searcher_work, parser_work, failed = \
                    self._parallel_fetch(module_name, names)
            if len(parsed) < 2:
                degraded_note = (f" ({len(failed)} degraded: "
                                 f"{', '.join(sorted(failed))})"
                                 if failed else "")
                raise InsufficientPool(
                    f"{module_name!r} present on {len(parsed)} VM(s); "
                    f"need at least 2{degraded_note}")

            n_pairs = (len(parsed) - 1 if mode == "canonical"
                       else len(parsed) * (len(parsed) - 1) // 2)
            with self.obs.tracer.span("checker.compare", module=module_name,
                                      pairs=n_pairs):
                if mode == "canonical":
                    with self.hv.deferred_charges() as acc:
                        report = self.checker.check_pool_canonical(parsed)
                    pair_work = [acc.total]
                else:
                    pairs, pair_work = self._compare_deferred(
                        (parsed[i], parsed[j])
                        for i in range(len(parsed))
                        for j in range(i + 1, len(parsed)))
                    report = self.checker.vote(parsed, pairs)
            timings = self._advance_makespan(searcher_work, parser_work,
                                             pair_work)
        report.degraded = dict(failed)
        if self.incremental:
            self._update_manifests(module_name, report)

        per_vm_work = {vm: searcher_work[vm] + parser_work.get(vm, 0.0)
                       for vm in searcher_work}
        outcome = PoolOutcome(report=report, timings=timings,
                              per_vm_searcher=per_vm_work)
        outcome.parallel = ParallelTimings(   # type: ignore[attr-defined]
            cpu=ComponentTimings(searcher=sum(searcher_work.values()),
                                 parser=sum(parser_work.values()),
                                 checker=sum(pair_work)),
            wall=timings)
        self._record_outcome(module_name, timings, report)
        return outcome
