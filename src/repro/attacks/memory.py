"""Memory-resident attacks: infections applied to a *running* guest.

The paper infects files and reboots; real rootkits more often patch the
live kernel. A :class:`MemoryAttack` operates on a booted
:class:`~repro.guest.kernel.GuestKernel` through its own address space
(the attacker runs *inside* the guest at ring 0) — no file is touched,
so disk-comparing tools like SVV see nothing, which is exactly the
scenario where cross-VM comparison shines (paper §II).
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field

from ..errors import AttackError
from ..guest.kernel import GuestKernel
from ..pe.builder import DriverBlueprint

__all__ = ["MemoryInfectionResult", "MemoryAttack", "IATHookAttack",
           "LdrDecoyAttack", "RuntimeCodePatchAttack"]


@dataclass
class MemoryInfectionResult:
    """Record of an in-memory infection."""

    attack_name: str
    vm_name: str
    module_name: str
    #: VAs whose bytes changed
    modified_vas: tuple[int, ...]
    #: hash-region names ModChecker is expected to flag ('()' == blind spot)
    expected_regions: tuple[str, ...]
    details: dict = field(default_factory=dict)

    @property
    def expected_detected(self) -> bool:
        return bool(self.expected_regions)


class MemoryAttack(abc.ABC):
    """An infection of a live guest's kernel memory."""

    name: str = "abstract-memory"

    @abc.abstractmethod
    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        """Infect ``blueprint.name`` as loaded in ``kernel``."""


class IATHookAttack(MemoryAttack):
    """Overwrite one IAT slot so an imported call lands on attacker code.

    The IAT lives in ``.rdata`` — *not* executable — so ModChecker,
    which hashes only headers and executable sections (by design, since
    writable data legitimately differs), does **not** see this. The
    paper inherits this blind spot; the test suite pins it down
    honestly (``expected_regions == ()``).
    """

    name = "iat-hook"

    def __init__(self, slot_index: int = 0) -> None:
        self.slot_index = slot_index

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        module = kernel.module(blueprint.name)
        if not blueprint.iat_slots:
            raise AttackError(f"{blueprint.name} imports nothing to hook")
        dll, symbol, slot_rva = blueprint.iat_slots[
            self.slot_index % len(blueprint.iat_slots)]
        slot_va = module.base + slot_rva
        original = struct.unpack("<I", kernel.aspace.read(slot_va, 4))[0]
        # Point the import at an attacker-chosen address (here: the
        # module's own entry point — any diversion works for the test).
        evil_target = module.entry_point
        kernel.aspace.write(slot_va, struct.pack("<I", evil_target))
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=blueprint.name,
            modified_vas=tuple(range(slot_va, slot_va + 4)),
            expected_regions=(),           # the documented blind spot
            details={"import": f"{dll}!{symbol}",
                     "slot_va": slot_va,
                     "original": original,
                     "hooked_to": evil_target})


class LdrDecoyAttack(MemoryAttack):
    """Plant a fake ``LDR_DATA_TABLE_ENTRY`` in the module list.

    The inverse of DKOM hiding: a bogus entry whose ``DllBase`` points
    at unbacked kernel VA space. List-walking tools (including the
    paper's Module-Searcher) enumerate it and either fault or report a
    phantom module; the cross-view comparison exposes it as
    *listed-only*. The searcher's fault-tolerant copy path must also
    survive it — tested in the cross-view suite.
    """

    name = "ldr-decoy"

    def __init__(self, decoy_name: str = "ghost.sys",
                 decoy_base: int = 0xFBAD_0000,
                 decoy_size: int = 0x8000) -> None:
        self.decoy_name = decoy_name
        self.decoy_base = decoy_base
        self.decoy_size = decoy_size

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint | None = None,
              ) -> MemoryInfectionResult:
        from ..guest.ldr import LdrDataTableEntry, ListEntry, link_tail
        from ..guest.unicode_string import UnicodeString

        layout = kernel.layout          # the attacker knows the build
        head_va = kernel.symbols["PsLoadedModuleList"]
        stub = UnicodeString.for_text(self.decoy_name, 0)[1]
        node_va = kernel.aspace.alloc_fixed(
            layout.entry_size + len(stub), f"decoy:{self.decoy_name}")
        name_va = node_va + layout.entry_size
        us, payload = UnicodeString.for_text(self.decoy_name, name_va)
        entry = LdrDataTableEntry(
            in_load_order=ListEntry(0, 0),
            in_memory_order=ListEntry(0, 0),
            in_init_order=ListEntry(0, 0),
            dll_base=self.decoy_base, entry_point=self.decoy_base + 0x100,
            size_of_image=self.decoy_size,
            full_dll_name=us, base_dll_name=us)
        kernel.aspace.write(node_va, entry.pack(layout))
        kernel.aspace.write(name_va, payload)
        link_tail(kernel.aspace.write, kernel.aspace.read, head_va, node_va)
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=self.decoy_name,
            modified_vas=tuple(range(node_va, node_va + layout.entry_size)),
            expected_regions=(),       # not an image modification
            details={"node_va": node_va, "decoy_base": self.decoy_base})


class RuntimeCodePatchAttack(MemoryAttack):
    """Patch executable bytes of a loaded module in place.

    The memory-resident twin of E1: the on-disk file stays pristine
    (defeating disk-comparison tools) but the ``.text`` hash diverges
    from every other clone.
    """

    name = "runtime-code-patch"

    def __init__(self, offset_in_text: int = 0x20,
                 patch: bytes = b"\xEB\xFE") -> None:    # jmp $ (hang)
        self.offset_in_text = offset_in_text
        self.patch = bytes(patch)

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        module = kernel.module(blueprint.name)
        text = blueprint.section(".text")
        if self.offset_in_text + len(self.patch) > text.virtual_size:
            raise AttackError("patch exceeds .text")
        va = module.base + text.virtual_address + self.offset_in_text
        original = kernel.aspace.read(va, len(self.patch))
        kernel.aspace.write(va, self.patch)
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=blueprint.name,
            modified_vas=tuple(range(va, va + len(self.patch))),
            expected_regions=(".text",),
            details={"va": va, "original": original.hex(),
                     "patch": self.patch.hex()})
