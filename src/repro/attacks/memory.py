"""Memory-resident attacks: infections applied to a *running* guest.

The paper infects files and reboots; real rootkits more often patch the
live kernel. A :class:`MemoryAttack` operates on a booted
:class:`~repro.guest.kernel.GuestKernel` through its own address space
(the attacker runs *inside* the guest at ring 0) — no file is touched,
so disk-comparing tools like SVV see nothing, which is exactly the
scenario where cross-VM comparison shines (paper §II).
"""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass, field

from ..errors import AttackError
from ..guest.kernel import GuestKernel
from ..pe.builder import DriverBlueprint

__all__ = ["MemoryInfectionResult", "MemoryAttack", "IATHookAttack",
           "LdrBlindingAttack", "LdrDecoyAttack", "RacingWriterAttack",
           "RuntimeCodePatchAttack"]


@dataclass
class MemoryInfectionResult:
    """Record of an in-memory infection."""

    attack_name: str
    vm_name: str
    module_name: str
    #: VAs whose bytes changed
    modified_vas: tuple[int, ...]
    #: hash-region names ModChecker is expected to flag ('()' == blind spot)
    expected_regions: tuple[str, ...]
    details: dict = field(default_factory=dict)

    @property
    def expected_detected(self) -> bool:
        return bool(self.expected_regions)


class MemoryAttack(abc.ABC):
    """An infection of a live guest's kernel memory."""

    name: str = "abstract-memory"

    @abc.abstractmethod
    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        """Infect ``blueprint.name`` as loaded in ``kernel``."""


class IATHookAttack(MemoryAttack):
    """Overwrite one IAT slot so an imported call lands on attacker code.

    The IAT lives in ``.rdata`` — *not* executable — so ModChecker,
    which hashes only headers and executable sections (by design, since
    writable data legitimately differs), does **not** see this. The
    paper inherits this blind spot; the test suite pins it down
    honestly (``expected_regions == ()``).
    """

    name = "iat-hook"

    def __init__(self, slot_index: int = 0) -> None:
        self.slot_index = slot_index

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        module = kernel.module(blueprint.name)
        if not blueprint.iat_slots:
            raise AttackError(f"{blueprint.name} imports nothing to hook")
        dll, symbol, slot_rva = blueprint.iat_slots[
            self.slot_index % len(blueprint.iat_slots)]
        slot_va = module.base + slot_rva
        original = struct.unpack("<I", kernel.aspace.read(slot_va, 4))[0]
        # Point the import at an attacker-chosen address (here: the
        # module's own entry point — any diversion works for the test).
        evil_target = module.entry_point
        kernel.aspace.write(slot_va, struct.pack("<I", evil_target))
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=blueprint.name,
            modified_vas=tuple(range(slot_va, slot_va + 4)),
            expected_regions=(),           # the documented blind spot
            details={"import": f"{dll}!{symbol}",
                     "slot_va": slot_va,
                     "original": original,
                     "hooked_to": evil_target})


class LdrDecoyAttack(MemoryAttack):
    """Plant a fake ``LDR_DATA_TABLE_ENTRY`` in the module list.

    The inverse of DKOM hiding: a bogus entry whose ``DllBase`` points
    at unbacked kernel VA space. List-walking tools (including the
    paper's Module-Searcher) enumerate it and either fault or report a
    phantom module; the cross-view comparison exposes it as
    *listed-only*. The searcher's fault-tolerant copy path must also
    survive it — tested in the cross-view suite.
    """

    name = "ldr-decoy"

    def __init__(self, decoy_name: str = "ghost.sys",
                 decoy_base: int = 0xFBAD_0000,
                 decoy_size: int = 0x8000) -> None:
        self.decoy_name = decoy_name
        self.decoy_base = decoy_base
        self.decoy_size = decoy_size

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint | None = None,
              ) -> MemoryInfectionResult:
        from ..guest.ldr import LdrDataTableEntry, ListEntry, link_tail
        from ..guest.unicode_string import UnicodeString

        layout = kernel.layout          # the attacker knows the build
        head_va = kernel.symbols["PsLoadedModuleList"]
        stub = UnicodeString.for_text(self.decoy_name, 0)[1]
        node_va = kernel.aspace.alloc_fixed(
            layout.entry_size + len(stub), f"decoy:{self.decoy_name}")
        name_va = node_va + layout.entry_size
        us, payload = UnicodeString.for_text(self.decoy_name, name_va)
        entry = LdrDataTableEntry(
            in_load_order=ListEntry(0, 0),
            in_memory_order=ListEntry(0, 0),
            in_init_order=ListEntry(0, 0),
            dll_base=self.decoy_base, entry_point=self.decoy_base + 0x100,
            size_of_image=self.decoy_size,
            full_dll_name=us, base_dll_name=us)
        kernel.aspace.write(node_va, entry.pack(layout))
        kernel.aspace.write(name_va, payload)
        link_tail(kernel.aspace.write, kernel.aspace.read, head_va, node_va)
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=self.decoy_name,
            modified_vas=tuple(range(node_va, node_va + layout.entry_size)),
            expected_regions=(),       # not an image modification
            details={"node_va": node_va, "decoy_base": self.decoy_base})


class RuntimeCodePatchAttack(MemoryAttack):
    """Patch executable bytes of a loaded module in place.

    The memory-resident twin of E1: the on-disk file stays pristine
    (defeating disk-comparison tools) but the ``.text`` hash diverges
    from every other clone.
    """

    name = "runtime-code-patch"

    def __init__(self, offset_in_text: int = 0x20,
                 patch: bytes = b"\xEB\xFE") -> None:    # jmp $ (hang)
        self.offset_in_text = offset_in_text
        self.patch = bytes(patch)

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        module = kernel.module(blueprint.name)
        text = blueprint.section(".text")
        if self.offset_in_text + len(self.patch) > text.virtual_size:
            raise AttackError("patch exceeds .text")
        va = module.base + text.virtual_address + self.offset_in_text
        original = kernel.aspace.read(va, len(self.patch))
        kernel.aspace.write(va, self.patch)
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=blueprint.name,
            modified_vas=tuple(range(va, va + len(self.patch))),
            expected_regions=(".text",),
            details={"va": va, "original": original.hex(),
                     "patch": self.patch.hex()})


class RacingWriterAttack(RuntimeCodePatchAttack):
    """A resident implant that re-tampers the module *during* repair.

    The MemoryRanger threat model: the attacker still runs at ring 0, so
    a one-shot restore is not a fix — the implant notices its patch is
    gone and puts it back. :meth:`apply` plants the initial patch like
    :class:`RuntimeCodePatchAttack`; :meth:`arm` then subscribes to the
    simulated clock, and on every advance (i.e. whenever dom0 burns CPU
    — fetching, hashing, writing) the implant checks its patch site and
    rewrites it if someone cleaned it, up to ``rewrites`` times.

    Because the repair engine keeps the target range write-protected for
    the whole restore window, every rewrite lands on an armed frame and
    is trapped — the engine sees ``raced_writes`` and retries. A budget
    below the defender's ``max_attempts`` converges to verified clean;
    at or above it, the engine escalates to quarantine. Both outcomes
    are deterministic per seed: the race is driven by the cost model,
    not host timing.
    """

    name = "racing-writer"

    def __init__(self, offset_in_text: int = 0x20,
                 patch: bytes = b"\xEB\xFE", rewrites: int = 2) -> None:
        super().__init__(offset_in_text, patch)
        self.rewrites = int(rewrites)
        self.rewrites_done = 0
        #: simulated timestamps of each successful re-tamper
        self.rewrite_times: list[float] = []
        self._kernel: GuestKernel | None = None
        self._va: int | None = None
        self._clock = None

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        result = super().apply(kernel, blueprint)
        self._kernel = kernel
        self._va = result.details["va"]
        result.attack_name = self.name
        result.details["rewrite_budget"] = self.rewrites
        return result

    def arm(self, clock) -> None:
        """Start racing: re-tamper whenever the clock advances."""
        if self._va is None:
            raise AttackError("arm() before apply()")
        if self._clock is None:
            self._clock = clock
            clock.on_advance.append(self._on_advance)

    def disarm(self) -> None:
        """Stop racing (the implant is killed / budget withdrawn)."""
        if self._clock is not None:
            self._clock.on_advance.remove(self._on_advance)
            self._clock = None

    def _on_advance(self, now: float) -> None:
        if self.rewrites_done >= self.rewrites:
            return
        current = self._kernel.aspace.read(self._va, len(self.patch))
        if bytes(current) == self.patch:
            return                       # patch still in place — stay quiet
        # Someone restored the clean bytes: put the hook back. This is a
        # guest-side write, so if the repair engine has the frame armed
        # it is trapped and counted as a raced write.
        self._kernel.aspace.write(self._va, self.patch)
        self.rewrites_done += 1
        self.rewrite_times.append(now)


class LdrBlindingAttack(MemoryAttack):
    """Spoof the victim's LDR ``DllBase`` to blind restore-capable AV.

    The AV-blinding trick from the MemoryRanger line of work: the
    rootkit patches the victim's *real* ``LDR_DATA_TABLE_ENTRY`` so its
    ``DllBase``/``SizeOfImage``/``EntryPoint`` describe a *different*,
    fully mapped module. A checker that trusts the list reads a valid PE
    (the alias's), votes the victim tampered (the bytes match nothing in
    the pool), and — if it naively "restores" — writes the reference
    image over the alias module, corrupting an innocent driver at the
    attacker's chosen address.

    The repair engine's attestation gates must refuse this target
    (aliased base / size mismatch) and abort with an audit trail rather
    than write anything.
    """

    name = "ldr-blinding"

    def __init__(self, alias_module: str | None = None) -> None:
        self.alias_module = alias_module

    def apply(self, kernel: GuestKernel, blueprint: DriverBlueprint,
              ) -> MemoryInfectionResult:
        from ..guest.ldr import LIST_ENTRY_SIZE  # noqa: F401  (layout pkg)

        victim = kernel.module(blueprint.name)
        if self.alias_module is not None:
            alias = kernel.module(self.alias_module)
        else:
            others = [m for n, m in sorted(kernel.modules.items())
                      if n != blueprint.name]
            if not others:
                raise AttackError("no other module to alias")
            alias = others[0]
        layout = kernel.layout
        entry_va = victim.ldr_entry_va
        fields = ((layout.off_dllbase, alias.base),
                  (layout.off_entrypoint, alias.entry_point),
                  (layout.off_sizeofimage, alias.size_of_image))
        for off, value in fields:
            kernel.aspace.write(entry_va + off, struct.pack("<I", value))
        vas = tuple(va for off, _ in fields
                    for va in range(entry_va + off, entry_va + off + 4))
        return MemoryInfectionResult(
            attack_name=self.name, vm_name=kernel.name,
            module_name=blueprint.name,
            modified_vas=vas,
            # the acquired alias image diverges from the pool copies in
            # essentially every region; the optional header (sizes,
            # entry point) is guaranteed to differ between builds
            expected_regions=("IMAGE_OPTIONAL_HEADER",),
            details={"ldr_entry_va": entry_va,
                     "victim_base": victim.base,
                     "alias": alias.name, "alias_base": alias.base})
