"""E4 — PE-header modification via DLL hooking (paper §V-B-4).

Models the CFF Explorer procedure from the paper: a sample
``inject.dll`` (exporting ``callMessageBox``) is attached to
``dummy.sys``. Consequences the paper enumerates, all reproduced here
by direct byte surgery on the file:

* the injected code is made visible to the module, "increasing the
  VirtualSize value in the section header" — we grow ``.text`` by the
  inject blob (> one page, so the in-memory layout must move);
* "injecting extra code into the kernel module shifts the locations of
  subsequent section headers" — ``.rdata``/``.data``/``INIT``/``.reloc``
  all move up by the page-aligned growth, raw pointers likewise;
* "also modifies the .text section data" — the entry function gets a
  5-byte ``JMP`` into the injected code (the inline-hook mechanism
  reused when caves are too small);
* "the pointers that reference these new header locations will be
  adjusted appropriately" — SizeOfImage, SizeOfCode, BaseOfData and the
  import data directory are updated, a new section holding import
  descriptors for ``inject.dll`` is appended, and NumberOfSections is
  incremented; ``.reloc`` is rebuilt so fixups still land on their
  (shifted) slots and the driver still loads.

Expected ModChecker signature (matches the paper's): mismatches in
``IMAGE_NT_HEADER``, ``IMAGE_OPTIONAL_HEADER``, **all** section
headers and ``.text`` — plus the structurally-new
``SECTION_HEADER[.ninj]`` our region naming makes visible.
"""

from __future__ import annotations

import dataclasses
import struct

from ..errors import AttackError
from ..pe import constants as C
from ..pe.builder import DriverBlueprint
from ..pe.relocations import build_reloc_section, parse_reloc_section
from ..pe.structures import (DosHeader, FileHeader, OptionalHeader,
                             SectionHeader)
from .base import Attack, InfectionResult

__all__ = ["DllInjectionAttack", "INJECT_DLL_NAME", "INJECT_EXPORT"]

INJECT_DLL_NAME = "inject.dll"
INJECT_EXPORT = "callMessageBox"
NEW_SECTION_NAME = ".ninj"


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _build_inject_blob(min_size: int) -> bytes:
    """The attached DLL's code: marker strings + a callable stub."""
    blob = bytearray()
    blob += bytes([0x55, 0x8B, 0xEC])              # push ebp; mov ebp, esp
    blob += b"\x90" * 16                            # MessageBox elided
    blob += bytes([0x5D, 0xC3])                     # pop ebp; ret
    blob += INJECT_DLL_NAME.encode() + b"\x00"
    blob += INJECT_EXPORT.encode() + b"\x00"
    if len(blob) < min_size:
        blob += bytes((0xCC for _ in range(min_size - len(blob))))
    return bytes(blob)


class DllInjectionAttack(Attack):
    """Attach inject.dll to the target driver via header surgery."""

    name = "dll-injection"

    def __init__(self, min_inject_size: int = 0x1100) -> None:
        # > one page guarantees the section layout actually shifts.
        if min_inject_size <= C.PAGE_SIZE:
            raise ValueError("inject blob must exceed one page to force "
                             "a layout shift")
        self.min_inject_size = min_inject_size

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        data = bytes(blueprint.file_bytes)
        dos = DosHeader.unpack(data)
        e_lfanew = dos.e_lfanew
        fh = FileHeader.unpack(data[e_lfanew + 4:])
        opt_off = e_lfanew + 4 + FileHeader.SIZE
        opt = OptionalHeader.unpack(data[opt_off:])
        sec_table_off = opt_off + fh.size_of_optional_header
        sections = [SectionHeader.unpack(
            data[sec_table_off + i * SectionHeader.SIZE:])
            for i in range(fh.number_of_sections)]
        if sections[0].name != ".text":
            raise AttackError("first section is not .text")
        if sec_table_off + (len(sections) + 1) * SectionHeader.SIZE \
                > opt.size_of_headers:
            raise AttackError("no room in headers for an extra section")

        text = sections[0]
        blob = _build_inject_blob(self.min_inject_size)
        inject_text_off = text.virtual_size        # blob goes at .text end

        new_text_vsize = text.virtual_size + len(blob)
        new_text_raw = _align(new_text_vsize, opt.file_alignment)
        va_shift = (_align(new_text_vsize, opt.section_alignment)
                    - _align(text.virtual_size, opt.section_alignment))
        raw_shift = new_text_raw - text.size_of_raw_data
        if va_shift <= 0:
            raise AttackError("inject blob failed to shift layout")

        shift_va_from = sections[1].virtual_address

        # --- rebuild .reloc with shifted fixup RVAs so the driver loads ----
        reloc = next(s for s in sections if s.name == ".reloc")
        old_fixups = parse_reloc_section(
            data[reloc.pointer_to_raw_data:
                 reloc.pointer_to_raw_data + reloc.virtual_size])
        new_fixups = [rva + va_shift if rva >= shift_va_from else rva
                      for rva in old_fixups]
        new_reloc_data = build_reloc_section(new_fixups)

        # --- new section headers -------------------------------------------------
        new_sections: list[SectionHeader] = []
        new_sections.append(dataclasses.replace(
            text, virtual_size=new_text_vsize, size_of_raw_data=new_text_raw))
        for sec in sections[1:]:
            updated = dataclasses.replace(
                sec,
                virtual_address=sec.virtual_address + va_shift,
                pointer_to_raw_data=sec.pointer_to_raw_data + raw_shift)
            if sec.name == ".reloc":
                updated = dataclasses.replace(
                    updated,
                    virtual_size=len(new_reloc_data),
                    size_of_raw_data=_align(len(new_reloc_data),
                                            opt.file_alignment))
            new_sections.append(updated)

        # Import-descriptor section for inject.dll, appended at the end.
        last = new_sections[-1]
        ninj_va = _align(last.virtual_address + last.virtual_size,
                         opt.section_alignment)
        ninj_data = self._build_import_stub(ninj_va)
        prev_raw_end = (new_sections[-1].pointer_to_raw_data
                        + new_sections[-1].size_of_raw_data)
        ninj = SectionHeader(
            name=NEW_SECTION_NAME, virtual_size=len(ninj_data),
            virtual_address=ninj_va,
            size_of_raw_data=_align(len(ninj_data), opt.file_alignment),
            pointer_to_raw_data=prev_raw_end,
            characteristics=C.RDATA_CHARACTERISTICS)
        new_sections.append(ninj)

        # --- headers ----------------------------------------------------------------
        new_fh = dataclasses.replace(
            fh, number_of_sections=len(new_sections))
        new_opt = dataclasses.replace(
            opt,
            size_of_code=opt.size_of_code + raw_shift,
            base_of_data=opt.base_of_data + va_shift,
            size_of_image=_align(ninj_va + len(ninj_data),
                                 opt.section_alignment))
        exp = opt.data_directories[C.DIR_EXPORT]
        if exp.size:
            new_opt = new_opt.with_directory(
                C.DIR_EXPORT, exp.virtual_address + va_shift, exp.size)
        imp = opt.data_directories[C.DIR_IMPORT]
        new_opt = new_opt.with_directory(
            C.DIR_IMPORT, imp.virtual_address + va_shift, imp.size)
        rel = opt.data_directories[C.DIR_BASERELOC]
        new_opt = new_opt.with_directory(
            C.DIR_BASERELOC, rel.virtual_address + va_shift,
            len(new_reloc_data))

        # --- assemble the infected file -----------------------------------------------
        out = bytearray()
        out += data[:e_lfanew + 4]
        out += new_fh.pack()
        out += new_opt.pack()
        for sec in new_sections:
            out += sec.pack()
        out += b"\x00" * (opt.size_of_headers - len(out))

        # .text: original raw data + blob, padded to the new raw size.
        text_raw = bytearray(
            data[text.pointer_to_raw_data:
                 text.pointer_to_raw_data + text.size_of_raw_data])
        if len(text_raw) < new_text_vsize:
            text_raw += b"\x00" * (new_text_vsize - len(text_raw))
        text_raw[inject_text_off:inject_text_off + len(blob)] = blob
        # Hook the entry function into the injected code.
        entry = blueprint.entry_function()
        rel32 = inject_text_off - (entry.offset + 5)
        text_raw[entry.offset:entry.offset + 5] = (
            b"\xE9" + struct.pack("<i", rel32))
        out += bytes(text_raw).ljust(new_text_raw, b"\x00")

        for old, new in zip(sections[1:], new_sections[1:-1]):
            if new.name == ".reloc":
                payload = new_reloc_data
            else:
                payload = data[old.pointer_to_raw_data:
                               old.pointer_to_raw_data + old.size_of_raw_data]
            assert len(out) == new.pointer_to_raw_data, new.name
            out += bytes(payload).ljust(new.size_of_raw_data, b"\x00")
        assert len(out) == ninj.pointer_to_raw_data
        out += ninj_data.ljust(ninj.size_of_raw_data, b"\x00")

        # The import block also moved with .rdata: descriptors carry
        # absolute RVAs (OFT, Name, FirstThunk) and the thunk arrays
        # carry hint/name RVAs — all .rdata-relative, all += va_shift.
        old_rdata = sections[1]

        def _rdata_raw(new_rva: int) -> int:
            return (new_sections[1].pointer_to_raw_data
                    + (new_rva - va_shift - old_rdata.virtual_address))

        imp_raw = _rdata_raw(imp.virtual_address + va_shift)
        pos = imp_raw
        while True:
            oft, _st, _fw, name_rva, iat = struct.unpack_from("<IIIII",
                                                              out, pos)
            if oft == 0 and name_rva == 0 and iat == 0:
                break
            for field_off, value in ((0, oft), (12, name_rva), (16, iat)):
                struct.pack_into("<I", out, pos + field_off,
                                 value + va_shift)
            for array_rva in {oft, iat}:
                cursor = _rdata_raw(array_rva + va_shift)
                while True:
                    thunk, = struct.unpack_from("<I", out, cursor)
                    if thunk == 0:
                        break
                    if not thunk & 0x8000_0000:
                        struct.pack_into("<I", out, cursor,
                                         thunk + va_shift)
                    cursor += 4
            pos += 20

        # The export block moved with .rdata, so its *internal* RVAs
        # (table positions and name strings, all .rdata-relative) must
        # shift too — function RVAs point into .text and stay put. A
        # real CFF-Explorer rebuild performs the same pointer fixups.
        if exp.size:
            old_rdata = sections[1]
            exp_raw = (new_sections[1].pointer_to_raw_data
                       + (exp.virtual_address - old_rdata.virtual_address))
            for field_off in (12, 28, 32, 36):   # Name, AoF, AoN, AoNO
                value = struct.unpack_from("<I", out, exp_raw + field_off)[0]
                struct.pack_into("<I", out, exp_raw + field_off,
                                 value + va_shift)
            n_names = struct.unpack_from("<I", out, exp_raw + 24)[0]
            names_table = struct.unpack_from("<I", out, exp_raw + 32)[0]
            names_raw = (new_sections[1].pointer_to_raw_data
                         + (names_table - va_shift
                            - old_rdata.virtual_address))
            for i in range(n_names):
                rva = struct.unpack_from("<I", out, names_raw + 4 * i)[0]
                struct.pack_into("<I", out, names_raw + 4 * i,
                                 rva + va_shift)

        # --- fix blueprint metadata the loader consumes -------------------------------
        new_iat_slots = [(dll, sym, rva + va_shift if rva >= shift_va_from
                          else rva)
                         for dll, sym, rva in blueprint.iat_slots]
        infected = dataclasses.replace(
            blueprint, file_bytes=bytes(out), iat_slots=new_iat_slots,
            sections=new_sections, optional_header=new_opt)

        expected = ["IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER"]
        expected += [f"SECTION_HEADER[{s.name}]" for s in new_sections]
        expected += [".text"]
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=tuple(expected),
            details={
                "inject_dll": INJECT_DLL_NAME,
                "export": INJECT_EXPORT,
                "blob_bytes": len(blob),
                "va_shift": va_shift,
                "raw_shift": raw_shift,
                "new_section": NEW_SECTION_NAME,
            })

    @staticmethod
    def _build_import_stub(section_va: int) -> bytes:
        """A minimal import descriptor block naming inject.dll."""
        name_off = 40                    # after 2 descriptors (1 + null)
        thunk_off = name_off + len(INJECT_DLL_NAME) + 1
        desc = struct.pack("<IIIII", section_va + thunk_off, 0, 0,
                           section_va + name_off, section_va + thunk_off)
        out = bytearray(desc)
        out += b"\x00" * 20              # null descriptor
        out += INJECT_DLL_NAME.encode() + b"\x00"
        out += struct.pack("<I", 0)      # empty thunk list
        out += INJECT_EXPORT.encode() + b"\x00"
        return bytes(out)
