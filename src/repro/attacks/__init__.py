"""Rootkit infection techniques.

The paper's four evaluation attacks (E1-E4) plus extensions: header-
field attacks with crisp signatures and memory-resident attacks on
running guests (including the IAT-hook blind-spot probe).
"""

from .base import Attack, InfectionResult
from .dll_inject import DllInjectionAttack, INJECT_DLL_NAME, INJECT_EXPORT
from .headers import (EntryPointRedirectAttack, SectionCharacteristicsAttack,
                      TimestampForgeryAttack)
from .inline_hook import DEFAULT_PAYLOAD, InlineHookAttack
from .memory import (IATHookAttack, LdrBlindingAttack, LdrDecoyAttack,
                     MemoryAttack, MemoryInfectionResult,
                     RacingWriterAttack, RuntimeCodePatchAttack)
from .opcode import OpcodeReplacementAttack, SUB_ECX_1
from .registry import (ATTACKS, EXPERIMENTS, attack_for_experiment,
                       make_attack, register_attack)
from .stub import StubModificationAttack

__all__ = [
    "Attack", "InfectionResult",
    "DllInjectionAttack", "INJECT_DLL_NAME", "INJECT_EXPORT",
    "EntryPointRedirectAttack", "SectionCharacteristicsAttack",
    "TimestampForgeryAttack",
    "DEFAULT_PAYLOAD", "InlineHookAttack",
    "IATHookAttack", "LdrBlindingAttack", "LdrDecoyAttack", "MemoryAttack",
    "MemoryInfectionResult", "RacingWriterAttack", "RuntimeCodePatchAttack",
    "OpcodeReplacementAttack", "SUB_ECX_1",
    "ATTACKS", "EXPERIMENTS", "attack_for_experiment", "make_attack",
    "register_attack",
    "StubModificationAttack",
]
