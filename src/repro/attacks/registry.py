"""Attack registry: experiment id / name → attack factory.

The experiment harness addresses attacks by the paper's experiment
numbers (E1–E4); library users can also register their own techniques
to test detection coverage beyond the paper.
"""

from __future__ import annotations

from typing import Callable

from .base import Attack
from .dll_inject import DllInjectionAttack
from .headers import (EntryPointRedirectAttack, SectionCharacteristicsAttack,
                      TimestampForgeryAttack)
from .inline_hook import InlineHookAttack
from .opcode import OpcodeReplacementAttack
from .stub import StubModificationAttack

__all__ = ["ATTACKS", "EXPERIMENTS", "make_attack", "attack_for_experiment"]

#: name -> zero-arg factory. The first four are the paper's §V-B
#: techniques; the rest extend the evaluation matrix (file-level).
ATTACKS: dict[str, Callable[[], Attack]] = {
    OpcodeReplacementAttack.name: OpcodeReplacementAttack,
    InlineHookAttack.name: InlineHookAttack,
    StubModificationAttack.name: StubModificationAttack,
    DllInjectionAttack.name: DllInjectionAttack,
    SectionCharacteristicsAttack.name: SectionCharacteristicsAttack,
    EntryPointRedirectAttack.name: EntryPointRedirectAttack,
    TimestampForgeryAttack.name: TimestampForgeryAttack,
}

#: paper experiment id -> (attack name, the module the paper infects)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "E1": (OpcodeReplacementAttack.name, "hal.dll"),
    "E2": (InlineHookAttack.name, "hal.dll"),
    "E3": (StubModificationAttack.name, "dummy.sys"),
    "E4": (DllInjectionAttack.name, "dummy.sys"),
}


def make_attack(name: str) -> Attack:
    try:
        factory = ATTACKS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; known: {sorted(ATTACKS)}") from None
    return factory()


def attack_for_experiment(exp_id: str) -> tuple[Attack, str]:
    """(attack instance, target module name) for a paper experiment id."""
    try:
        attack_name, module = EXPERIMENTS[exp_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return make_attack(attack_name), module


def register_attack(name: str, factory: Callable[[], Attack]) -> None:
    """Add a user-defined technique to the registry."""
    if name in ATTACKS:
        raise ValueError(f"attack {name!r} already registered")
    ATTACKS[name] = factory
