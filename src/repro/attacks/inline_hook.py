"""E2 — inline hooking via an opcode cave (paper §V-B-2, Fig. 5).

The classic rootkit control-flow diversion (TCPIRPHOOK, Win32.Chatter):

1. find an **opcode cave** — a run of ``00`` padding inside ``.text``
   large enough for the payload;
2. copy the victim function's first instructions (the bytes the hook
   will clobber) into the cave, preceded by the malicious payload;
3. overwrite the function entry with ``JMP rel32`` to the cave;
4. end the cave with ``JMP rel32`` back to the instruction after the
   hook — "sanitation of overwritten bytes before returning to the
   original entry function".

Everything happens inside ``.text``: headers and other sections remain
byte-identical, so the expected ModChecker signature is **only the
.text hash mismatches** — but unlike E1 the change is semantic-
preserving for the caller, which is what makes inline hooks stealthy
against in-guest tools.
"""

from __future__ import annotations

import struct

from ..errors import NoOpcodeCave
from ..pe.builder import DriverBlueprint
from ..pe.disasm import instructions_covering
from .base import Attack, InfectionResult

__all__ = ["InlineHookAttack", "DEFAULT_PAYLOAD"]

#: A recognisable stand-in for malicious code: push/pop NOP-sled plus a
#: marker the tests can look for. Real payloads would, e.g., filter
#: network-query results.
DEFAULT_PAYLOAD = bytes([0x60,                    # pushad
                         0x90, 0x90, 0x90, 0x90,  # payload body (elided)
                         0x61])                   # popad

_JMP_LEN = 5                                      # E9 rel32


def _jmp_rel32(from_off: int, to_off: int) -> bytes:
    """Encode ``JMP rel32`` placed at section offset ``from_off``."""
    return b"\xE9" + struct.pack("<i", to_off - (from_off + _JMP_LEN))


class InlineHookAttack(Attack):
    """Hook the entry function through the largest available cave."""

    name = "inline-hook"

    def __init__(self, payload: bytes = DEFAULT_PAYLOAD,
                 victim_function: str | None = None) -> None:
        self.payload = bytes(payload)
        self.victim_function = victim_function

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        layout = blueprint.code_layout
        victim = (layout.function(self.victim_function)
                  if self.victim_function else layout.functions[0])

        # Bytes we must preserve: whole instructions covering the first
        # _JMP_LEN bytes of the victim — computed from the raw bytes
        # with the length decoder, as a real hooking engine must.
        text = blueprint.section(".text")
        code = blueprint.file_bytes[
            text.pointer_to_raw_data:
            text.pointer_to_raw_data + text.size_of_raw_data]
        saved_len = instructions_covering(code, victim.offset, victim.end,
                                          _JMP_LEN)
        needed = len(self.payload) + saved_len + _JMP_LEN

        cave = None
        for candidate in sorted(layout.caves, key=lambda c: -c.size):
            if candidate.size >= needed:
                cave = candidate
                break
        if cave is None:
            raise NoOpcodeCave(
                f"{blueprint.name}: no cave >= {needed} bytes "
                f"(largest: {max((c.size for c in layout.caves), default=0)})")

        text = blueprint.section(".text")
        data = bytearray(blueprint.file_bytes)
        base_raw = text.pointer_to_raw_data

        saved = bytes(data[base_raw + victim.offset:
                           base_raw + victim.offset + saved_len])

        # Cave: payload | saved instructions | jmp back.
        cave_cursor = cave.offset
        data[base_raw + cave_cursor:
             base_raw + cave_cursor + len(self.payload)] = self.payload
        cave_cursor += len(self.payload)
        data[base_raw + cave_cursor:
             base_raw + cave_cursor + saved_len] = saved
        cave_cursor += saved_len
        back = _jmp_rel32(cave_cursor, victim.offset + saved_len)
        data[base_raw + cave_cursor:
             base_raw + cave_cursor + _JMP_LEN] = back

        # Entry: jmp to cave, residue of clobbered instructions NOP'd.
        hook = _jmp_rel32(victim.offset, cave.offset)
        data[base_raw + victim.offset:
             base_raw + victim.offset + _JMP_LEN] = hook
        for i in range(_JMP_LEN, saved_len):
            data[base_raw + victim.offset + i] = 0x90

        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=(".text",),
            details={
                "victim": victim.name,
                "cave_offset": cave.offset,
                "cave_size": cave.size,
                "payload_bytes": len(self.payload),
                "saved_instruction_bytes": saved_len,
            })
