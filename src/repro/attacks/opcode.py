"""E1 — single opcode replacement (paper §V-B-1).

The paper opens ``hal.dll`` in OllyDbg and rewrites one instruction in
the ``.text`` section: ``DEC ECX`` (opcode ``49``) becomes its
semantically-equivalent ``SUB ECX, 1`` (``83 E9 01``). The 1→3 byte
rewrite overwrites the two bytes that follow (OllyDbg's in-place
assemble), so the section's size and all header fields are untouched —
the minimal possible code change. Expected ModChecker signature:
**only the .text hash mismatches**.

This models malware's smallest move: "insertion of a specially crafted
jump instruction or modification of the pointer that references a
legitimate function".
"""

from __future__ import annotations

from ..errors import AttackError
from ..pe.builder import DriverBlueprint
from ..pe.codegen import OPC_DEC_ECX, PROLOGUE
from .base import Attack, InfectionResult

__all__ = ["OpcodeReplacementAttack", "SUB_ECX_1"]

#: ``SUB ECX, 1`` — the replacement instruction.
SUB_ECX_1 = bytes([0x83, 0xE9, 0x01])


class OpcodeReplacementAttack(Attack):
    """Rewrite the entry function's ``DEC ECX`` to ``SUB ECX, 1``."""

    name = "opcode-replacement"

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        entry = blueprint.entry_function()
        # The code generator plants DEC ECX right after the prologue of
        # the entry function, followed by two NOPs the wider encoding
        # may spill into.
        code_off = entry.offset + len(PROLOGUE)
        text = blueprint.section(".text")
        file_off = text.pointer_to_raw_data + code_off

        data = bytearray(blueprint.file_bytes)
        if data[file_off] != OPC_DEC_ECX:
            raise AttackError(
                f"{blueprint.name}: expected DEC ECX ({OPC_DEC_ECX:#04x}) at "
                f"file offset {file_off:#x}, found {data[file_off]:#04x}")
        data[file_off:file_off + len(SUB_ECX_1)] = SUB_ECX_1

        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=(".text",),
            details={
                "function": entry.name,
                "text_offset": code_off,
                "old_opcode": f"{OPC_DEC_ECX:02X}",
                "new_opcode": SUB_ECX_1.hex().upper(),
            })
