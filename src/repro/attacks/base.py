"""Attack framework: file-level module infections.

The paper's evaluation (§V-B) infects modules the way real rootkits do
— by modifying the module *file* and letting the OS load the infected
image ("Upon system restart, the newly modified hal.dll file was loaded
into memory"). Each attack here is therefore a transformation
``DriverBlueprint -> infected DriverBlueprint``: the returned blueprint
carries patched ``file_bytes`` and is swapped into one VM's catalog
before boot.

Every attack records which file offsets it touched and which hash
regions it *expects* ModChecker to flag — the ground truth the E1–E4
experiments assert against.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field

from ..pe.builder import DriverBlueprint

__all__ = ["InfectionResult", "Attack"]


@dataclass
class InfectionResult:
    """An infected blueprint plus ground truth about the infection."""

    attack_name: str
    original: DriverBlueprint
    infected: DriverBlueprint
    #: file offsets whose bytes changed
    modified_offsets: tuple[int, ...]
    #: hash-region names ModChecker is expected to flag
    expected_regions: tuple[str, ...]
    details: dict = field(default_factory=dict)

    @property
    def bytes_changed(self) -> int:
        return len(self.modified_offsets)


class Attack(abc.ABC):
    """One infection technique."""

    #: short identifier, e.g. ``"opcode-replacement"``
    name: str = "abstract"

    @abc.abstractmethod
    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        """Produce an infected copy of ``blueprint``."""

    # -- helpers shared by the concrete attacks ---------------------------------

    @staticmethod
    def _with_file_bytes(blueprint: DriverBlueprint,
                         new_bytes: bytes) -> DriverBlueprint:
        """Blueprint copy with replaced file bytes (metadata retained)."""
        return dataclasses.replace(blueprint, file_bytes=bytes(new_bytes))

    @staticmethod
    def _diff_offsets(old: bytes, new: bytes) -> tuple[int, ...]:
        """Offsets where two same-length files differ (for ground truth)."""
        if len(old) == len(new):
            return tuple(i for i, (a, b) in enumerate(zip(old, new))
                         if a != b)
        # Length change: report the shorter-common-prefix divergence point
        # onwards; precise per-byte attribution is meaningless then.
        n = min(len(old), len(new))
        first = next((i for i in range(n) if old[i] != new[i]), n)
        return tuple(range(first, max(len(old), len(new))))
