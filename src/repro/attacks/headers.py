"""Header-field attacks beyond the paper's four: small, surgical edits
to single PE header fields, each with a crisp expected signature.

These extend the evaluation matrix: the paper shows header integrity
matters (E3/E4); these probe *which* header region catches *which*
field, including the classic rootkit preparation steps (making code
writable, redirecting the entry point).
"""

from __future__ import annotations

import struct

from ..errors import AttackError, NoOpcodeCave
from ..pe import constants as C
from ..pe.builder import DriverBlueprint
from ..pe.structures import FileHeader, SectionHeader
from .base import Attack, InfectionResult

__all__ = ["SectionCharacteristicsAttack", "EntryPointRedirectAttack",
           "TimestampForgeryAttack"]


class SectionCharacteristicsAttack(Attack):
    """Flip ``.text`` writable — step one of many self-patching rootkits.

    Touches exactly 4 bytes of one section header. Expected signature:
    ``SECTION_HEADER[.text]`` only (the code bytes are untouched).
    """

    name = "characteristics-flip"

    def __init__(self, section: str = ".text",
                 add_flags: int = C.SCN_MEM_WRITE) -> None:
        self.section = section
        self.add_flags = add_flags

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        data = bytearray(blueprint.file_bytes)
        sec_table = (blueprint.e_lfanew + 4 + FileHeader.SIZE
                     + blueprint.file_header.size_of_optional_header)
        for i, sec in enumerate(blueprint.sections):
            if sec.name == self.section:
                off = (sec_table + i * SectionHeader.SIZE + 36)
                old = struct.unpack_from("<I", data, off)[0]
                struct.pack_into("<I", data, off, old | self.add_flags)
                break
        else:
            raise AttackError(f"no section {self.section!r}")
        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=(f"SECTION_HEADER[{self.section}]",),
            details={"section": self.section,
                     "flags_added": f"{self.add_flags:#010x}"})


class EntryPointRedirectAttack(Attack):
    """Point ``AddressOfEntryPoint`` at a payload hidden in a cave.

    The oldest file-infector trick: the driver starts executing the
    virus body, which then jumps to the original entry. Expected
    signature: ``IMAGE_OPTIONAL_HEADER`` (the redirected field) and
    ``.text`` (the payload written into the cave).
    """

    name = "entrypoint-redirect"

    def __init__(self, payload: bytes = b"\x60\x90\x90\x61") -> None:
        self.payload = bytes(payload)

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        layout = blueprint.code_layout
        needed = len(self.payload) + 5
        cave = next((c for c in sorted(layout.caves, key=lambda c: -c.size)
                     if c.size >= needed), None)
        if cave is None:
            raise NoOpcodeCave(f"no cave >= {needed} bytes")

        data = bytearray(blueprint.file_bytes)
        text = blueprint.section(".text")
        raw = text.pointer_to_raw_data

        entry_rva = blueprint.optional_header.address_of_entry_point
        entry_off = entry_rva - text.virtual_address
        # payload then jmp to the original entry point
        cursor = cave.offset
        data[raw + cursor:raw + cursor + len(self.payload)] = self.payload
        cursor += len(self.payload)
        rel = entry_off - (cursor + 5)
        data[raw + cursor:raw + cursor + 5] = b"\xE9" + struct.pack("<i", rel)

        # AddressOfEntryPoint is at optional-header offset 16.
        opt_off = blueprint.e_lfanew + 4 + FileHeader.SIZE
        struct.pack_into("<I", data, opt_off + 16,
                         text.virtual_address + cave.offset)

        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=("IMAGE_OPTIONAL_HEADER", ".text"),
            details={"new_entry_rva": text.virtual_address + cave.offset,
                     "original_entry_rva": entry_rva,
                     "cave_offset": cave.offset})


class TimestampForgeryAttack(Attack):
    """Forge ``TimeDateStamp`` (timestomping, an anti-forensics staple).

    Touches 4 bytes of the FILE header. Expected signature:
    ``IMAGE_NT_HEADER`` only.
    """

    name = "timestamp-forgery"

    def __init__(self, new_timestamp: int = 0x2A2A2A2A) -> None:
        self.new_timestamp = new_timestamp

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        data = bytearray(blueprint.file_bytes)
        off = blueprint.e_lfanew + 4 + 4      # FileHeader.TimeDateStamp
        old = struct.unpack_from("<I", data, off)[0]
        if old == self.new_timestamp:
            raise AttackError("forged timestamp equals the original")
        struct.pack_into("<I", data, off, self.new_timestamp)
        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=("IMAGE_NT_HEADER",),
            details={"old": old, "new": self.new_timestamp})
