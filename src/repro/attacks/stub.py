"""E3 — trivial DOS-stub modification (paper §V-B-3, Fig. 6).

Three characters of the dummy driver's stub message are replaced —
"This program cannot be run in **DOS** mode" becomes "... **CHK**
mode" — without changing alignment or any code byte. The point of the
experiment: ModChecker's DOS-header hash covers the stub bytes before
``e_lfanew``, so even a content change invisible to every loader and
signature check ("other sections ... were left intact") is flagged, and
*only* there. Expected signature: **only IMAGE_DOS_HEADER mismatches**.
"""

from __future__ import annotations

from ..errors import AttackError
from ..pe.builder import DriverBlueprint
from .base import Attack, InfectionResult

__all__ = ["StubModificationAttack"]


class StubModificationAttack(Attack):
    """Patch bytes inside the DOS stub message."""

    name = "stub-modification"

    def __init__(self, old: bytes = b"DOS", new: bytes = b"CHK") -> None:
        if len(old) != len(new):
            raise ValueError("replacement must preserve length/alignment")
        self.old = bytes(old)
        self.new = bytes(new)

    def apply(self, blueprint: DriverBlueprint) -> InfectionResult:
        data = bytearray(blueprint.file_bytes)
        stub_region = bytes(data[:blueprint.e_lfanew])
        pos = stub_region.find(self.old)
        if pos < 0:
            raise AttackError(
                f"{blueprint.name}: {self.old!r} not found in the DOS stub")
        data[pos:pos + len(self.new)] = self.new

        infected = self._with_file_bytes(blueprint, bytes(data))
        return InfectionResult(
            attack_name=self.name, original=blueprint, infected=infected,
            modified_offsets=self._diff_offsets(blueprint.file_bytes,
                                                infected.file_bytes),
            expected_regions=("IMAGE_DOS_HEADER",),
            details={"stub_offset": pos,
                     "old": self.old.decode("ascii"),
                     "new": self.new.decode("ascii")})
