#!/usr/bin/env python
"""In-guest impact monitoring: regenerate the paper's Fig. 9 experiment.

Runs the paper's light-weight resource recorder inside an idle guest
while ModChecker introspects it four times from Dom0, then compares the
CPU/memory series inside vs outside the introspection windows. Because
ModChecker is entirely out-of-VM, the guest never notices — contrast
with the in-guest scanner at the end.

Run:  python examples/guest_impact_monitor.py
"""

from repro import GuestResourceMonitor, ModChecker, build_testbed

SEED = 2012


def main() -> None:
    tb = build_testbed(3, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    victim = tb.hypervisor.domain("Dom1")

    monitor = GuestResourceMonitor(victim, tb.clock, seed=7)
    def check():
        return mc.check_pool("http.sys")
    trace = monitor.run(duration=120.0, interval=0.5,
                        events=[(t, check) for t in (20, 50, 80, 110)])

    print(f"{len(trace.samples)} samples over 120 simulated seconds; "
          f"{len(trace.introspection_windows)} introspection windows:")
    for t0, t1 in trace.introspection_windows:
        print(f"  [{t0:8.3f}s .. {t1:8.3f}s]  "
              f"({(t1 - t0) * 1e3:.1f} ms of introspection)")

    print(f"\n{'series':<24} {'outside':>9} {'inside':>9} {'|z|':>6}")
    for attr in ("cpu_idle_pct", "cpu_user_pct", "cpu_privileged_pct",
                 "mem_free_physical_pct", "page_faults_per_s"):
        inside, outside = trace.split_by_window(attr)
        z = trace.perturbation(attr)
        print(f"{attr:<24} {outside.mean():>9.2f} {inside.mean():>9.2f} "
              f"{z:>6.2f}")
        assert z < 3.0, "out-of-VM introspection must not perturb"

    print("\nconclusion (matches paper): no significant perturbation "
          "while ModChecker reads guest memory.")

    # Contrast: a hypothetical in-guest scanner IS visible.
    from repro.hypervisor.clock import SimClock
    clock2 = SimClock()
    monitor2 = GuestResourceMonitor(tb.hypervisor.domain("Dom2"), clock2,
                                    seed=8)

    def in_guest_scan():
        monitor2.agent_overhead = 0.35     # 35% CPU burned in-guest
        clock2.advance(2.0)
        monitor2.sample()
        monitor2.agent_overhead = 0.0

    trace2 = monitor2.run(duration=120.0, interval=0.5,
                          events=[(t, in_guest_scan) for t in (30, 60, 90)])
    z = trace2.perturbation("cpu_idle_pct")
    print(f"\nin-guest scanner contrast: cpu_idle_pct |z| = {z:.1f} "
          f"(clearly perturbed) — the monitor is sensitive; the "
          f"flat ModChecker series is real.")


if __name__ == "__main__":
    main()
