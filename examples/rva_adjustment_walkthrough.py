#!/usr/bin/env python
"""RVA adjustment walkthrough — the paper's Fig. 4, byte by byte.

Shows the core trick that makes cross-VM hashing possible:

  A. the same driver loads at different bases on two clones;
  B. the loader rewrote every relocation slot, so the raw ``.text``
     bytes (and their MD5s) differ;
  C. Integrity-Checker finds each difference, recovers the RVA from
     both sides (``RVA = absolute - base``) and rewrites the slots;
  D. the adjusted bytes are identical — MD5s match.

Run:  python examples/rva_adjustment_walkthrough.py
"""

import hashlib
import struct

from repro import ModChecker, build_testbed
from repro.core import adjust_rva_robust, first_differing_base_byte

SEED = 2012


def hexdump(data: bytes, start: int, width: int = 16) -> str:
    return " ".join(f"{b:02X}" for b in data[start:start + width])


def main() -> None:
    tb = build_testbed(2, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    (vm1, vm2), *_ = mc.fetch_modules("dummy.sys", tb.vm_names)

    print("A. the same dummy.sys on two clones:")
    print(f"   VM1 ({vm1.vm_name}) base = {vm1.base:#010x}")
    print(f"   VM2 ({vm2.vm_name}) base = {vm2.base:#010x}")
    d = first_differing_base_byte(vm1.base, vm2.base)
    print(f"   first differing base byte (little-endian index): {d}")

    text1 = vm1.region_bytes(vm1.code_regions[0])
    text2 = vm2.region_bytes(vm2.code_regions[0])
    md5_1 = hashlib.md5(text1).hexdigest()
    md5_2 = hashlib.md5(text2).hexdigest()
    print("\nB. raw .text differs at every relocated slot:")
    print(f"   VM1 MD5 {md5_1}")
    print(f"   VM2 MD5 {md5_2}   match = {md5_1 == md5_2}")

    diffs = [i for i, (a, b) in enumerate(zip(text1, text2)) if a != b]
    print(f"   {len(diffs)} differing bytes; first at .text+{diffs[0]:#x}")

    j = max(diffs[0] - d, 0)
    abs1 = struct.unpack_from("<I", text1, j)[0]
    abs2 = struct.unpack_from("<I", text2, j)[0]
    print("\nC. the difference window holds two absolute addresses:")
    print(f"   VM1 bytes @+{j:#06x}: {hexdump(text1, j, 8)}  "
          f"-> {abs1:#010x}")
    print(f"   VM2 bytes @+{j:#06x}: {hexdump(text2, j, 8)}  "
          f"-> {abs2:#010x}")
    print(f"   VM1: {abs1:#010x} - {vm1.base:#010x} = "
          f"{(abs1 - vm1.base) & 0xFFFFFFFF:#010x} (RVA)")
    print(f"   VM2: {abs2:#010x} - {vm2.base:#010x} = "
          f"{(abs2 - vm2.base) & 0xFFFFFFFF:#010x} (RVA)")
    assert (abs1 - vm1.base) & 0xFFFFFFFF == (abs2 - vm2.base) & 0xFFFFFFFF

    adj1, adj2, stats = adjust_rva_robust(text1, vm1.base, text2, vm2.base)
    print(f"\nD. after adjusting all {stats.replaced} slots "
          f"({stats.unresolved} unresolved):")
    print(f"   adjusted bytes @+{j:#06x}: {hexdump(adj1, j, 8)}")
    md5_a1 = hashlib.md5(adj1).hexdigest()
    md5_a2 = hashlib.md5(adj2).hexdigest()
    print(f"   VM1 MD5 {md5_a1}")
    print(f"   VM2 MD5 {md5_a2}   match = {md5_a1 == md5_a2}")
    assert adj1 == adj2

    print("\nthe executable content is now base-independent — "
          "hashable across the whole cloud.")


if __name__ == "__main__":
    main()
