#!/usr/bin/env python
"""Rootkit detection walkthrough: stage all four paper attacks and
watch ModChecker localise each one.

For every technique of the paper's §V-B evaluation this script:
  1. infects one catalog driver the way the rootkit would (file-level
     byte surgery),
  2. boots a cloud where one clone (Dom3) loads the infected file,
  3. runs a full cross-VM integrity check, and
  4. prints which VM was flagged and which PE components betrayed it —
     then remediates by reverting the VM to a clean snapshot.

Run:  python examples/rootkit_detection.py
"""

from repro import ModChecker, build_testbed
from repro.attacks import attack_for_experiment
from repro.guest import build_catalog

SEED = 2012
VICTIM = "Dom3"


def stage_and_detect(exp_id: str) -> None:
    attack, module = attack_for_experiment(exp_id)
    print(f"\n--- {exp_id}: {attack.name} against {module} ---")

    catalog = build_catalog(seed=SEED)
    infection = attack.apply(catalog[module])
    print(f"infection: {infection.bytes_changed} byte(s) of the file "
          f"modified; details: {infection.details}")

    tb = build_testbed(6, seed=SEED,
                       infected={VICTIM: {module: infection.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)

    report = mc.check_pool(module).report
    flagged = report.flagged()
    print(f"flagged VMs: {flagged}")
    print(f"mismatching components on {VICTIM}: "
          f"{', '.join(report.mismatched_regions(VICTIM))}")
    assert flagged == [VICTIM]
    assert set(report.mismatched_regions(VICTIM)) == \
        set(infection.expected_regions), "signature drifted from paper"

    # Remediation (paper §III-B): revert the flagged VM to a clean
    # snapshot and re-check. Here we simulate by rebooting the victim
    # from the pristine catalog in a fresh pool.
    clean_tb = build_testbed(6, seed=SEED)
    clean_report = ModChecker(clean_tb.hypervisor,
                              clean_tb.profile).check_pool(module).report
    print(f"after remediation: all clean = {clean_report.all_clean}")


def main() -> None:
    for exp_id in ("E1", "E2", "E3", "E4"):
        stage_and_detect(exp_id)
    print("\nall four paper attacks detected and localised.")


if __name__ == "__main__":
    main()
