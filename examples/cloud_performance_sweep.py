#!/usr/bin/env python
"""Cloud performance sweep: regenerate the paper's Figs. 7 & 8 and try
the parallel extension.

Sweeps ``http.sys`` checks across 2..15 VMs twice — guests idle (best
case, Fig. 7) and guests running the HeavyLoad stand-in (worst case,
Fig. 8) — then shows what the paper's proposed parallel memory access
buys.

Run:  python examples/cloud_performance_sweep.py
"""

from repro import (HEAVY_LOAD, ModChecker, ParallelModChecker, apply_workload,
                   build_testbed)
from repro.analysis import detect_knee, linear_fit

SEED = 2012
MODULE = "http.sys"


def sweep(tb, loaded: bool):
    mc = ModChecker(tb.hypervisor, tb.profile)
    rows = []
    for t in range(2, len(tb.vm_names) + 1):
        vms = tb.vm_names[:t]
        tb.set_guest_loads(0.0)
        if loaded:
            for name in vms:
                apply_workload(tb.hypervisor.domain(name), HEAVY_LOAD)
        outcome = mc.check_on_vm(MODULE, vms[0], vms)
        rows.append((t, outcome.timings))
    tb.set_guest_loads(0.0)
    return rows


def main() -> None:
    tb = build_testbed(15, seed=SEED)

    print(f"{'#VMs':>5} {'idle total':>12} {'loaded total':>13} "
          f"{'searcher share':>15}")
    idle = sweep(tb, loaded=False)
    loaded = sweep(tb, loaded=True)
    for (t, ti), (_, tl) in zip(idle, loaded):
        share = ti.searcher / ti.total
        print(f"{t:>5} {ti.total * 1e3:>10.2f}ms {tl.total * 1e3:>11.2f}ms "
              f"{share:>14.0%}")

    xs = [t for t, _ in idle]
    fit = linear_fit(xs, [tm.total for _, tm in idle])
    knee = detect_knee(xs, [tm.total for _, tm in loaded])
    cores = tb.hypervisor.cpu.logical_cpus
    print(f"\nidle sweep linearity R^2 = {fit.r_squared:.5f} (Fig. 7: "
          f"'steady linear growth')")
    print(f"loaded sweep knee at ~{knee:.0f} VMs with {cores} logical CPUs "
          f"(Fig. 8: nonlinear past the core count)")

    # The paper's future-work suggestion, implemented: parallel access.
    print("\nparallel introspection (12-VM pool, idle):")
    tb2 = build_testbed(12, seed=SEED)
    seq = ModChecker(tb2.hypervisor, tb2.profile)
    with tb2.clock.span() as s:
        seq.check_on_vm(MODULE, "Dom1")
    for threads in (2, 4, 8):
        par = ParallelModChecker(tb2.hypervisor, tb2.profile,
                                 threads=threads)
        with tb2.clock.span() as p:
            par.check_on_vm(MODULE, "Dom1")
        print(f"  {threads} threads: {p.elapsed * 1e3:6.2f} ms "
              f"({s.elapsed / p.elapsed:.2f}x speedup)")


if __name__ == "__main__":
    main()
