#!/usr/bin/env python
"""Forensic incident walkthrough: from audit log to evidence bundle.

A seeded E1 infection (SUB ECX,1 patched over DEC ECX + NOPs in
hal.dll's .text) is planted on one clone, a daemon cycle catches it,
and the forensics pipeline turns the alert into court-ready artifacts:

  1. the structured audit log — every pipeline fact as a JSONL record
     on the simulated clock, correlated by check_id;
  2. the evidence bundle — voting matrix, relocation-aware byte diff
     against the majority representative, suspect PE layout, and the
     correlated timeline, serialised to one JSON file;
  3. the rendered incident report — what `modchecker explain` prints.

Run:  python examples/incident_walkthrough.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import CheckDaemon, ModChecker, RoundRobinPolicy
from repro.forensics import (EvidenceRecorder, load_bundle,
                             render_incident_report)
from repro.guest import build_catalog
from repro.obs import make_observability

SEED = 42
VICTIM = "Dom3"


def main() -> None:
    # -- stage the crime scene -------------------------------------
    attack, module = attack_for_experiment("E1")
    result = attack.apply(build_catalog(seed=SEED)[module])
    tb = build_testbed(4, seed=SEED,
                       infected={VICTIM: {module: result.infected}})
    print(f"staged: {attack.name} in {module} on {VICTIM} "
          f"(.text offset {result.details['text_offset']:#x})")

    # -- wire the full observability + forensics stack -------------
    obs = make_observability(tb.clock)
    recorder = EvidenceRecorder()
    mc = ModChecker(tb.hypervisor, tb.profile, obs=obs, evidence=recorder)
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=4), interval=60.0)

    alerts = daemon.run_cycle()
    print(f"daemon cycle raised {len(alerts)} alert(s); "
          f"forensics captured {recorder.captures} bundle(s)")
    assert recorder.last is not None

    # -- 1. the audit log, correlated by check_id ------------------
    events = obs.events
    print(f"\naudit log: {len(events)} event(s); the incident's trail:")
    check_id = recorder.last.check_id
    for event in events.by_check(check_id):
        print(f"  t={event.time:10.6f}  {event.name}")

    # -- 2. the bundle round-trips through JSON --------------------
    with TemporaryDirectory() as tmp:
        out = Path(tmp)
        events.write_jsonl(out / "audit.jsonl")
        disk_recorder = EvidenceRecorder(out_dir=out / "evidence")
        disk_recorder.record(mc.check_pool(module).report,
                             mc.fetch_modules(module, tb.vm_names).parsed,
                             events=events, check_id=check_id,
                             captured_at=tb.clock.now)
        bundle_path = next((out / "evidence").iterdir())
        print(f"\nwrote {bundle_path.name} "
              f"({bundle_path.stat().st_size} bytes) + audit.jsonl "
              f"({len((out / 'audit.jsonl').read_text().splitlines())} "
              f"records)")
        bundle = load_bundle(bundle_path)

    # -- 3. the human-readable incident report ---------------------
    report = render_incident_report(bundle)
    print("\n" + report)

    # the evidence pins the attack to the byte
    suspect = bundle.suspect(VICTIM)
    text = next(d for d in suspect.region_diffs if d.region == ".text")
    hunk = text.unexplained[0]
    assert hunk.offset == result.details["text_offset"]
    assert hunk.suspect_bytes.hex() == result.details["new_opcode"].lower()
    print(f"evidence matches the staged attack: "
          f"{hunk.reference_bytes.hex()} -> {hunk.suspect_bytes.hex()} "
          f"at .text+{hunk.offset:#x}")


if __name__ == "__main__":
    main()
