#!/usr/bin/env python
"""Quickstart: build a cloud, check a module, read the report.

Five minutes with the public API:

1. ``build_testbed`` boots the paper's environment — a Xen-like
   hypervisor with N Windows-XP-like clones of one installation;
2. ``ModChecker`` attaches to the pool through VMI;
3. ``check_pool`` cross-checks one kernel module across every VM and
   majority-votes each copy.

Run:  python examples/quickstart.py
"""

from repro import ModChecker, build_testbed


def main() -> None:
    # The paper's testbed: 15 XP SP2 clones on a quad-core-HT server.
    print("booting a 15-clone cloud ...")
    tb = build_testbed(15, seed=2012)

    # ModChecker runs in Dom0 and reads guest memory via introspection;
    # the OS profile tells it where PsLoadedModuleList lives.
    mc = ModChecker(tb.hypervisor, tb.profile)

    # Check one module across the whole pool.
    outcome = mc.check_pool("hal.dll")
    report = outcome.report

    print(f"\nmodule: {report.module_name}")
    print(f"VMs compared: {len(report.vm_names)} "
          f"({len(report.pairs)} pairwise comparisons)")
    for vm in report.vm_names:
        verdict = report.verdicts[vm]
        status = "clean" if verdict.clean else "FLAGGED"
        print(f"  {vm:>6}: {verdict.matches}/{verdict.comparisons} "
              f"matches -> {status}")

    assert report.all_clean, "a pristine pool must never alarm"

    # Component timings (simulated seconds) — Module-Searcher dominates,
    # exactly as the paper's Fig. 7 shows.
    t = outcome.timings
    print(f"\nsimulated runtime: total {t.total * 1e3:.2f} ms "
          f"(searcher {t.searcher * 1e3:.2f}, parser {t.parser * 1e3:.2f}, "
          f"checker {t.checker * 1e3:.2f})")

    # Every module in the guest can be swept the same way:
    sweep = mc.check_all_modules(vms=tb.vm_names[:4])
    clean = sum(1 for o in sweep.values() if o.report.all_clean)
    print(f"catalog sweep over 4 VMs: {clean}/{len(sweep)} modules clean")


if __name__ == "__main__":
    main()
