#!/usr/bin/env python
"""Memory forensics workflow + related-work comparison.

Two things the paper's narrative implies but never shows running:

  A. the incident-response version of ModChecker — acquire full memory
     dumps of every clone, then run the cross-VM integrity vote
     entirely *offline* (Volatility-style), and
  B. the §II comparison — the same infections evaluated by an SVV-style
     disk-vs-memory checker and a Livewire-style hash dictionary, so
     each tool's blind spot is visible side by side.

Run:  python examples/forensics_and_baselines.py
"""

from repro import ModChecker, build_testbed
from repro.attacks import RuntimeCodePatchAttack, attack_for_experiment
from repro.core import IntegrityChecker, ModuleParser, ModuleSearcher
from repro.core.baselines import DictionaryChecker, SVVChecker
from repro.guest import build_catalog
from repro.vmi import DumpAnalyzer, acquire_dump

SEED = 2012


def forensics_workflow() -> None:
    print("== A. offline forensics: dump, then analyse ==")
    tb = build_testbed(4, seed=SEED)
    # A rootkit patches hal.dll in Dom3's memory at runtime.
    result = RuntimeCodePatchAttack().apply(
        tb.hypervisor.domain("Dom3").kernel, tb.catalog["hal.dll"])
    print(f"  staged: runtime patch of hal.dll on Dom3 at "
          f"{result.details['va']:#x}")

    dumps = [acquire_dump(tb.hypervisor, vm, tb.profile)
             for vm in tb.vm_names]
    total = sum(d.resident_bytes for d in dumps) // 1024
    print(f"  acquired {len(dumps)} dumps ({total} KiB resident)")

    # The guests keep running and changing; the analysis is frozen.
    parsed = []
    for dump in dumps:
        copy = ModuleSearcher(DumpAnalyzer(dump)).copy_module("hal.dll")
        parsed.append(ModuleParser().parse(copy))
    report = IntegrityChecker().check_pool(parsed)
    print(f"  offline verdict: flagged={report.flagged()} "
          f"regions={report.mismatched_regions('Dom3')}")
    assert report.flagged() == ["Dom3"]


def baseline_comparison() -> None:
    print("\n== B. related-work comparison (paper related work, live) ==")
    clean_catalog = build_catalog(seed=SEED)
    dictionary = DictionaryChecker(clean_catalog)

    # Scenario: the paper's E1, a *file-level* infection of hal.dll.
    attack, module = attack_for_experiment("E1")
    infection = attack.apply(clean_catalog[module])
    tb = build_testbed(4, seed=SEED,
                       infected={"Dom2": {module: infection.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    vmi = mc.vmi_for("Dom2")

    # SVV compares Dom2's memory against Dom2's OWN disk — which holds
    # the infected file.
    infected_disk = dict(clean_catalog)
    infected_disk[module] = infection.infected
    svv = SVVChecker(vmi, infected_disk)

    rows = [
        ("ModChecker (cross-VM)",
         mc.check_pool(module).report.flagged() == ["Dom2"]),
        ("SVV-style (disk vs memory)",
         not svv.check_module(module).clean),
        ("Dictionary-style (known-good hashes)",
         not dictionary.check_module(vmi, module).clean),
    ]
    print(f"  file-level {module} infection on Dom2:")
    for name, detected in rows:
        print(f"    {name:<38} {'DETECTED' if detected else 'missed'}")
    assert rows[0][1] and not rows[1][1] and rows[2][1]
    print("  -> SVV misses it: the disk file is equally infected "
          "(its §II blind spot)")

    # Scenario: a legitimate rolling update of hal.dll.
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.test_ablation_versioning import updated_driver
    updated = updated_driver()
    tb2 = build_testbed(4, seed=SEED,
                        infected={vm: {"hal.dll": updated}
                                  for vm in ("Dom3", "Dom4")})
    mc2 = ModChecker(tb2.hypervisor, tb2.profile)
    verdict = dictionary.check_module(mc2.vmi_for("Dom3"), "hal.dll")
    from repro.core import check_pool_versioned
    parsed, *_ = mc2.fetch_modules("hal.dll", tb2.vm_names)
    versioned = check_pool_versioned(parsed, mc2.checker)
    print("  legitimate hal.dll update on Dom3+Dom4:")
    print(f"    dictionary: {'FALSE ALARM' if not verdict.clean else 'ok'} "
          f"(database is stale — the paper's motivation)")
    print(f"    ModChecker versioned voting: "
          f"{'quiet' if versioned.all_clean else 'alarm'} "
          f"(no database to maintain)")
    assert not verdict.clean and versioned.all_clean


def main() -> None:
    forensics_workflow()
    baseline_comparison()
    print("\ndone.")


if __name__ == "__main__":
    main()
