#!/usr/bin/env python
"""Continuous monitoring: ModChecker as a cloud daemon.

The paper positions ModChecker as a light-weight first line whose
alarms trigger deeper analysis. This example runs that operational
loop end to end:

  1. a daemon sweeps the module catalog across a 5-VM pool on a
     schedule (critical modules every cycle, the rest rotating);
  2. mid-run, a rootkit patches ``hal.dll`` in one guest's memory and
     a second rootkit hides ``dummy.sys`` by DKOM-unlinking it;
  3. the daemon's integrity sweep catches the patch and the rotating
     carving sweep catches the hidden module;
  4. the operator remediates by reverting the flagged VMs to their
     clean snapshots and verifies silence.

Run:  python examples/continuous_monitoring.py
"""

from repro import CheckDaemon, ModChecker, build_testbed
from repro.attacks import RuntimeCodePatchAttack
from repro.core.daemon import PriorityPolicy

SEED = 2012


def main() -> None:
    tb = build_testbed(5, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    daemon = CheckDaemon(
        mc, PriorityPolicy(critical=["ntoskrnl.exe", "hal.dll"]),
        interval=60.0)

    # Take clean snapshots first — the paper's remediation story.
    for vm in tb.vm_names:
        tb.hypervisor.snapshot(vm)

    print("== phase 1: clean cloud, 3 cycles ==")
    for _ in range(3):
        alerts = daemon.run_cycle()
        assert not alerts
        print(f"  [{tb.clock.now:8.2f}s] quiet")

    print("\n== phase 2: two rootkits strike ==")
    patcher = RuntimeCodePatchAttack(offset_in_text=0x30)
    result = patcher.apply(tb.hypervisor.domain("Dom2").kernel,
                           tb.catalog["hal.dll"])
    print(f"  Dom2: hal.dll .text patched in memory at "
          f"{result.details['va']:#x} (file untouched)")
    tb.hypervisor.domain("Dom4").kernel.unload_module("dummy.sys")
    print("  Dom4: dummy.sys unlinked from PsLoadedModuleList (DKOM)")

    print("\n== phase 3: the daemon notices ==")
    found_patch = found_hidden = False
    for _ in range(6):
        for alert in daemon.run_cycle():
            print(f"  ALERT {alert}")
            found_patch |= alert.module == "hal.dll"
            found_hidden |= alert.kind == "hidden-module"
        if found_patch and found_hidden:
            break
    assert found_patch and found_hidden

    print("\n== phase 4: remediation (revert to clean snapshots) ==")
    for vm in ("Dom2", "Dom4"):
        tb.hypervisor.revert(vm)
        print(f"  {vm} reverted")
    # NB: revert restores memory; the LDR re-link comes with it since
    # the snapshot was taken pre-unlink.
    for _ in range(3):
        alerts = daemon.run_cycle()
        assert not alerts, alerts
    print(f"  quiet again; total alerts logged: {len(daemon.log)}")

    print("\nsummary:")
    for alert in daemon.log.alerts:
        print(f"  {alert}")


if __name__ == "__main__":
    main()
