#!/usr/bin/env python
"""Self-healing pools: the restore-on-tamper repair engine end to end.

Detection gives the operator a flagged clone; a repair policy closes
the loop. This walkthrough runs the whole remediation ladder:

  1. a runtime rootkit patches ``hal.dll`` in one guest — the checker
     convicts it AND restores the clean bytes in place (relocations
     re-applied at the victim's own base), then re-verifies;
  2. a *racing* adversary re-patches behind every repair until its
     rewrite budget runs dry — the retry budget wins, at a measurable
     MTTR cost;
  3. an LDR-blinding adversary aliases the victim's LDR entry at a
     different module so acquisition reads valid-but-wrong bytes —
     target attestation refuses to write anything;
  4. under ``quarantine-on-repeat-failure`` a racing adversary that
     outlasts the budget gets the VM quarantined, not ping-ponged.

Run:  python examples/self_healing_pool.py
"""

from repro import ModChecker, build_testbed
from repro.attacks import (LdrBlindingAttack, RacingWriterAttack,
                           RuntimeCodePatchAttack)

SEED = 2012


def checker(tb, policy="repair", attempts=3):
    return ModChecker(tb.hypervisor, tb.profile, repair_policy=policy,
                      repair_max_attempts=attempts)


def show(record):
    mttr = (f", MTTR {record.mttr * 1e3:.2f} ms"
            if record.mttr is not None else "")
    print(f"  {record.vm_name}/{record.module_name}: {record.status}"
          f" after {record.attempts} attempt(s),"
          f" {record.bytes_written} byte(s) written,"
          f" {record.raced_writes} raced write(s){mttr}"
          + (f"\n    reason: {record.reason}" if record.reason else ""))


def main() -> None:
    print("== phase 1: patch -> verified in-place restore ==")
    tb = build_testbed(4, seed=SEED)
    mc = checker(tb)
    RuntimeCodePatchAttack().apply(tb.hypervisor.domain("Dom2").kernel,
                                   tb.catalog["hal.dll"])
    out = mc.check_pool("hal.dll")
    (rec,) = out.remediations
    show(rec)
    assert rec.status == "verified"
    assert mc.check_pool("hal.dll").report.all_clean
    print("  pool re-verified clean — the guest bytes are healed\n")

    print("== phase 2: racing adversary loses to the retry budget ==")
    tb = build_testbed(4, seed=SEED)
    mc = checker(tb, attempts=4)
    racer = RacingWriterAttack(rewrites=2)
    racer.apply(tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
    racer.arm(tb.clock)                 # re-patches after every repair
    (rec,) = mc.check_pool("hal.dll").remediations
    show(rec)
    assert rec.status == "verified" and rec.attempts == 3
    print("  budget 2 < retry budget 4: degraded MTTR, same outcome\n")

    print("== phase 3: LDR blinding -> attestation refuses to write ==")
    tb = build_testbed(4, seed=SEED)
    mc = checker(tb)
    LdrBlindingAttack().apply(tb.hypervisor.domain("Dom2").kernel,
                              tb.catalog["hal.dll"])
    (rec,) = mc.check_pool("hal.dll").remediations
    show(rec)
    assert rec.aborted and rec.bytes_written == 0
    print("  zero bytes written at the untrustworthy target\n")

    print("== phase 4: an adversary that outlasts the budget is "
          "quarantined ==")
    tb = build_testbed(4, seed=SEED)
    mc = checker(tb, policy="quarantine-on-repeat-failure", attempts=2)
    racer = RacingWriterAttack(rewrites=10)
    racer.apply(tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
    racer.arm(tb.clock)
    (rec,) = mc.check_pool("hal.dll").remediations
    show(rec)
    assert rec.status == "quarantined"
    print("  explicit escalation — never a silent failure\n")

    stats = mc.repair.stats
    print(f"summary (phase 4 engine): {stats.attempts} attempt(s), "
          f"{stats.raced_writes} raced write(s), "
          f"{stats.quarantined} quarantined")


if __name__ == "__main__":
    main()
