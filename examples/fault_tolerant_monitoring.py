#!/usr/bin/env python
"""Fault-tolerant monitoring: checking a cloud over a noisy channel.

The paper assumes every introspection read succeeds; production VMI
does not get that luxury — mappings fail transiently, pages get paged
out, whole domains pause. This example runs the resilience layer end
to end:

  1. a 6-VM pool is checked while 5% of guest reads fail transiently;
     the retry policy absorbs every fault and the sweep stays clean;
  2. one guest goes dark (long unreachable windows): the daemon
     exhausts its retry budget, quarantines the VM, and keeps voting
     with the surviving quorum;
  3. the outage ends; the quarantine expires and the VM rejoins;
  4. a rootkit patches ``hal.dll`` mid-noise — detection still fires
     through 5% channel noise.

Every fault is drawn from a seeded stream: rerunning this script
reproduces the exact same schedule.

Run:  python examples/fault_tolerant_monitoring.py
"""

from repro import CheckDaemon, ModChecker, build_testbed
from repro.attacks import RuntimeCodePatchAttack
from repro.core.daemon import RoundRobinPolicy
from repro.hypervisor import FaultConfig, FaultInjector

SEED = 2012


def main() -> None:
    tb = build_testbed(6, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)   # default retry policy
    injector = FaultInjector(FaultConfig(transient_rate=0.05), seed=SEED)
    injector.install(tb.hypervisor)

    print("== phase 1: pool check through 5% transient faults ==")
    out = mc.check_pool("hal.dll")
    stats = injector.stats
    print(f"  reads={stats.reads}  transient faults={stats.transient}  "
          f"degraded VMs={len(out.report.degraded)}")
    assert out.report.all_clean and not out.report.degraded
    print(f"  verdict: all {len(out.report.verdicts)} VMs clean — "
          "the retry budget absorbed every fault")

    print("\n== phase 2: Dom4 goes dark ==")
    injector.config = FaultConfig(transient_rate=0.05,
                                  unreachable_rate=0.9,
                                  unreachable_duration=10.0,
                                  only_domains=("Dom4",))
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=2),
                         interval=60.0, quarantine_cycles=2)
    for alert in daemon.run_cycle():
        print(f"  ALERT {alert}")
    assert daemon.quarantined == ["Dom4"]
    print(f"  quarantined: {daemon.quarantined} — sweeps continue on "
          "the surviving quorum")

    print("\n== phase 3: the outage ends ==")
    injector.config = FaultConfig(transient_rate=0.05)
    while daemon.quarantined:
        daemon.run_cycle()
        print(f"  [{tb.clock.now:8.2f}s] quarantined={daemon.quarantined}")
    assert "Dom4" in daemon._active_vms()
    print("  Dom4 rejoined the pool")

    print("\n== phase 4: detection still fires through the noise ==")
    result = RuntimeCodePatchAttack(offset_in_text=0x30).apply(
        tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
    print(f"  Dom2: hal.dll patched in memory at {result.details['va']:#x}")
    caught = False
    for _ in range(8):
        for alert in daemon.run_cycle():
            print(f"  ALERT {alert}")
            caught |= (alert.kind == "integrity"
                       and alert.module == "hal.dll"
                       and "Dom2" in alert.flagged_vms)
        if caught:
            break
    assert caught, "the patched module was not flagged"

    injector.uninstall()
    print(f"\nDone: {stats.injected} faults injected, "
          f"{len(daemon.log)} alerts, simulated time {tb.clock.now:.2f}s.")


if __name__ == "__main__":
    main()
