"""Fig. 9 — ModChecker's impact on in-guest resources.

Reproduces the paper's §V-C-2 experiment: an idle guest runs the
in-guest monitor while ModChecker repeatedly introspects it from Dom0.
Assertions encode the paper's conclusion — "no significant perturbation
during the time span when memory was accessed by ModChecker" — for the
CPU and memory series the paper plots, and additionally verify the
monitor is sensitive enough to catch a genuine in-guest scanner.
"""

from __future__ import annotations

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.perf import GuestResourceMonitor

SEED = 42

#: The series the paper's Fig. 9 plots.
PAPER_SERIES = ("cpu_idle_pct", "cpu_user_pct", "cpu_privileged_pct",
                "mem_free_physical_pct", "mem_free_virtual_pct",
                "page_faults_per_s")


def run_monitoring_session(n_checks=4, duration=120.0, interval=0.5):
    tb = build_testbed(3, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    domain = tb.hypervisor.domain("Dom1")
    monitor = GuestResourceMonitor(domain, tb.clock, seed=7)
    spacing = duration / (n_checks + 1)
    events = [(spacing * (i + 1), lambda: mc.check_pool("http.sys"))
              for i in range(n_checks)]
    return monitor.run(duration=duration, interval=interval, events=events)


def test_fig9_no_guest_perturbation(benchmark):
    trace = benchmark(run_monitoring_session)
    assert len(trace.introspection_windows) == 4
    for attr in PAPER_SERIES:
        z = trace.perturbation(attr)
        assert z < 3.0, f"{attr}: perturbation z={z:.2f}"


def test_fig9_monitor_would_catch_in_guest_scanner():
    """Sensitivity control: the flat series is not a blind monitor —
    an agent consuming 35% CPU in-guest produces an unmistakable dip."""
    from repro.guest import GuestKernel
    from repro.hypervisor.clock import SimClock
    from repro.hypervisor.domain import Domain, DomainKind

    kernel = GuestKernel("victim", seed=1)
    kernel.boot({})
    domain = Domain(domid=1, name="victim", kind=DomainKind.DOMU,
                    kernel=kernel)
    clock = SimClock()
    monitor = GuestResourceMonitor(domain, clock, seed=7)

    def in_guest_scan():
        monitor.agent_overhead = 0.35
        clock.advance(2.0)
        monitor.sample()
        monitor.agent_overhead = 0.0

    trace = monitor.run(duration=120.0, interval=0.5,
                        events=[(30.0, in_guest_scan),
                                (60.0, in_guest_scan),
                                (90.0, in_guest_scan)])
    assert trace.perturbation("cpu_idle_pct") > 3.0


def test_fig9_windows_cover_actual_introspection_time():
    trace = run_monitoring_session(n_checks=2)
    for t0, t1 in trace.introspection_windows:
        assert t1 > t0
    # windows are disjoint and ordered
    spans = trace.introspection_windows
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0
