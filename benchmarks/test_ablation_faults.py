"""A6 — fault-injection ablation: detection quality vs channel noise.

The resilience claim, quantified on the paper's testbed scale: sweep
the transient-fault rate over a 16-clone pool and show that (i) the
sweep always completes — degraded VMs are reported, never fatal;
(ii) the E1–E4 detection outcomes are unchanged from the fault-free
run at every rate the default retry budget absorbs; (iii) at rate 0
the whole retry/injection layer is simulated-time invisible.

Every fault schedule is a pure function of the seed, so these are as
deterministic as the fault-free benches.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed, stage_experiment
from repro.core import ModChecker
from repro.hypervisor import FaultConfig, FaultInjector
from repro.rng import derive_seed

pytestmark = pytest.mark.faults

SEED = 42
MODULE = "hal.dll"
RATES = [0.0, 0.02, 0.05, 0.1]
POOL = 16


def _injector(rate: float, *tags) -> FaultInjector:
    return FaultInjector(FaultConfig(transient_rate=rate),
                         seed=derive_seed(SEED, "ablation", *tags))


def _pool_run(rate: float):
    tb = build_testbed(POOL, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    injector = _injector(rate, f"rate{rate}")
    with injector.installed(tb.hypervisor):
        out = mc.check_pool(MODULE)
    return out, injector.stats, tb.clock.now


@pytest.mark.parametrize("rate", RATES)
def test_pool_sweep_completes_under_faults(rate):
    out, stats, _ = _pool_run(rate)
    surviving = set(out.report.verdicts)
    degraded = set(out.report.degraded)
    assert surviving | degraded == {f"Dom{i}" for i in range(1, POOL + 1)}
    assert len(surviving) >= 2
    assert out.report.all_clean
    if rate == 0.0:
        assert stats.injected == 0
        assert degraded == set()
    else:
        assert stats.transient > 0


def test_zero_rate_layer_is_free():
    bare_tb = build_testbed(POOL, seed=SEED)
    bare = ModChecker(bare_tb.hypervisor, bare_tb.profile,
                      retry=None).check_pool(MODULE)
    bare_now = bare_tb.clock.now

    out, stats, now = _pool_run(0.0)
    assert now == bare_now
    assert out.timings.total == bare.timings.total
    assert out.timings.searcher == bare.timings.searcher
    assert stats.injected == 0


@pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
@pytest.mark.parametrize("rate", RATES)
def test_detection_outcomes_match_fault_free(exp_id, rate):
    baseline = stage_experiment(exp_id, n_vms=POOL, victim="Dom3",
                                seed=SEED).run_pool_check().report

    scenario = stage_experiment(exp_id, n_vms=POOL, victim="Dom3",
                                seed=SEED)
    injector = _injector(rate, exp_id, f"rate{rate}")
    with injector.installed(scenario.testbed.hypervisor):
        report = scenario.run_pool_check().report

    surviving = set(report.verdicts)
    assert report.flagged() == [vm for vm in baseline.flagged()
                                if vm in surviving]
    # the victim must never silently drop out of the verdict set
    assert "Dom3" in surviving or "Dom3" in report.degraded
    assert "Dom3" in surviving, \
        f"victim degraded at rate {rate} — retry budget too small"


def test_retry_cost_scales_with_rate(benchmark):
    """Fig.-style shape: simulated overhead grows with the fault rate
    but stays a small multiple of the clean run."""
    elapsed = {}
    for rate in RATES:
        tb = build_testbed(POOL, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile)
        with _injector(rate, f"cost{rate}").installed(tb.hypervisor):
            with tb.clock.span() as span:
                mc.check_pool(MODULE)
        elapsed[rate] = span.elapsed

    def rerun():
        out, _, _ = _pool_run(0.05)
        return out

    benchmark(rerun)
    assert elapsed[0.02] > elapsed[0.0]
    assert elapsed[0.1] > elapsed[0.02]
    # Overhead is backoff-dominated (2 ms sleep per transient), so it
    # grows fast — but even 10% noise must stay within one order of
    # magnitude of the clean sweep.
    assert elapsed[0.1] < 10.0 * elapsed[0.0]
