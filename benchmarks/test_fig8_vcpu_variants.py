"""Fig. 8 variants — the knee tracks total loaded vCPUs, not VM count.

The paper attributes the nonlinear growth to "the number of heavily
loaded VMs exceed[ing] the number of available virtual cores". If that
causal story is right, doubling each guest's vCPUs must halve the
VM-count knee, and halving per-VM load must push it out. These sweeps
confirm the model encodes the mechanism, not a hard-coded shape.
"""

from __future__ import annotations


from repro.analysis import detect_knee
from repro.core import ModChecker
from repro.guest import build_catalog
from repro.hypervisor import Hypervisor
from repro.vmi import OSProfile

SEED = 42
MODULE = "http.sys"


def _sweep_with(vcpus_per_guest: int, per_vcpu_load: float,
                n_vms: int = 15):
    hv = Hypervisor()
    catalog = build_catalog(seed=SEED)
    names = []
    for i in range(1, n_vms + 1):
        hv.create_guest(f"Dom{i}", catalog, seed=SEED,
                        vcpus=vcpus_per_guest)
        names.append(f"Dom{i}")
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    mc = ModChecker(hv, profile)
    xs, ys = [], []
    for t in range(2, n_vms + 1):
        vms = names[:t]
        for name in names:
            hv.domain(name).set_load(cpu=0.0)
        for name in vms:
            hv.domain(name).set_load(cpu=per_vcpu_load)
        out = mc.check_on_vm(MODULE, vms[0], vms)
        xs.append(t)
        ys.append(out.timings.total)
    return xs, ys


def test_one_vcpu_full_load_knee_near_8(benchmark):
    xs, ys = benchmark.pedantic(lambda: _sweep_with(1, 1.0),
                                rounds=1, iterations=1)
    knee = detect_knee(xs, ys)
    assert knee is not None and 5 <= knee <= 10


def test_two_vcpus_halve_the_knee():
    xs, ys = _sweep_with(2, 1.0)
    knee = detect_knee(xs, ys)
    # saturation at ~4 loaded VMs (8 vCPUs + Dom0 > 8 pCPUs)
    assert knee is not None and 2 <= knee <= 6


def test_half_load_pushes_knee_out():
    xs, ys = _sweep_with(1, 0.5)
    knee_half = detect_knee(xs, ys)
    xs_full, ys_full = _sweep_with(1, 1.0)
    knee_full = detect_knee(xs_full, ys_full)
    assert knee_full is not None
    # 0.5 load per VM: saturation needs ~15 VMs; knee late or absent.
    assert knee_half is None or knee_half > knee_full


def test_knee_ordering_is_monotonic_in_demand():
    knees = {}
    for vcpus, load, key in ((2, 1.0, "2x1.0"), (1, 1.0, "1x1.0")):
        xs, ys = _sweep_with(vcpus, load)
        knees[key] = detect_knee(xs, ys)
    assert knees["2x1.0"] < knees["1x1.0"]
