"""Substrate micro-benchmarks: the building blocks' real wall-clock cost.

Not a paper figure — engineering telemetry for the simulation itself:
how fast we can build drivers, boot clones, introspect memory and hash
modules. Useful when scaling experiments up (e.g. 100-VM pools).
"""

from __future__ import annotations

import pytest

from repro.core import ModChecker, ModuleSearcher
from repro.guest import GuestKernel, build_catalog
from repro.hypervisor import Hypervisor
from repro.pe import build_driver, map_file_to_memory
from repro.vmi import OSProfile, VMIInstance

SEED = 42


def test_bench_build_driver(benchmark):
    bp = benchmark(lambda: build_driver("bench.sys", seed=SEED))
    assert bp.file_bytes[:2] == b"MZ"


def test_bench_build_catalog(benchmark):
    catalog = benchmark(lambda: build_catalog(seed=SEED))
    assert len(catalog) == 10


def test_bench_boot_guest(benchmark, catalog):
    counter = iter(range(10_000))

    def boot():
        kernel = GuestKernel(f"bench{next(counter)}", seed=1)
        kernel.boot(catalog)
        return kernel

    kernel = benchmark(boot)
    assert kernel.list_entry_count() == 10


def test_bench_map_file_to_memory(benchmark, catalog):
    bp = catalog["ntoskrnl.exe"]
    image = benchmark(lambda: map_file_to_memory(bp.file_bytes))
    assert len(image) == bp.size_of_image


def test_bench_vmi_module_copy(benchmark, catalog):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=1)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)

    def copy():
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=False)
        return ModuleSearcher(vmi).copy_module("ntoskrnl.exe")

    result = benchmark(copy)
    assert result.image[:2] == b"MZ"


@pytest.fixture(scope="module")
def image_env(catalog):
    """A guest carrying a ~200-page driver image for the read pair.

    The catalog modules are all ≤10 pages — small enough that fixed
    per-call overhead swamps the per-page loop the batch path
    eliminates — so the acquisition benchmarks read a deliberately
    large image, the regime the vectorised path exists for.
    """
    big = build_driver("bigimage.sys", seed=9, n_functions=600,
                       avg_function_size=800, data_size=0x40000)
    cat = dict(catalog, **{"bigimage.sys": big})
    hv = Hypervisor()
    hv.create_guest("Dom1", cat, seed=1)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)
    mod = hv.domain("Dom1").kernel.module("bigimage.sys")
    return hv, profile, mod


def test_bench_vmi_read_image_scalar(benchmark, image_env):
    """The per-page reference loop over a large module image.

    Paired with :func:`test_bench_vmi_read_image_batch` below: the
    wall-clock tier (``check_bench_regression.py --wallclock``) gates
    the *ratio* of these two means, which self-normalises across
    runner speeds where absolute seconds cannot.
    """
    hv, profile, mod = image_env

    def read():
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=False,
                          batch=False)
        return vmi.read_va(mod.base, mod.size_of_image)

    image = benchmark(read)
    assert image[:2] == b"MZ"


def test_bench_vmi_read_image_batch(benchmark, image_env):
    """The vectorised acquisition path over the same image."""
    hv, profile, mod = image_env

    def read():
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=False,
                          batch=True)
        return vmi.read_va(mod.base, mod.size_of_image)

    image = benchmark(read)
    assert image[:2] == b"MZ"


def test_bench_pool_check_scales(benchmark, tb15):
    """One full 15-VM pool check — the paper-scale operation."""
    mc = ModChecker(tb15.hypervisor, tb15.profile)
    out = benchmark(lambda: mc.check_pool("http.sys"))
    assert out.report.all_clean
