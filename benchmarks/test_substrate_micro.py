"""Substrate micro-benchmarks: the building blocks' real wall-clock cost.

Not a paper figure — engineering telemetry for the simulation itself:
how fast we can build drivers, boot clones, introspect memory and hash
modules. Useful when scaling experiments up (e.g. 100-VM pools).
"""

from __future__ import annotations

from repro.core import ModChecker, ModuleSearcher
from repro.guest import GuestKernel, build_catalog
from repro.hypervisor import Hypervisor
from repro.pe import build_driver, map_file_to_memory
from repro.vmi import OSProfile, VMIInstance

SEED = 42


def test_bench_build_driver(benchmark):
    bp = benchmark(lambda: build_driver("bench.sys", seed=SEED))
    assert bp.file_bytes[:2] == b"MZ"


def test_bench_build_catalog(benchmark):
    catalog = benchmark(lambda: build_catalog(seed=SEED))
    assert len(catalog) == 10


def test_bench_boot_guest(benchmark, catalog):
    counter = iter(range(10_000))

    def boot():
        kernel = GuestKernel(f"bench{next(counter)}", seed=1)
        kernel.boot(catalog)
        return kernel

    kernel = benchmark(boot)
    assert kernel.list_entry_count() == 10


def test_bench_map_file_to_memory(benchmark, catalog):
    bp = catalog["ntoskrnl.exe"]
    image = benchmark(lambda: map_file_to_memory(bp.file_bytes))
    assert len(image) == bp.size_of_image


def test_bench_vmi_module_copy(benchmark, catalog):
    hv = Hypervisor()
    hv.create_guest("Dom1", catalog, seed=1)
    profile = OSProfile.from_guest(hv.domain("Dom1").kernel)

    def copy():
        vmi = VMIInstance(hv, "Dom1", profile, enable_caches=False)
        return ModuleSearcher(vmi).copy_module("ntoskrnl.exe")

    result = benchmark(copy)
    assert result.image[:2] == b"MZ"


def test_bench_pool_check_scales(benchmark, tb15):
    """One full 15-VM pool check — the paper-scale operation."""
    mc = ModChecker(tb15.hypervisor, tb15.profile)
    out = benchmark(lambda: mc.check_pool("http.sys"))
    assert out.report.all_clean
