#!/usr/bin/env python
"""Experiment harness: regenerate every paper table/figure as text.

Usage::

    python benchmarks/harness.py            # everything
    python benchmarks/harness.py e1 fig7    # selected experiments

Experiments: e1 e2 e3 e4 fig4 fig7 fig8 fig9 a1..a7 h1 rw
Options: --csv DIR   also write figure series as CSV

Each command prints the same rows/series the paper's corresponding
figure plots (simulated seconds — shapes, not absolute hardware
numbers). EXPERIMENTS.md records a captured run against the paper.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `python benchmarks/harness.py` from the repo root: the sibling
# experiment modules import as the `benchmarks` package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.analysis import (detect_knee, format_seconds, linear_fit,
                            render_series, render_table)
from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import (ADJUSTERS, ModChecker, ParallelModChecker)
from repro.guest import build_catalog
from repro.perf import HEAVY_LOAD, GuestResourceMonitor, apply_workload

SEED = 42
VICTIM = "Dom3"

#: When set (via --csv DIR), figure sweeps also write CSV series here.
EXPORT_DIR: Path | None = None


def _export(name: str, columns: dict, meta: dict | None = None) -> None:
    if EXPORT_DIR is None:
        return
    from repro.analysis import SeriesBundle, write_csv
    bundle = SeriesBundle(name=name, meta=meta or {})
    for label, values in columns.items():
        bundle.add_column(label, list(values))
    path = write_csv(bundle, EXPORT_DIR / f"{name}.csv")
    print(f"[csv] wrote {path}")


# --------------------------------------------------------------------------
# Detection experiments (paper §V-B)
# --------------------------------------------------------------------------

def run_detection(exp_id: str) -> None:
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=SEED)
    result = attack.apply(catalog[module])
    tb = build_testbed(6, seed=SEED,
                       infected={VICTIM: {module: result.infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    report = mc.check_pool(module).report

    print(f"\n=== {exp_id}: {attack.name} on {module} "
          f"(victim {VICTIM}, pool of {len(tb.vm_names)}) ===")
    rows = []
    for vm in report.vm_names:
        v = report.verdicts[vm]
        rows.append([vm, f"{v.matches}/{v.comparisons}",
                     "CLEAN" if v.clean else "FLAGGED",
                     ", ".join(v.mismatched_regions) or "-"])
    print(render_table(["VM", "matches", "verdict", "mismatched components"],
                       rows))
    got = set(report.mismatched_regions(VICTIM))
    expected = set(result.expected_regions)
    print(f"paper signature reproduced: {got == expected} "
          f"({len(got)} component(s))")


# --------------------------------------------------------------------------
# Fig. 4 — RVA adjustment illustration
# --------------------------------------------------------------------------

def run_fig4() -> None:
    """Recreate the paper's Fig. 4 walk-through on the dummy driver."""
    import hashlib

    catalog = build_catalog(seed=SEED)
    tb = build_testbed(2, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules("dummy.sys", tb.vm_names)
    a, b = parsed
    ra = next(r for r in a.code_regions if r.name == ".text")
    rb = next(r for r in b.code_regions if r.name == ".text")
    da, db = a.region_bytes(ra), b.region_bytes(rb)

    print("\n=== Fig. 4: RVA adjustment of dummy.sys .text across 2 VMs ===")
    print(f"VM1 base: {a.base:#010x}    VM2 base: {b.base:#010x}")
    print(f"raw .text MD5s:      {hashlib.md5(da).hexdigest()}  "
          f"{hashlib.md5(db).hexdigest()}  "
          f"match={hashlib.md5(da).hexdigest() == hashlib.md5(db).hexdigest()}")
    adj_a, adj_b, stats = ADJUSTERS["robust"](da, a.base, db, b.base)
    print(f"adjusted .text MD5s: {hashlib.md5(adj_a).hexdigest()}  "
          f"{hashlib.md5(adj_b).hexdigest()}  "
          f"match={adj_a == adj_b}")
    print(f"absolute addresses reverted to RVAs: {stats.replaced}; "
          f"unresolved: {stats.unresolved}")
    # show one adjusted window like the figure's hex panels
    diffs = [i for i, (x, y) in enumerate(zip(da, db)) if x != y]
    if diffs:
        j = max(diffs[0] - 4, 0)
        w = slice(j, j + 12)
        print(f"window @+{j:#06x}  VM1: {da[w].hex(' ')}")
        print(f"               VM2: {db[w].hex(' ')}")
        print(f"          adjusted: {adj_a[w].hex(' ')}")


# --------------------------------------------------------------------------
# Fig. 7 / Fig. 8 — runtime sweeps
# --------------------------------------------------------------------------

def _sweep(tb, loaded: bool):
    mc = ModChecker(tb.hypervisor, tb.profile)
    rows = []
    for t in range(2, len(tb.vm_names) + 1):
        vms = tb.vm_names[:t]
        tb.set_guest_loads(0.0)
        if loaded:
            for name in vms:
                apply_workload(tb.hypervisor.domain(name), HEAVY_LOAD)
        out = mc.check_on_vm("http.sys", vms[0], vms)
        rows.append((t, out.timings))
    tb.set_guest_loads(0.0)
    return rows


def run_fig7() -> None:
    tb = build_testbed(15, seed=SEED)
    rows = _sweep(tb, loaded=False)
    print("\n=== Fig. 7: runtime vs #VMs, idle guests (simulated s) ===")
    print(render_table(
        ["#VMs", "Module-Searcher", "Module-Parser", "Integrity-Checker",
         "ModChecker total"],
        [[t, format_seconds(tm.searcher), format_seconds(tm.parser),
          format_seconds(tm.checker), format_seconds(tm.total)]
         for t, tm in rows]))
    xs = [t for t, _ in rows]
    ys = [tm.total for _, tm in rows]
    _export("fig7_idle_runtime", {
        "n_vms": xs,
        "searcher_s": [tm.searcher for _, tm in rows],
        "parser_s": [tm.parser for _, tm in rows],
        "checker_s": [tm.checker for _, tm in rows],
        "total_s": ys,
    }, {"module": "http.sys", "seed": SEED})
    fit = linear_fit(xs, ys)
    print(f"linearity: R^2 = {fit.r_squared:.5f} "
          f"(slope {format_seconds(fit.slope)}/VM); knee: "
          f"{detect_knee(xs, ys)}")
    print(render_series(xs, ys, title="total runtime", x_label="#VMs",
                        y_label="sim s"))


def run_fig8() -> None:
    tb = build_testbed(15, seed=SEED)
    idle = _sweep(tb, loaded=False)
    loaded = _sweep(tb, loaded=True)
    print("\n=== Fig. 8: runtime vs #VMs, HeavyLoad guests (simulated s) ===")
    print(render_table(
        ["#VMs", "Searcher", "Parser", "Checker", "total(loaded)",
         "total(idle)", "slowdown"],
        [[t, format_seconds(tm.searcher), format_seconds(tm.parser),
          format_seconds(tm.checker), format_seconds(tm.total),
          format_seconds(ti.total), f"{tm.total / ti.total:.2f}x"]
         for (t, tm), (_, ti) in zip(loaded, idle)]))
    xs = [t for t, _ in loaded]
    ys = [tm.total for _, tm in loaded]
    _export("fig8_loaded_runtime", {
        "n_vms": xs,
        "total_loaded_s": ys,
        "total_idle_s": [ti.total for _, ti in idle],
    }, {"module": "http.sys", "seed": SEED})
    knee = detect_knee(xs, ys)
    cores = tb.hypervisor.cpu.logical_cpus
    print(f"knee at ~{knee} VMs (logical CPUs: {cores}) — the paper's "
          f"'sudden nonlinear growth' past the virtual-core count")
    print(render_series(xs, ys, title="total runtime (loaded)",
                        x_label="#VMs", y_label="sim s"))


# --------------------------------------------------------------------------
# Fig. 9 — in-guest impact
# --------------------------------------------------------------------------

def run_fig9() -> None:
    tb = build_testbed(3, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    monitor = GuestResourceMonitor(tb.hypervisor.domain("Dom1"), tb.clock,
                                   seed=7)
    def check():
        return mc.check_pool("http.sys")
    trace = monitor.run(duration=120.0, interval=0.5,
                        events=[(t, check) for t in (20, 50, 80, 110)])
    print("\n=== Fig. 9: in-guest resource impact during introspection ===")
    print(f"introspection windows: "
          f"{[(round(a, 2), round(b, 2)) for a, b in trace.introspection_windows]}")
    rows = []
    for attr in ("cpu_idle_pct", "cpu_user_pct", "cpu_privileged_pct",
                 "mem_free_physical_pct", "mem_free_virtual_pct",
                 "page_faults_per_s"):
        inside, outside = trace.split_by_window(attr)
        z = trace.perturbation(attr)
        rows.append([attr, f"{outside.mean():.2f}", f"{inside.mean():.2f}",
                     f"{z:.2f}", "none" if z < 3 else "PERTURBED"])
    print(render_table(["series", "mean outside", "mean inside",
                        "|z|", "perturbation"], rows))
    t, idle = trace.series("cpu_idle_pct")
    _, free = trace.series("mem_free_physical_pct")
    _export("fig9_guest_impact", {
        "t_s": list(t), "cpu_idle_pct": list(idle),
        "mem_free_physical_pct": list(free),
    }, {"windows": trace.introspection_windows})


# --------------------------------------------------------------------------
# Ablations
# --------------------------------------------------------------------------

def run_a1() -> None:
    print("\n=== A1: parallel introspection (paper §V-C-1 future work) ===")
    rows = []
    for threads in (1, 2, 4, 8):
        tb = build_testbed(12, seed=SEED)
        seq = ModChecker(tb.hypervisor, tb.profile)
        with tb.clock.span() as s:
            seq.check_on_vm("http.sys", "Dom1")
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=threads)
        with tb.clock.span() as p:
            par.check_on_vm("http.sys", "Dom1")
        rows.append([threads, format_seconds(s.elapsed),
                     format_seconds(p.elapsed),
                     f"{s.elapsed / p.elapsed:.2f}x"])
    print(render_table(["Dom0 threads", "sequential", "parallel", "speedup"],
                       rows))


def run_a2() -> None:
    print("\n=== A2: libvmi cache ablation ===")
    rows = []
    for label, kwargs in (
            ("caches off", dict(enable_caches=False)),
            ("flush each round (default)",
             dict(enable_caches=True, flush_caches_each_round=True)),
            ("warm caches", dict(enable_caches=True,
                                 flush_caches_each_round=False))):
        tb = build_testbed(8, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, **kwargs)
        mc.check_pool("http.sys")
        with tb.clock.span() as span:
            mc.check_pool("http.sys")
        rows.append([label, format_seconds(span.elapsed)])
    print(render_table(["configuration", "round time (sim)"], rows))


def run_a3() -> None:
    import time
    from benchmarks.test_ablation_rva import BASE1, BASE2, N_SLOTS, _big_pair
    print("\n=== A3: Algorithm 2 implementation ablation "
          f"(256 KiB section, {N_SLOTS} fixups) ===")
    canonical, c1, c2 = _big_pair()
    rows = []
    for mode, fn in ADJUSTERS.items():
        t0 = time.perf_counter()
        adj1, adj2, stats = fn(c1, BASE1, c2, BASE2)
        dt = time.perf_counter() - t0
        rows.append([mode, f"{dt * 1e3:.1f} ms", stats.replaced,
                     stats.unresolved,
                     "yes" if adj1 == adj2 == canonical else "NO"])
    print(render_table(["variant", "wall time", "replaced", "unresolved",
                        "recovers canonical"], rows))


def run_a4() -> None:
    from benchmarks.test_ablation_majority import POOL, spread_outcome
    print("\n=== A4: majority vote vs infection spread "
          f"(pool of {POOL}) ===")
    rows = []
    for k in range(0, POOL + 1):
        n_flagged, victims_flagged, discrepancy = spread_outcome(k)
        rows.append([k, n_flagged,
                     "yes" if victims_flagged and k else "-",
                     "yes" if discrepancy else "no"])
    print(render_table(["#infected", "#flagged", "victims all flagged",
                        "discrepancy raised"], rows))


def run_a5() -> None:
    import time
    from repro.core import SUPPORTED_HASHES
    print("\n=== A5: digest-algorithm ablation (6-VM pool check) ===")
    rows = []
    for algorithm in SUPPORTED_HASHES:
        tb = build_testbed(6, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, hash_algorithm=algorithm)
        t0 = time.perf_counter()
        report = mc.check_pool("http.sys").report
        dt = time.perf_counter() - t0
        rows.append([algorithm, f"{dt * 1e3:.1f} ms",
                     "clean" if report.all_clean else "FLAGGED"])
    print(render_table(["digest", "wall time", "verdict"], rows))
    print("verdicts are digest-agnostic; MD5 matches the paper, SHA-256 "
          "is the modern deployment choice")


def run_h1() -> None:
    from repro.core import ModuleSearcher
    from repro.errors import ModuleNotLoadedError
    print("\n=== H1: hidden-module detection (anti-DKOM extension) ===")
    tb = build_testbed(4, seed=SEED)
    kernel = tb.hypervisor.domain("Dom2").kernel
    mod = kernel.module("dummy.sys")
    text = tb.catalog["dummy.sys"].section(".text")
    kernel.aspace.write(mod.base + text.virtual_address + 0x18, b"\xCC\xCC")
    kernel.unload_module("dummy.sys")
    print("staged: dummy.sys patched in memory and unlinked from "
          "PsLoadedModuleList on Dom2")

    mc = ModChecker(tb.hypervisor, tb.profile)
    try:
        ModuleSearcher(mc.vmi_for("Dom2")).find("dummy.sys")
        blind = False
    except ModuleNotLoadedError:
        blind = True
    print(f"list-walking searcher blind: {blind}")
    hidden = mc.detect_hidden_modules("Dom2")
    for carved, name in hidden:
        print(f"carver: image at {carved.base:#010x} "
              f"({len(carved.image)} bytes) identified as {name}")
        report = mc.check_carved_module(carved, name)
        print(f"integrity vs pool: "
              f"{'clean' if report.clean else 'TAMPERED'} "
              f"({', '.join(report.mismatched_regions())})")


def run_a6() -> None:
    print("\n=== A6: pool-check algorithm — pairwise O(t²) vs "
          "canonical O(t) ===")
    tb = build_testbed(15, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    rows = []
    for t in (4, 8, 12, 15):
        vms = tb.vm_names[:t]
        pw = mc.check_pool("http.sys", vms, mode="pairwise")
        cn = mc.check_pool("http.sys", vms, mode="canonical")
        rows.append([t, t * (t - 1) // 2, t - 1,
                     format_seconds(pw.timings.checker),
                     format_seconds(cn.timings.checker),
                     f"{pw.timings.checker / cn.timings.checker:.1f}x"])
    print(render_table(["#VMs", "pairwise cmps", "canonical cmps",
                        "pairwise checker", "canonical checker", "speedup"],
                       rows))


def run_a7() -> None:
    import importlib.util
    from pathlib import Path
    spec = importlib.util.spec_from_file_location(
        "_a7", Path(__file__).resolve().parent
        / "test_ablation_versioning.py")
    mod = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(mod)
    from repro.core import check_pool_versioned
    print("\n=== A7: version drift — rolling hal.dll update over a "
          "9-VM pool ===")
    rows = []
    for n_updated in range(0, 10):
        mc, parsed, _ = mod.rollout_pool(9, n_updated)
        naive = mc.checker.check_pool(parsed)
        versioned = check_pool_versioned(parsed, mc.checker)
        rows.append([n_updated, len(naive.flagged()),
                     len(versioned.flagged()),
                     ",".join(versioned.singletons) or "-"])
    print(render_table(["#updated VMs", "naive flags", "versioned flags",
                        "suspicious singletons"], rows))
    print("naive cross-checking false-alarms through the whole rollout; "
          "fingerprint partitioning stays quiet except for 1-VM cohorts")


def run_rw() -> None:
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "_rw", Path(__file__).resolve().parent
        / "test_related_work_matrix.py")
    mod = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(mod)

    class _Bench:
        def pedantic(self, fn, rounds=1, iterations=1):
            return fn()
    print("\n=== RW: related-work detection matrix (paper SS II) ===")
    # reuse the bench's matrix builder through its benchmark shim
    matrix = None
    def capture(fn, rounds=1, iterations=1):
        nonlocal matrix
        matrix = fn()
        return matrix
    bench = type("B", (), {"pedantic": staticmethod(capture)})()
    try:
        mod.test_detection_matrix(bench)
    except AssertionError:
        pass
    scenarios = ["file-level", "memory-level", "update", "all-infected"]
    tools = ["modchecker", "svv", "dictionary"]
    rows = []
    for scenario in scenarios:
        rows.append([scenario] + [
            ("ALARM" if matrix[(scenario, tool)] else "quiet")
            for tool in tools])
    print(render_table(["scenario"] + tools, rows))
    print("file-level: SVV quiet = its disk-first blind spot; "
          "update: dictionary ALARM = the false positive ModChecker "
          "exists to avoid; all-infected: cross-VM blind spot")


COMMANDS = {
    "e1": lambda: run_detection("E1"),
    "e2": lambda: run_detection("E2"),
    "e3": lambda: run_detection("E3"),
    "e4": lambda: run_detection("E4"),
    "fig4": run_fig4,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "a1": run_a1,
    "a2": run_a2,
    "a3": run_a3,
    "a4": run_a4,
    "a5": run_a5,
    "a6": run_a6,
    "a7": run_a7,
    "h1": run_h1,
    "rw": run_rw,
}


def main(argv: list[str]) -> int:
    global EXPORT_DIR
    args = list(argv)
    if "--csv" in args:
        i = args.index("--csv")
        try:
            EXPORT_DIR = Path(args[i + 1])
        except IndexError:
            print("--csv needs a directory argument")
            return 2
        del args[i:i + 2]
    targets = [a.lower() for a in args] or list(COMMANDS)
    unknown = [t for t in targets if t not in COMMANDS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"known: {' '.join(COMMANDS)}")
        return 2
    for target in targets:
        COMMANDS[target]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
