"""Shared benchmark fixtures.

Benchmarks measure the wall-clock cost of running the *simulation*
(pytest-benchmark) while asserting the *simulated* shapes the paper
reports. Expensive testbeds are session-scoped; benchmarks that mutate
guest load reset it afterwards.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.guest import build_catalog

SEED = 42


@pytest.fixture(scope="session")
def catalog():
    return build_catalog(seed=SEED)


@pytest.fixture(scope="session")
def tb15():
    """The paper's 15-clone cloud (clean)."""
    return build_testbed(15, seed=SEED)


@pytest.fixture(scope="session")
def tb6():
    """A smaller clean pool for per-iteration benchmarks."""
    return build_testbed(6, seed=SEED)
