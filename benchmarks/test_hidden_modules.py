"""H1 — hidden-module (anti-DKOM) experiment.

Not in the paper (its searcher trusts ``PsLoadedModuleList``); this is
the natural hardening the paper's related-work section motivates.
Scenario: a rootkit patches ``dummy.sys`` in memory and unlinks its LDR
entry. The list-walking searcher goes blind; the carving sweep finds
the image, fingerprints it back to its name, and the integrity check
convicts it. The benchmark prices the carving sweep, which is the cost
of closing the gap.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, ModuleCarver
from repro.errors import ModuleNotLoadedError

SEED = 42


def _staged():
    tb = build_testbed(4, seed=SEED)
    kernel = tb.hypervisor.domain("Dom2").kernel
    mod = kernel.module("dummy.sys")
    text = tb.catalog["dummy.sys"].section(".text")
    kernel.aspace.write(mod.base + text.virtual_address + 0x18, b"\xCC\xCC")
    kernel.unload_module("dummy.sys")          # DKOM unlink
    return tb


def test_hidden_infected_module_end_to_end(benchmark):
    tb = _staged()
    mc = ModChecker(tb.hypervisor, tb.profile)

    # The paper's searcher is blind now:
    from repro.core import ModuleSearcher
    with pytest.raises(ModuleNotLoadedError):
        ModuleSearcher(mc.vmi_for("Dom2")).find("dummy.sys")

    hidden = benchmark(lambda: mc.detect_hidden_modules("Dom2"))
    assert len(hidden) == 1
    carved, name = hidden[0]
    assert name == "dummy.sys"

    report = mc.check_carved_module(carved, name)
    assert not report.clean
    assert ".text" in report.mismatched_regions()


def test_carving_sweep_cost(benchmark, tb6):
    """Simulated cost of one arena sweep vs one module check — carving
    is heavier (it touches every mapped arena page) but stays within
    an order of magnitude, cheap enough for daemon rotation."""
    mc = ModChecker(tb6.hypervisor, tb6.profile)
    vmi = mc.vmi_for("Dom1")

    def sweep():
        vmi.flush_caches()
        with tb6.hypervisor.clock.span() as span:
            ModuleCarver(vmi).carve()
        return span.elapsed

    carve_elapsed = benchmark(sweep)

    vmi.flush_caches()
    with tb6.hypervisor.clock.span() as span:
        mc.check_on_vm("http.sys", "Dom1", tb6.vm_names[:2])
    check_elapsed = span.elapsed
    assert carve_elapsed < 40 * check_elapsed


def test_carver_finds_everything_searcher_does(tb6):
    mc = ModChecker(tb6.hypervisor, tb6.profile)
    from repro.core import ModuleSearcher
    searcher = ModuleSearcher(mc.vmi_for("Dom1"))
    listed = {e.dll_base for e in searcher.list_modules()}
    carved = {m.base for m in ModuleCarver(mc.vmi_for("Dom1")).carve()}
    assert carved == listed
