"""A7 — version-drift ablation: rolling updates vs the majority vote.

The paper's premise is a pool of identical clones; its own motivation
(hash dictionaries are painful *because modules update*) predicts the
failure mode when that premise slips: a rolling driver update makes the
naive cross-check flag healthy VMs. The versioned checker partitions
the pool by module fingerprint first and votes within cohorts.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, check_pool_versioned
from repro.guest.catalog import STANDARD_CATALOG
from repro.pe import PEBuilder
from repro.rng import derive_seed

SEED = 42
MODULE = "hal.dll"


def updated_driver(name=MODULE):
    spec = next(s for s in STANDARD_CATALOG if s.name == name)
    kwargs = dict(seed=derive_seed(777, "update", name),
                  n_functions=spec.n_functions,
                  avg_function_size=spec.avg_function_size,
                  data_size=spec.data_size, timestamp=0x5150_0000)
    if spec.imports is not None:
        kwargs["imports"] = spec.imports
    return PEBuilder(name, **kwargs).build()


def rollout_pool(n_vms: int, n_updated: int):
    updated = updated_driver()
    victims = [f"Dom{n_vms - i}" for i in range(n_updated)]
    tb = build_testbed(n_vms, seed=SEED,
                       infected={vm: {MODULE: updated} for vm in victims})
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules(MODULE, tb.vm_names)
    return mc, parsed, victims


@pytest.mark.parametrize("n_updated", [0, 2, 4])
def test_versioned_check_stays_clean_through_rollout(benchmark, n_updated):
    mc, parsed, _victims = rollout_pool(9, n_updated)
    report = benchmark(lambda: check_pool_versioned(parsed, mc.checker))
    assert report.all_clean
    assert len(report.groups) == (1 if n_updated == 0 else 2)


def test_false_positive_rate_naive_vs_versioned():
    rows = []
    for n_updated in range(0, 9):
        mc, parsed, _ = rollout_pool(9, n_updated)
        naive = mc.checker.check_pool(parsed)
        versioned = check_pool_versioned(parsed, mc.checker)
        rows.append((n_updated, len(naive.flagged()),
                     len(versioned.flagged())))
    # versioned: no false positives once a cohort has >= 2 members; a
    # single-VM "version" is deliberately reported as a suspicious
    # singleton (indistinguishable from header tampering).
    assert all(v == 0 for n, _naive, v in rows if 2 <= n <= 7)
    assert all(v == 1 for n, _naive, v in rows if n in (1, 8))
    # naive: false positives as soon as the pool mixes
    assert all(naive > 0 for n, naive, _v in rows if 0 < n < 9)


def test_versioned_check_still_detects_real_infection():
    from repro.attacks import RuntimeCodePatchAttack
    updated = updated_driver()
    tb = build_testbed(8, seed=SEED,
                       infected={vm: {MODULE: updated}
                                 for vm in ("Dom7", "Dom8")})
    RuntimeCodePatchAttack().apply(
        tb.hypervisor.domain("Dom3").kernel, tb.catalog[MODULE])
    mc = ModChecker(tb.hypervisor, tb.profile)
    parsed, *_ = mc.fetch_modules(MODULE, tb.vm_names)
    report = check_pool_versioned(parsed, mc.checker)
    assert report.flagged() == ["Dom3"]
