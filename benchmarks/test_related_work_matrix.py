"""RW — the related-work detection matrix (paper §II, runnable).

Rows: attack scenarios. Columns: ModChecker (cross-VM), SVV-style
(disk-vs-memory, per VM), Dictionary-style (known-good hashes, per VM).
Asserts the full qualitative matrix the paper's related-work section
claims, including each detector's characteristic failures.

Scenario              ModChecker  SVV      Dictionary
file-level (E1..E4)   detect      MISS     detect
memory-level patch    detect      detect   detect
legit update          accept*     accept   FALSE ALARM
all VMs infected      MISS        MISS†    detect

*  versioned voting (singleton notice for 1-VM rollouts)
†  file-level infection: the VM's own disk is equally infected
"""

from __future__ import annotations

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed, stage_experiment
from repro.core import ModChecker, check_pool_versioned
from repro.core.baselines import DictionaryChecker, SVVChecker
from repro.guest import build_catalog

SEED = 42


def _dictionary():
    return DictionaryChecker(build_catalog(seed=SEED))


def test_detection_matrix(benchmark):
    """One full matrix evaluation, benchmarked and asserted."""
    def run_matrix():
        clean_catalog = build_catalog(seed=SEED)
        dictionary = DictionaryChecker(clean_catalog)
        matrix: dict[tuple[str, str], bool] = {}   # (scenario, tool) -> detected

        # -- file-level infection (E1) ------------------------------------
        sc = stage_experiment("E1", n_vms=4)
        infected_disk = dict(clean_catalog)
        infected_disk[sc.module] = sc.infection.infected
        vmi = sc.checker.vmi_for(sc.victim)
        matrix[("file-level", "modchecker")] = \
            sc.run_pool_check().report.flagged() == [sc.victim]
        matrix[("file-level", "svv")] = \
            not SVVChecker(vmi, infected_disk).check_module(sc.module).clean
        matrix[("file-level", "dictionary")] = \
            not dictionary.check_module(vmi, sc.module).clean

        # -- memory-level patch --------------------------------------------
        from repro.attacks import RuntimeCodePatchAttack
        tb = build_testbed(4, seed=SEED)
        RuntimeCodePatchAttack().apply(
            tb.hypervisor.domain("Dom2").kernel, tb.catalog["hal.dll"])
        mc = ModChecker(tb.hypervisor, tb.profile)
        vmi = mc.vmi_for("Dom2")
        matrix[("memory-level", "modchecker")] = \
            mc.check_pool("hal.dll").report.flagged() == ["Dom2"]
        matrix[("memory-level", "svv")] = \
            not SVVChecker(vmi, clean_catalog).check_module("hal.dll").clean
        matrix[("memory-level", "dictionary")] = \
            not dictionary.check_module(vmi, "hal.dll").clean

        # -- legitimate update (false-alarm probe; "detected" == alarm) ----
        import sys
        sys.path.insert(0, ".")
        from benchmarks.test_ablation_versioning import updated_driver
        updated = updated_driver()
        tb = build_testbed(4, seed=SEED,
                           infected={vm: {"hal.dll": updated}
                                     for vm in ("Dom3", "Dom4")})
        mc = ModChecker(tb.hypervisor, tb.profile)
        vmi = mc.vmi_for("Dom3")
        parsed, *_ = mc.fetch_modules("hal.dll", tb.vm_names)
        matrix[("update", "modchecker")] = \
            not check_pool_versioned(parsed, mc.checker).all_clean
        disk = dict(clean_catalog)
        disk["hal.dll"] = updated
        matrix[("update", "svv")] = \
            not SVVChecker(vmi, disk).check_module("hal.dll").clean
        matrix[("update", "dictionary")] = \
            not dictionary.check_module(vmi, "hal.dll").clean

        # -- every VM identically infected ----------------------------------
        attack, module = attack_for_experiment("E2")
        infected_bp = attack.apply(clean_catalog[module]).infected
        tb = build_testbed(4, seed=SEED,
                           infected={f"Dom{i}": {module: infected_bp}
                                     for i in range(1, 5)})
        mc = ModChecker(tb.hypervisor, tb.profile)
        vmi = mc.vmi_for("Dom1")
        all_disk = dict(clean_catalog)
        all_disk[module] = infected_bp
        matrix[("all-infected", "modchecker")] = \
            not mc.check_pool(module).report.all_clean
        matrix[("all-infected", "svv")] = \
            not SVVChecker(vmi, all_disk).check_module(module).clean
        matrix[("all-infected", "dictionary")] = \
            not dictionary.check_module(vmi, module).clean
        return matrix

    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    expected = {
        ("file-level", "modchecker"): True,
        ("file-level", "svv"): False,          # SVV's blind spot
        ("file-level", "dictionary"): True,
        ("memory-level", "modchecker"): True,
        ("memory-level", "svv"): True,
        ("memory-level", "dictionary"): True,
        ("update", "modchecker"): False,       # versioned: no false alarm
        ("update", "svv"): False,
        ("update", "dictionary"): True,        # the cumbersome-DB false alarm
        ("all-infected", "modchecker"): False,  # the cross-VM blind spot
        ("all-infected", "svv"): False,         # disk equally infected
        ("all-infected", "dictionary"): True,
    }
    assert matrix == expected


@pytest.mark.parametrize("exp_id", ["E2", "E3", "E4"])
def test_svv_blind_spot_holds_for_every_paper_attack(exp_id):
    clean_catalog = build_catalog(seed=SEED)
    sc = stage_experiment(exp_id, n_vms=4)
    disk = dict(clean_catalog)
    disk[sc.module] = sc.infection.infected
    svv = SVVChecker(sc.checker.vmi_for(sc.victim), disk)
    assert svv.check_module(sc.module).clean
