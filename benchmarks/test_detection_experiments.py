"""E1–E4 — the paper's §V-B detection experiments, as benchmarks.

Each benchmark stages the paper's infection on one clone of a 6-VM
pool, runs a full ModChecker cross-check, and asserts the detection
outcome matches the paper byte-for-byte in *which PE components*
mismatch. The benchmark value is the wall-clock cost of one full
pool check over the simulated cloud.
"""

from __future__ import annotations

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

SEED = 42
VICTIM = "Dom3"
POOL = 6

#: Paper-reported mismatch signatures (§V-B-1..4). E4 lists our
#: region names; the paper's "all SECTION_HEADER's" expands to the five
#: original sections plus the injected one our naming makes visible.
PAPER_SIGNATURES = {
    "E1": {".text"},
    "E2": {".text"},
    "E3": {"IMAGE_DOS_HEADER"},
    "E4": {"IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER",
           "SECTION_HEADER[.text]", "SECTION_HEADER[.rdata]",
           "SECTION_HEADER[.data]", "SECTION_HEADER[INIT]",
           "SECTION_HEADER[.reloc]", "SECTION_HEADER[.ninj]", ".text"},
}


def _stage(exp_id):
    attack, module = attack_for_experiment(exp_id)
    catalog = build_catalog(seed=SEED)
    result = attack.apply(catalog[module])
    tb = build_testbed(POOL, seed=SEED,
                       infected={VICTIM: {module: result.infected}})
    return tb, module, result


@pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
def test_detection_experiment(benchmark, exp_id):
    tb, module, staged = _stage(exp_id)
    mc = ModChecker(tb.hypervisor, tb.profile)

    outcome = benchmark(lambda: mc.check_pool(module))

    report = outcome.report
    assert report.flagged() == [VICTIM], exp_id
    assert set(report.mismatched_regions(VICTIM)) == \
        PAPER_SIGNATURES[exp_id], exp_id
    assert set(report.mismatched_regions(VICTIM)) == \
        set(staged.expected_regions)


def test_clean_pool_no_false_positives(benchmark, tb6):
    """Control run: the same check on an uninfected pool stays silent."""
    mc = ModChecker(tb6.hypervisor, tb6.profile)
    outcome = benchmark(lambda: mc.check_pool("hal.dll"))
    assert outcome.report.all_clean


def test_full_catalog_sweep(benchmark, tb6):
    """Sweeping every loaded module across the pool (the deployment
    mode a cloud operator would schedule)."""
    mc = ModChecker(tb6.hypervisor, tb6.profile)
    outcomes = benchmark(lambda: mc.check_all_modules())
    assert all(o.report.all_clean for o in outcomes.values())
    assert len(outcomes) == 10
