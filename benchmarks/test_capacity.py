"""Capacity planning: what a deployed ModChecker daemon can sustain.

Not a paper figure — the operational question a cloud team asks before
adopting: how much simulated Dom0 time does one protective sweep cost,
and how does the daemon's coverage interval scale with pool size and
catalog size?
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.core import CheckDaemon, ModChecker, RoundRobinPolicy

SEED = 42


def test_full_catalog_sweep_cost_at_paper_scale(benchmark):
    """One complete all-modules pass over the 15-clone cloud."""
    tb = build_testbed(15, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)

    def sweep():
        with tb.clock.span() as span:
            outcomes = mc.check_all_modules()
        return outcomes, span.elapsed

    outcomes, elapsed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(outcomes) == 10
    assert all(o.report.all_clean for o in outcomes.values())
    # 10 modules x 15 VMs stays under 2 simulated seconds: a daemon can
    # sweep the whole cloud many times a minute.
    assert elapsed < 2.0


def test_sweep_cost_scales_with_catalog_and_pool():
    tb = build_testbed(15, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    costs = {}
    for t in (5, 10, 15):
        with tb.clock.span() as span:
            mc.check_all_modules(vms=tb.vm_names[:t])
        costs[t] = span.elapsed
    assert costs[5] < costs[10] < costs[15]
    # roughly linear in pool size (searcher-dominated)
    assert costs[15] / costs[5] < 4.5


def test_daemon_coverage_interval():
    """With a 3-modules-per-cycle policy and 60 s cycles, every module
    is re-checked within ceil(10/3)*60 = 240 simulated seconds."""
    tb = build_testbed(6, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=3),
                         interval=60.0, carve=False)
    seen: dict[str, float] = {}
    policy = daemon.policy
    modules = daemon._discover_modules()
    for cycle in range(4):
        now = tb.clock.now
        for module in policy.select(cycle, modules, daemon.log):
            seen.setdefault(module, now)
        daemon.run_cycle()
    assert set(seen) == set(modules)
    assert max(seen.values()) - min(seen.values()) <= 240.0


def test_dom0_cpu_budget_accounting():
    """The hypervisor's CPU ledger matches the clock on an idle host
    (factor 1): an operator can budget Dom0 CPU from the model."""
    tb = build_testbed(8, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    cpu0 = tb.hypervisor.dom0_cpu_seconds
    t0 = tb.clock.now
    mc.check_pool("http.sys")
    cpu = tb.hypervisor.dom0_cpu_seconds - cpu0
    elapsed = tb.clock.now - t0
    assert cpu == pytest.approx(elapsed, rel=1e-6)
