"""A8 — incremental check pipeline ablation.

The content-addressed manifest sweep replaces the walk/copy/parse/
compare pipeline with a per-page hypervisor-side checksum sweep once a
module has produced a clean verdict. This bench quantifies the
steady-state gain at zero churn (the acceptance bar: at least 3x
cheaper per cycle), shows the fast path collapses back to full cost
under a 100% reboot storm (nothing to reuse), and checks that the
recheck TTL bounds how long the pipeline can coast on sweeps.
"""

from __future__ import annotations

from repro.cloud import build_testbed
from repro.core import ModChecker

SEED = 42
MODULE = "hal.dll"
N_VMS = 6
ROUNDS = 5


def _steady_state(tb, **kwargs) -> float:
    """Mean per-cycle checker time after one warm-up round."""
    mc = ModChecker(tb.hypervisor, tb.profile, **kwargs)
    mc.check_pool(MODULE)                      # warm-up round
    with tb.clock.span() as span:
        for _ in range(ROUNDS):
            mc.check_pool(MODULE)
    return span.elapsed / ROUNDS


def test_incremental_ablation(benchmark):
    """Acceptance bar: >= 3x cheaper per steady-state cycle at zero
    churn versus the full pipeline on the same pool."""
    tb = build_testbed(N_VMS, seed=SEED)

    full = _steady_state(tb)
    fast = benchmark(lambda: _steady_state(tb, incremental=True))

    assert full >= 3.0 * fast, \
        f"incremental speedup {full / fast:.2f}x below the 3x bar"


def test_incremental_wins_even_against_warm_caches():
    """The sweep beats even the unsafe never-flush configuration: a
    warm page cache still pays translate+map accounting per round,
    the sweep only translate+checksum."""
    tb = build_testbed(N_VMS, seed=SEED)
    warm_caches = _steady_state(tb, flush_caches_each_round=False)
    fast = _steady_state(tb, incremental=True)
    assert fast < warm_caches


def test_reboot_storm_collapses_to_full_cost():
    """With every guest rebooting between rounds no manifest survives:
    the incremental pipeline must cost within a few percent of full
    (its overhead is the free generation-checked lookup)."""
    tb = build_testbed(N_VMS, seed=SEED)

    def stormy(**kwargs) -> float:
        mc = ModChecker(tb.hypervisor, tb.profile, **kwargs)
        mc.check_pool(MODULE)
        with tb.clock.span() as span:
            for _ in range(ROUNDS):
                for vm in tb.vm_names:
                    tb.hypervisor.reboot(vm)
                    mc.admit_vm(vm)
                mc.check_pool(MODULE)
        return span.elapsed / ROUNDS

    full = stormy()
    fast = stormy(incremental=True)
    assert fast <= full * 1.05
    assert fast >= full * 0.95


def test_recheck_ttl_bounds_the_coast():
    """A TTL forces periodic full re-verification: per-cycle cost with
    a tight TTL sits between always-full and never-recheck."""
    tb = build_testbed(N_VMS, seed=SEED)

    def with_ttl(ttl) -> float:
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True,
                        recheck_ttl=ttl)
        mc.check_pool(MODULE)
        elapsed = 0.0
        for _ in range(ROUNDS):
            tb.clock.advance(60.0)      # idle time between cycles
            with tb.clock.span() as span:
                mc.check_pool(MODULE)
            elapsed += span.elapsed
        return elapsed / ROUNDS

    never = with_ttl(None)
    tight = with_ttl(100.0)        # expires every other 60s cycle
    full = _steady_state(tb)
    assert never < tight < full


def test_incremental_determinism():
    """Two identical incremental runs produce identical clocks and
    identical manifest accounting (the replay cache is content-keyed,
    nothing depends on wall time or hash randomisation)."""
    def run():
        tb = build_testbed(N_VMS, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, incremental=True)
        for _ in range(3):
            mc.check_pool(MODULE)
        return (tb.clock.now, mc.manifests.stats.hits,
                mc.pair_replays,
                sorted(mc.manifests._entries.keys()))

    assert run() == run()
