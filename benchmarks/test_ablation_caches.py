"""A2 — libvmi-style cache ablation.

libvmi's V2P/page caches absorb most of Module-Searcher's repeat
traffic. This bench quantifies the simulated-time gap between cached
and uncached introspection, and verifies the security-driven default
(flush between rounds) sits between the two.
"""

from __future__ import annotations

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.vmi import VMIInstance

SEED = 42
MODULE = "http.sys"


def _elapsed_for(tb, **kwargs):
    mc = ModChecker(tb.hypervisor, tb.profile, **kwargs)
    mc.check_pool(MODULE)                      # warm-up round
    with tb.clock.span() as span:
        mc.check_pool(MODULE)                  # measured round
    return span.elapsed


def test_cache_ablation(benchmark):
    tb = build_testbed(8, seed=SEED)

    uncached = _elapsed_for(tb, enable_caches=False)
    flushed = _elapsed_for(tb, enable_caches=True,
                           flush_caches_each_round=True)
    cached = benchmark(lambda: _elapsed_for(
        tb, enable_caches=True, flush_caches_each_round=False))

    # Warm caches eliminate foreign mappings almost entirely.
    assert cached < flushed <= uncached
    assert uncached / cached > 2.0


def test_cache_hit_rates_reported():
    tb = build_testbed(3, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile,
                    flush_caches_each_round=False)
    mc.check_pool(MODULE)
    mc.check_pool(MODULE)
    vmi: VMIInstance = mc.vmi_for("Dom1")
    assert vmi.page_cache.hit_rate > 0.4
    assert vmi.v2p_cache.hit_rate > 0.4


def test_flushing_is_the_safe_default():
    """The stale-cache hazard the flush defends against: bytes changed
    by the guest after caching are invisible until a flush."""
    tb = build_testbed(4, seed=SEED)   # 4 VMs: one infection localises
    mc = ModChecker(tb.hypervisor, tb.profile,
                    flush_caches_each_round=False)
    assert mc.check_pool("hal.dll").report.all_clean

    kernel = tb.hypervisor.domain("Dom2").kernel
    mod = kernel.module("hal.dll")
    text = tb.catalog["hal.dll"].section(".text")
    kernel.aspace.write(mod.base + text.virtual_address + 0x30, b"\xEB")

    # Warm caches hide the change...
    stale = mc.check_pool("hal.dll").report
    assert stale.all_clean
    # ...the flushing configuration sees it immediately.
    mc_flush = ModChecker(tb.hypervisor, tb.profile,
                          flush_caches_each_round=True)
    fresh = mc_flush.check_pool("hal.dll").report
    assert fresh.flagged() == ["Dom2"]
