"""A9 — event-driven monitoring ablation.

Write-protection traps replace the incremental pipeline's O(pages)
checksum sweep with an O(writes) targeted re-check: at zero churn the
steady-state cycle is one empty ring drain per VM. This bench gates
the acceptance bar (at least 5x cheaper per steady-state cycle than
the PR-5 incremental sweep on the same pool), shows per-cycle cost
scales with the number of dirtied pages rather than the image size,
and checks the whole trap pipeline is deterministic.
"""

from __future__ import annotations

from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.mem.physical import PAGE_SIZE

SEED = 42
MODULE = "hal.dll"
N_VMS = 6
ROUNDS = 5


def _steady_state(tb, **kwargs) -> float:
    """Mean per-cycle checker time after one warm-up round."""
    mc = ModChecker(tb.hypervisor, tb.profile, **kwargs)
    mc.check_pool(MODULE)                      # warm-up round
    with tb.clock.span() as span:
        for _ in range(ROUNDS):
            mc.check_pool(MODULE)
    return span.elapsed / ROUNDS


def test_trap_ablation(benchmark):
    """Acceptance bar: the trap pipeline is >= 5x cheaper per
    steady-state cycle at zero churn than the incremental sweep, which
    itself beats the full pipeline."""
    tb = build_testbed(N_VMS, seed=SEED)

    full = _steady_state(tb)
    sweep = _steady_state(tb, incremental=True)
    event = benchmark(lambda: _steady_state(tb, event_driven=True))

    assert event < sweep < full
    assert sweep >= 5.0 * event, \
        f"trap speedup {sweep / event:.2f}x below the 5x bar"


def test_cost_scales_with_writes_not_pages():
    """Dirtying W pages per cycle costs O(W): more writes cost more,
    and even the dirtiest trap cycle stays under the full sweep (which
    re-digests every page regardless)."""
    tb = build_testbed(N_VMS, seed=SEED)
    kernel = tb.hypervisor.domain(tb.vm_names[0]).kernel
    mod = kernel.module(MODULE)

    def dirty_cycles(writes: int) -> float:
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        mc.check_pool(MODULE)
        with tb.clock.span() as span:
            for _ in range(ROUNDS):
                for page in range(writes):
                    # rewrite a byte with its own value: traps fire,
                    # content stays clean, the manifest survives
                    va = mod.base + page * PAGE_SIZE
                    kernel.aspace.write(va, kernel.aspace.read(va, 1))
                mc.check_pool(MODULE)
        assert mc.trap_pages_checked == writes * ROUNDS
        return span.elapsed / ROUNDS

    quiet = dirty_cycles(0)
    one = dirty_cycles(1)
    four = dirty_cycles(4)
    sweep = _steady_state(tb, incremental=True)
    assert quiet < one < four < sweep


def test_lifecycle_churn_collapses_toward_sweep_cost():
    """A migration completing every round disarms one VM's protections:
    that VM re-sweeps and re-arms each cycle, so the per-cycle cost
    lands between quiet steady state and the all-sweep pipeline."""
    tb = build_testbed(N_VMS, seed=SEED)
    victim = tb.vm_names[0]

    def churny() -> float:
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        mc.check_pool(MODULE)
        with tb.clock.span() as span:
            for _ in range(ROUNDS):
                tb.hypervisor.migrate_start(victim)
                tb.hypervisor.migrate_finish(victim)
                mc.check_pool(MODULE)
        assert mc.trap_fallbacks.get("lifecycle") == ROUNDS
        return span.elapsed / ROUNDS

    quiet = _steady_state(tb, event_driven=True)
    churned = churny()
    sweep = _steady_state(tb, incremental=True)
    assert quiet < churned < sweep


def test_trap_determinism():
    """Two identical event-driven runs produce identical clocks and
    identical trap accounting (ring order is insertion order, nothing
    depends on wall time or hash randomisation)."""
    def run():
        tb = build_testbed(N_VMS, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, event_driven=True)
        kernel = tb.hypervisor.domain(tb.vm_names[1]).kernel
        mod = kernel.module(MODULE)
        for round_no in range(3):
            if round_no == 1:
                va = mod.base + PAGE_SIZE
                kernel.aspace.write(va, kernel.aspace.read(va, 1))
            mc.check_pool(MODULE)
        return (tb.clock.now, mc.trap_validations, mc.trap_pages_checked,
                dict(mc.trap_fallbacks),
                mc.hv.traps.stats.snapshot(),
                sorted(mc._protections.keys()))

    assert run() == run()
