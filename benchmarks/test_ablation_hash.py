"""A5 — digest-algorithm ablation.

The paper uses OpenSSL MD5; MD5 is collision-broken, so a deployment
would use SHA-256. This bench shows the protocol is digest-agnostic
(identical verdicts) and measures the real hashing cost difference on a
full pool check.
"""

from __future__ import annotations

import pytest

from repro.core import SUPPORTED_HASHES, ModChecker


@pytest.mark.parametrize("algorithm", SUPPORTED_HASHES)
def test_pool_check_per_hash(benchmark, tb6, algorithm):
    mc = ModChecker(tb6.hypervisor, tb6.profile, hash_algorithm=algorithm)
    out = benchmark(lambda: mc.check_pool("http.sys"))
    assert out.report.all_clean


def test_verdicts_identical_across_hashes(tb6):
    reports = {}
    for algorithm in SUPPORTED_HASHES:
        mc = ModChecker(tb6.hypervisor, tb6.profile,
                        hash_algorithm=algorithm)
        reports[algorithm] = mc.check_pool("hal.dll").report
    reference = reports["md5"]
    for algorithm, report in reports.items():
        assert report.flagged() == reference.flagged(), algorithm
        for pair_a, pair_b in zip(report.pairs, reference.pairs):
            assert pair_a.mismatched_regions == pair_b.mismatched_regions
