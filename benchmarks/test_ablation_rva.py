"""A3 — Algorithm 2 implementation ablation.

Compares the three RVA-adjustment implementations on identical inputs:
(a) real wall-clock cost on a large relocated section (pytest-benchmark),
(b) output equivalence, and (c) behaviour of the faithful variant's
precondition (identical bases → it refuses to adjust).
"""

from __future__ import annotations

import struct

import pytest

from repro.core.rva import (ADJUSTERS, adjust_rva_faithful,
                            adjust_rva_robust, adjust_rva_vectorized)
from repro.rng import make_rng

BASE1, BASE2 = 0xF7010000, 0xF70B5000
SIZE = 256 * 1024          # a driver-scale .text section
N_SLOTS = 2000


def _big_pair():
    rng = make_rng(99)
    canonical = bytearray(rng.integers(0, 256, SIZE, dtype="uint8").tobytes())
    slots = sorted(rng.choice(SIZE // 8 - 1, size=N_SLOTS,
                              replace=False) * 8)
    for slot in slots:
        struct.pack_into("<I", canonical, int(slot),
                         int(rng.integers(0, SIZE)))
    c1, c2 = bytearray(canonical), bytearray(canonical)
    for slot in slots:
        rva = struct.unpack_from("<I", canonical, int(slot))[0]
        struct.pack_into("<I", c1, int(slot), (rva + BASE1) & 0xFFFFFFFF)
        struct.pack_into("<I", c2, int(slot), (rva + BASE2) & 0xFFFFFFFF)
    return bytes(canonical), bytes(c1), bytes(c2)


PAIR = _big_pair()


@pytest.mark.parametrize("mode", sorted(ADJUSTERS))
def test_adjuster_wall_clock(benchmark, mode):
    canonical, c1, c2 = PAIR
    fn = ADJUSTERS[mode]
    adj1, adj2, stats = benchmark(lambda: fn(c1, BASE1, c2, BASE2))
    assert adj1 == adj2 == canonical
    assert stats.replaced == N_SLOTS
    assert stats.unresolved == 0


def test_vectorized_not_slower_than_robust():
    """The numpy diff scan must pay off on driver-scale sections."""
    import time
    _, c1, c2 = PAIR

    def clock(fn):
        t0 = time.perf_counter()
        fn(c1, BASE1, c2, BASE2)
        return time.perf_counter() - t0

    t_robust = min(clock(adjust_rva_robust) for _ in range(3))
    t_vec = min(clock(adjust_rva_vectorized) for _ in range(3))
    assert t_vec < t_robust


def test_all_variants_equivalent_on_driver_pair():
    canonical, c1, c2 = PAIR
    outputs = {mode: fn(c1, BASE1, c2, BASE2)
               for mode, fn in ADJUSTERS.items()}
    reference = outputs["robust"]
    for mode, out in outputs.items():
        assert out[0] == reference[0], mode
        assert out[1] == reference[1], mode


def test_faithful_gives_up_on_identical_bases():
    """The faithful variant's guard (paper Algorithm 2 line 10): if the
    bases share all four bytes it never adjusts — harmless for clean
    modules (identical bases ⇒ identical bytes) but a blind spot the
    robust variant does not have."""
    _, c1, _ = PAIR
    adj1, adj2, stats = adjust_rva_faithful(c1, BASE1, c1, BASE1)
    assert stats.replaced == 0
    assert adj1 == adj2 == c1
