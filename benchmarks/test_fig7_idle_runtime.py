"""Fig. 7 — runtime of ModChecker and its components vs #VMs, idle.

Reproduces the paper's series: check ``http.sys`` on a target VM
against pools of 2..15 mostly-idle VMs, recording simulated
Searcher/Parser/Checker times. Assertions encode the paper's findings:
linear total growth, Module-Searcher both dominant and itself linear,
Parser/Checker comparatively flat.
"""

from __future__ import annotations

from repro.analysis import detect_knee, linear_fit
from repro.core import ModChecker
from repro.perf.timing import RunTiming

MODULE = "http.sys"


def sweep_idle(tb, module=MODULE):
    """The Fig. 7 sweep; returns one RunTiming per pool size."""
    mc = ModChecker(tb.hypervisor, tb.profile)
    tb.set_guest_loads(0.0)
    rows = []
    for t in range(2, len(tb.vm_names) + 1):
        vms = tb.vm_names[:t]
        out = mc.check_on_vm(module, vms[0], vms)
        rows.append(RunTiming(n_vms=t, loaded=False, timings=out.timings,
                              per_vm_searcher=list(
                                  out.per_vm_searcher.values())))
    return rows


def test_fig7_idle_runtime(benchmark, tb15):
    rows = benchmark(lambda: sweep_idle(tb15))

    xs = [r.n_vms for r in rows]
    total = [r.timings.total for r in rows]
    searcher = [r.timings.searcher for r in rows]
    parser = [r.timings.parser for r in rows]
    checker = [r.timings.checker for r in rows]

    # Paper: "a linear increment in the runtime as we increase the
    # number of VM for comparison".
    fit_total = linear_fit(xs, total)
    assert fit_total.r_squared > 0.995
    assert fit_total.slope > 0
    assert detect_knee(xs, total) is None

    # Paper: "the linear increment is also shown by Module-Searcher
    # that significantly effects the overall runtime performance".
    fit_searcher = linear_fit(xs, searcher)
    assert fit_searcher.r_squared > 0.995
    for s, tot in zip(searcher, total):
        assert s / tot > 0.5

    # Parser and Checker stay minor components.
    assert max(parser) < max(searcher)
    assert max(checker) < max(searcher)


def test_fig7_per_vm_search_cost_stable(tb15):
    """Each additional VM contributes a near-constant search cost —
    the mechanism behind the linearity."""
    rows = sweep_idle(tb15)
    per_vm = rows[-1].per_vm_searcher
    mean = sum(per_vm) / len(per_vm)
    assert all(abs(v - mean) / mean < 0.25 for v in per_vm)
