"""A4 — majority-vote behaviour as infection spreads (§III-B).

Charts the detection regimes the paper discusses: exact localisation
while the clean cluster holds a strict majority, pool-wide alarms in
the contested band, inverted votes when the worm wins the majority, and
the all-infected blind spot ("provided that at least one virtual
machine runs the original module").
"""

from __future__ import annotations

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

SEED = 42
POOL = 9


def spread_outcome(n_infected, pool=POOL):
    """(#flagged, victims_all_flagged, any_discrepancy) after infecting
    n_infected clones with one identical rootkit."""
    attack, module = attack_for_experiment("E1")
    catalog = build_catalog(seed=SEED)
    infected_bp = attack.apply(catalog[module]).infected
    victims = [f"Dom{i}" for i in range(1, n_infected + 1)]
    tb = build_testbed(pool, seed=SEED,
                       infected={v: {module: infected_bp} for v in victims})
    mc = ModChecker(tb.hypervisor, tb.profile)
    report = mc.check_pool(module).report
    flagged = set(report.flagged())
    return (len(flagged),
            set(victims) <= flagged,
            not report.all_clean)


def test_majority_sweep(benchmark):
    outcomes = benchmark.pedantic(
        lambda: [spread_outcome(k) for k in range(0, POOL + 1)],
        rounds=1, iterations=1)

    # k=0: silent. k in 1..3 (clean cluster >= 6 of 9): exact.
    assert outcomes[0] == (0, True, False)
    for k in (1, 2, 3):
        n_flagged, victims_flagged, discrepancy = outcomes[k]
        assert (n_flagged, victims_flagged, discrepancy) == (k, True, True)

    # contested band (k=4): everyone flagged, discrepancy loud.
    assert outcomes[4][2]
    assert outcomes[4][0] >= POOL - 1

    # inverted band (k in 6..8): the clean minority gets flagged, but a
    # discrepancy is still raised — the paper's false-alarm case.
    for k in (6, 7, 8):
        n_flagged, victims_flagged, discrepancy = outcomes[k]
        assert discrepancy
        assert n_flagged == POOL - k
        assert not victims_flagged

    # blind spot: all 9 identically infected, no signal at all.
    n_flagged, _victims_flagged, discrepancy = outcomes[POOL]
    assert n_flagged == 0 and not discrepancy


@pytest.mark.parametrize("pool", [5, 9, 15])
def test_single_infection_always_localised(pool):
    n_flagged, victims_flagged, discrepancy = spread_outcome(1, pool)
    assert (n_flagged, victims_flagged, discrepancy) == (1, True, True)


def test_detection_boundary_formula():
    """Exact localisation holds iff clean VMs match > (t-1)/2 others,
    i.e. clean_count - 1 > (t-1)/2. Verify the boundary at t=9: k=3
    keeps it (5 > 4), k=4 loses it (4 > 4 fails)."""
    assert spread_outcome(3)[0] == 3
    assert spread_outcome(4)[0] > 4
