"""A1 — parallel vs sequential introspection (paper §V-C-1's "modular
design ... can support parallel access of virtual machines' memory").

Measures the simulated wall-clock win of the parallel extension on an
idle host, and shows the win evaporates once guests saturate the
physical CPUs — extra Dom0 threads then just add contention.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed
from repro.core import ModChecker, ParallelModChecker
from repro.perf import HEAVY_LOAD, apply_workload

SEED = 42
MODULE = "http.sys"


def _simulated_elapsed(checker, tb):
    with tb.clock.span() as span:
        checker.check_on_vm(MODULE, "Dom1")
    return span.elapsed


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_parallel_speedup_idle(benchmark, threads):
    tb = build_testbed(12, seed=SEED)
    seq = ModChecker(tb.hypervisor, tb.profile)
    par = ParallelModChecker(tb.hypervisor, tb.profile, threads=threads)

    seq_elapsed = _simulated_elapsed(seq, tb)
    par_elapsed = benchmark(lambda: _simulated_elapsed(par, tb))

    speedup = seq_elapsed / par_elapsed
    if threads == 1:
        assert speedup == pytest.approx(1.0, rel=0.2)
    else:
        assert speedup > 1.2
        # makespan bound: can't beat perfect division of labour
        assert speedup <= threads + 0.5


def test_parallel_speedup_monotone_in_threads():
    tb = build_testbed(12, seed=SEED)
    elapsed = {}
    for threads in (1, 2, 4):
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=threads)
        elapsed[threads] = _simulated_elapsed(par, tb)
    assert elapsed[1] > elapsed[2] > elapsed[4]


def test_parallelism_collapses_on_saturated_host():
    """When guests peg all 8 logical CPUs, adding Dom0 threads buys far
    less than on an idle host — contention eats the parallelism."""
    def speedup_at(load):
        tb = build_testbed(12, seed=SEED)
        if load:
            for name in tb.vm_names:
                apply_workload(tb.hypervisor.domain(name), HEAVY_LOAD)
        seq = ModChecker(tb.hypervisor, tb.profile)
        par = ParallelModChecker(tb.hypervisor, tb.profile, threads=4)
        s = _simulated_elapsed(seq, tb)
        p = _simulated_elapsed(par, tb)
        return s / p

    idle_speedup = speedup_at(False)
    loaded_speedup = speedup_at(True)
    assert idle_speedup > loaded_speedup
