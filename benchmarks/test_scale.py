"""Cloud-scale stress: beyond the paper's 15 clones.

The paper's linear-searcher result implies large pools are feasible;
these benches actually run 50-VM pools and verify (a) the linear law
holds an order of magnitude past the paper's range, (b) detection still
localises a single infection at scale, and (c) host memory stays sane
thanks to sparse guest frames.
"""

from __future__ import annotations

import pytest

from repro.analysis import linear_fit
from repro.attacks import attack_for_experiment
from repro.cloud import build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

SEED = 42
BIG = 50


@pytest.fixture(scope="module")
def tb50():
    return build_testbed(BIG, seed=SEED)


def test_build_50_vm_cloud(benchmark):
    tb = benchmark.pedantic(lambda: build_testbed(BIG, seed=SEED),
                            rounds=1, iterations=1)
    assert len(tb.vm_names) == BIG


def test_linearity_holds_to_50(tb50):
    mc = ModChecker(tb50.hypervisor, tb50.profile)
    xs, ys = [], []
    for t in range(5, BIG + 1, 5):
        vms = tb50.vm_names[:t]
        out = mc.check_on_vm("http.sys", vms[0], vms)
        xs.append(t)
        ys.append(out.timings.total)
    fit = linear_fit(xs, ys)
    assert fit.r_squared > 0.999


def test_detection_at_scale(benchmark):
    attack, module = attack_for_experiment("E1")
    catalog = build_catalog(seed=SEED)
    infected = attack.apply(catalog[module]).infected
    tb = build_testbed(BIG, seed=SEED,
                       infected={"Dom37": {module: infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    out = benchmark.pedantic(lambda: mc.check_pool(module),
                             rounds=1, iterations=1)
    assert out.report.flagged() == ["Dom37"]
    assert out.report.verdicts["Dom37"].comparisons == BIG - 1


def test_memory_footprint_stays_sparse(tb50):
    resident = sum(
        d.kernel.memory.resident_bytes()
        for d in tb50.hypervisor.guests())
    # 50 guests x 64 MiB addressable, but well under 50 MiB resident.
    assert resident < 50 * 1024 * 1024
