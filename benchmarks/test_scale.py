"""Cloud-scale stress: beyond the paper's 15 clones.

The paper's linear-searcher result implies large pools are feasible;
these benches actually run 50-VM pools and verify (a) the linear law
holds an order of magnitude past the paper's range, (b) detection still
localises a single infection at scale, and (c) host memory stays sane
thanks to sparse guest frames.

The ``fleet`` tier (``-m fleet``) goes two orders of magnitude
further: 10k heterogeneous guests under the sharded control plane.
Its gated numbers — sustained VM-checks/sec and p99 fleet-round
latency — are read off the **simulated-cost clock**, not wall time:
single-round pedantic wall timings are noise-prone on shared CI
runners, while the simulated metrics are a pure function of the seed,
so the CI gate (``tools/check_bench_regression.py --fleet``) is
deterministic. When ``FLEET_METRICS_OUT`` is set, the tier writes the
metrics JSON the gate consumes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import linear_fit
from repro.attacks import attack_for_experiment
from repro.cloud import Fleet, build_fleet_testbed, build_testbed
from repro.core import ModChecker
from repro.guest import build_catalog

SEED = 42
BIG = 50
FLEET_VMS = 10_000
FLEET_CYCLES = 4


@pytest.fixture(scope="module")
def tb50():
    return build_testbed(BIG, seed=SEED)


def test_build_50_vm_cloud(benchmark):
    tb = benchmark.pedantic(lambda: build_testbed(BIG, seed=SEED),
                            rounds=1, iterations=1)
    assert len(tb.vm_names) == BIG


def test_linearity_holds_to_50(tb50):
    mc = ModChecker(tb50.hypervisor, tb50.profile)
    xs, ys = [], []
    for t in range(5, BIG + 1, 5):
        vms = tb50.vm_names[:t]
        out = mc.check_on_vm("http.sys", vms[0], vms)
        xs.append(t)
        ys.append(out.timings.total)
    fit = linear_fit(xs, ys)
    assert fit.r_squared > 0.999


def test_detection_at_scale(benchmark):
    attack, module = attack_for_experiment("E1")
    catalog = build_catalog(seed=SEED)
    infected = attack.apply(catalog[module]).infected
    tb = build_testbed(BIG, seed=SEED,
                       infected={"Dom37": {module: infected}})
    mc = ModChecker(tb.hypervisor, tb.profile)
    out = benchmark.pedantic(lambda: mc.check_pool(module),
                             rounds=1, iterations=1)
    assert out.report.flagged() == ["Dom37"]
    assert out.report.verdicts["Dom37"].comparisons == BIG - 1


def test_memory_footprint_stays_sparse(tb50):
    resident = sum(
        d.kernel.memory.resident_bytes()
        for d in tb50.hypervisor.guests())
    # 50 guests x 64 MiB addressable, but well under 50 MiB resident.
    assert resident < 50 * 1024 * 1024


# -- the fleet tier ----------------------------------------------------------

def _run_fleet(n_vms: int, cycles: int) -> Fleet:
    tb = build_fleet_testbed(n_vms, seed=SEED)
    fleet = Fleet(tb.hypervisor, shard_size=64, workers=32,
                  checker_kwargs={"event_driven": True,
                                  "flush_caches_each_round": False})
    fleet.run(cycles)
    return fleet


@pytest.mark.fleet
def test_fleet_tier_10k_vms():
    """10k heterogeneous guests under the sharded control plane.

    Every gated number below comes off the simulated clock, so the
    run is a pure function of the seed; the only wall-clock cost is
    building and sweeping the substrate once.
    """
    fleet = _run_fleet(FLEET_VMS, FLEET_CYCLES)
    stats = fleet.stats

    placed = sum(s.size for s in fleet.shards.values())
    assert placed == FLEET_VMS
    # every shard reaches its verdicts: one module per shard per round
    assert stats.checks_total == len(fleet.shards) * FLEET_CYCLES
    assert stats.vm_checks_total == FLEET_VMS * FLEET_CYCLES
    # nothing flagged on a pristine fleet
    assert stats.alerts_total == 0

    checks_per_sec = stats.checks_per_sec
    p99 = stats.p99_cycle_seconds
    assert checks_per_sec > 0
    assert 0 < p99 < 60.0     # a round's work fits inside its interval

    out = os.environ.get("FLEET_METRICS_OUT")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump({"metrics": {"checks_per_sec": checks_per_sec,
                                   "p99_cycle_seconds": p99},
                       "vms": FLEET_VMS, "cycles": FLEET_CYCLES,
                       "shards": len(fleet.shards),
                       "vm_checks_total": stats.vm_checks_total,
                       "seed": SEED}, fh, indent=2, sort_keys=True)
            fh.write("\n")


@pytest.mark.fleet
def test_fleet_metrics_deterministic():
    """Two identical small-fleet runs agree to the last bit.

    This is the property the CI gate leans on: the gated metrics are
    simulated, so any drift is a code change, never runner noise.
    """
    def observe() -> tuple:
        fleet = _run_fleet(120, 3)
        return (fleet.stats.vm_checks_total,
                fleet.stats.checks_per_sec,
                fleet.stats.p99_cycle_seconds,
                tuple(fleet.stats.cycle_seconds),
                fleet.hv.clock.now)

    assert observe() == observe()
