"""A6 — pool-check algorithm ablation: pairwise O(t²) vs canonical O(t).

The paper's Integrity-Checker compares pairs; its majority vote over a
whole pool therefore costs C(t,2) comparisons. Because RVA adjustment
canonicalises clean copies, one reference pass plus digest clustering
gives the same verdicts in t-1 comparisons. This bench shows the
checker-phase cost scaling and verdict equivalence across pool sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import linear_fit
from repro.cloud import build_testbed
from repro.core import ModChecker

SEED = 42
MODULE = "http.sys"


@pytest.mark.parametrize("mode", ["pairwise", "canonical"])
def test_pool_mode_wall_clock(benchmark, tb15, mode):
    mc = ModChecker(tb15.hypervisor, tb15.profile)
    out = benchmark(lambda: mc.check_pool(MODULE, mode=mode))
    assert out.report.all_clean


def test_checker_phase_scaling():
    """Pairwise checker time grows ~quadratically, canonical ~linearly."""
    tb = build_testbed(15, seed=SEED)
    mc = ModChecker(tb.hypervisor, tb.profile)
    sizes = [4, 8, 12, 15]
    pairwise, canonical = [], []
    for t in sizes:
        vms = tb.vm_names[:t]
        pairwise.append(mc.check_pool(MODULE, vms,
                                      mode="pairwise").timings.checker)
        canonical.append(mc.check_pool(MODULE, vms,
                                       mode="canonical").timings.checker)
    # canonical stays linear (R^2 of the line near 1)
    assert linear_fit(sizes, canonical).r_squared > 0.99
    # pairwise grows super-linearly: per-VM cost increases with t
    per_vm_pairwise = [p / t for p, t in zip(pairwise, sizes)]
    assert per_vm_pairwise[-1] > 2.0 * per_vm_pairwise[0]
    # at t=15 the canonical checker is at least 3x cheaper
    assert canonical[-1] < pairwise[-1] / 3


def test_equivalent_verdicts_across_sizes():
    from repro.attacks import attack_for_experiment
    from repro.guest import build_catalog
    attack, module = attack_for_experiment("E2")
    catalog = build_catalog(seed=SEED)
    infected = attack.apply(catalog[module]).infected
    for t in (4, 9, 15):
        tb = build_testbed(t, seed=SEED,
                           infected={"Dom2": {module: infected}})
        mc = ModChecker(tb.hypervisor, tb.profile)
        a = mc.check_pool(module, mode="pairwise").report
        b = mc.check_pool(module, mode="canonical").report
        assert a.flagged() == b.flagged() == ["Dom2"], t
