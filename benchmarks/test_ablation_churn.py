"""A7 — lifecycle-churn ablation: detection quality vs pool turbulence.

The robustness claim, quantified: sweep the churn rate over a 5-clone
pool and show that (i) sustained reboot/pause/migrate/destroy/create
noise never produces a false positive; (ii) an infected guest admitted
mid-run is still convicted within a bounded number of cycles at every
rate the warm-up/breaker machinery absorbs; (iii) at rate 0 the whole
chaos layer is simulated-time invisible.

Every churn schedule is a pure function of the seed, so these are as
deterministic as the churn-free benches.
"""

from __future__ import annotations

import pytest

from repro.cloud import build_testbed, stage_chaos
from repro.core import CheckDaemon, ModChecker, RoundRobinPolicy

pytestmark = pytest.mark.chaos

SEED = 42
POOL = 5
WARM_CYCLES = 3
SOAK_CYCLES = 10
RATES = [0.0, 0.1, 0.25, 0.4]
INTEGRITY_KINDS = ("integrity", "hidden-module", "decoy-entry")


def _integrity(alerts):
    return [a for a in alerts if a.kind in INTEGRITY_KINDS]


@pytest.mark.parametrize("rate", RATES)
def test_no_false_positives_at_any_rate(rate):
    scenario = stage_chaos(n_vms=POOL, seed=SEED, churn_rate=rate)
    log = scenario.run(SOAK_CYCLES)
    assert _integrity(log.alerts) == []
    if rate == 0.0:
        assert scenario.engine.stats.events == 0
        assert [a for a in log.alerts if a.kind == "degraded"] == []


#: Churn delays detection — an admitted guest can land straight in a
#: migration blackout (~3 cycles) and serve a breaker cool-down before
#: it may vote — but the delay must stay *bounded*, not open-ended.
LATENCY_BOUND = {0.0: 6, 0.1: 8, 0.25: 12}


@pytest.mark.parametrize("rate", sorted(LATENCY_BOUND))
def test_detection_latency_bounded_under_churn(rate):
    scenario = stage_chaos(n_vms=POOL, seed=SEED, churn_rate=rate)
    scenario.run(WARM_CYCLES)
    vm = scenario.admit_infected("E2")
    bound = LATENCY_BOUND[rate]
    latency = None
    for cycle in range(1, bound + 1):
        alerts = scenario.daemon.run_cycle()
        if any(vm in a.flagged_vms for a in _integrity(alerts)):
            latency = cycle
            break
    assert latency is not None, \
        f"{vm} not convicted within {bound} cycles at rate {rate}"


def test_zero_rate_layer_is_free():
    tb = build_testbed(POOL, seed=SEED)
    bare = CheckDaemon(ModChecker(tb.hypervisor, tb.profile),
                       RoundRobinPolicy(per_cycle=3))
    bare.run(SOAK_CYCLES)
    bare_now = tb.clock.now
    bare_alerts = [str(a) for a in bare.log.alerts]

    scenario = stage_chaos(n_vms=POOL, seed=SEED, churn_rate=0.0,
                           policy=RoundRobinPolicy(per_cycle=3))
    log = scenario.run(SOAK_CYCLES)
    assert scenario.testbed.clock.now == bare_now
    assert [str(a) for a in log.alerts] == bare_alerts


def test_churn_trace_deterministic(benchmark):
    def soak():
        scenario = stage_chaos(n_vms=POOL, seed=SEED, churn_rate=0.25)
        log = scenario.run(SOAK_CYCLES)
        return ([str(e) for e in scenario.engine.trace],
                [str(a) for a in log.alerts])

    first = soak()
    assert benchmark(soak) == first
