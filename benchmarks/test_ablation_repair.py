"""A12 — restore-on-tamper ablation: MTTR as a benchmark axis.

The self-healing claim, quantified: a tampered clone admitted into a
churning pool is not just *convicted* but *restored*, and the mean time
to repair — detection verdict to verified-clean re-check, on the
simulated clock — is a first-class gated number next to detection
latency and checks/sec. Because MTTR is read off the simulated clock it
is a pure function of the seed: the CI gate
(``tools/check_bench_regression.py --fleet --baseline
benchmarks/baseline_repair.json``) runs with a tight direction-aware
tolerance and never trips on runner noise. When ``REPAIR_METRICS_OUT``
is set, the soak test writes the metrics JSON the gate consumes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.attacks import RacingWriterAttack, RuntimeCodePatchAttack
from repro.cloud import build_testbed, stage_chaos
from repro.core import ModChecker

pytestmark = pytest.mark.chaos

SEED = 42
POOL = 5
WARM_CYCLES = 3
SOAK_CYCLES = 12
#: 0.1 keeps Mallory votable shortly after admission at this seed;
#: higher rates park the clone in migration blackouts for most of the
#: soak, which is the *detection*-latency story (A7), not the MTTR one.
CHURN = 0.1


def _scenario(policy="repair", attempts=3):
    return stage_chaos(n_vms=POOL, seed=SEED, churn_rate=CHURN,
                       checker_kwargs={"repair_policy": policy,
                                       "repair_max_attempts": attempts})


def _repair_stats(scenario):
    return scenario.checker.repair.stats


def test_infected_admission_self_heals_under_churn():
    """The headline soak: Mallory joins mid-churn, is convicted, then
    restored in place — and every tamper verdict reaches an explicit
    terminal state (verified here; never a silent failure)."""
    scenario = _scenario()
    scenario.run(WARM_CYCLES)
    vm = scenario.admit_infected("E2")
    repaired_cycle = None
    for cycle in range(1, SOAK_CYCLES + 1):
        alerts = scenario.daemon.run_cycle()
        if any(a.kind == "repaired" and vm in a.flagged_vms
               for a in alerts):
            repaired_cycle = cycle
            break
    assert repaired_cycle is not None, \
        f"{vm} not repaired within {SOAK_CYCLES} cycles"

    daemon = scenario.daemon
    assert daemon.repairs_verified >= 1
    assert daemon.repairs_failed == 0
    assert daemon.repairs_quarantined == 0

    stats = _repair_stats(scenario)
    assert stats.verified == daemon.repairs_verified
    assert stats.mttr_count == stats.verified
    assert 0 < stats.mttr_mean <= stats.mttr_max

    # the pool really is clean again: further cycles raise no new
    # integrity alerts against the healed clone
    for _ in range(2):
        assert not [a for a in scenario.daemon.run_cycle()
                    if a.kind == "integrity" and vm in a.flagged_vms]

    out = os.environ.get("REPAIR_METRICS_OUT")
    if out:
        attempts_per_fix = stats.attempts / stats.verified
        with open(out, "w", encoding="utf-8") as fh:
            json.dump({"metrics": {
                           "repair_mttr_mean_seconds": stats.mttr_mean,
                           "repair_mttr_max_seconds": stats.mttr_max,
                           "repair_attempts_per_fix": attempts_per_fix,
                           "repair_cycles_to_heal": repaired_cycle,
                       },
                       "pool": POOL, "churn_rate": CHURN,
                       "verified": stats.verified,
                       "bytes_written": stats.bytes_written,
                       "seed": SEED}, fh, indent=2, sort_keys=True)
            fh.write("\n")


def test_mttr_deterministic_per_seed():
    """Two identical soaks agree to the last bit — the property the CI
    gate leans on: gated MTTR drift is a code change, never noise."""
    def observe() -> tuple:
        scenario = _scenario()
        scenario.run(WARM_CYCLES)
        vm = scenario.admit_infected("E2")
        scenario.run(SOAK_CYCLES)
        stats = _repair_stats(scenario)
        return (vm, stats.verified, stats.attempts, stats.bytes_written,
                stats.mttr_mean, stats.mttr_max,
                scenario.testbed.clock.now)

    assert observe() == observe()


def test_racing_adversary_stretches_mttr_but_loses(catalog):
    """The adversary axis: a racing writer whose budget is under the
    retry budget costs extra attempts (and therefore MTTR) but still
    ends verified-clean — degraded, bounded, never silent."""
    def mttr_with(attack) -> tuple:
        tb = build_testbed(4, seed=SEED)
        mc = ModChecker(tb.hypervisor, tb.profile, repair_policy="repair",
                        repair_max_attempts=4)
        attack.apply(tb.hypervisor.domain("Dom2").kernel,
                     catalog["hal.dll"])
        if isinstance(attack, RacingWriterAttack):
            attack.arm(tb.clock)
        (rec,) = mc.check_pool("hal.dll").remediations
        assert rec.status == "verified"
        return rec.attempts, rec.mttr

    plain_attempts, plain_mttr = mttr_with(RuntimeCodePatchAttack())
    raced_attempts, raced_mttr = mttr_with(RacingWriterAttack(rewrites=2))
    assert plain_attempts == 1
    assert raced_attempts == 3          # budget 2 < retry budget 4
    assert raced_mttr > plain_mttr


def test_detect_only_repair_layer_is_free():
    """At policy ``detect-only`` the repair layer must be simulated-time
    invisible: a churn soak costs exactly what it costs with no repair
    wiring at all."""
    def soak(checker_kwargs) -> tuple:
        scenario = stage_chaos(n_vms=POOL, seed=SEED, churn_rate=CHURN,
                               checker_kwargs=checker_kwargs)
        log = scenario.run(SOAK_CYCLES)
        return (scenario.testbed.clock.now,
                [str(a) for a in log.alerts])

    assert soak({"repair_policy": "detect-only"}) == soak(None)
