"""Fig. 8 — runtime vs #VMs with HeavyLoad on every guest.

Reproduces the paper's worst case: every pool VM runs the HeavyLoad
stand-in while Dom0 checks ``http.sys``. Assertions encode the paper's
findings: strictly costlier than idle at every size, and "a sudden
nonlinear growth in the ModChecker's runtime when the number of heavily
loaded VMs exceeded the number of available virtual cores" (8 on the
modelled quad-core-HT i7).
"""

from __future__ import annotations

from repro.analysis import detect_knee, growth_ratios, linear_fit
from repro.core import ModChecker
from repro.perf import HEAVY_LOAD, apply_workload
from repro.perf.timing import RunTiming

MODULE = "http.sys"


def sweep_loaded(tb, module=MODULE):
    """The Fig. 8 sweep: pool VMs run HeavyLoad during their check."""
    mc = ModChecker(tb.hypervisor, tb.profile)
    rows = []
    for t in range(2, len(tb.vm_names) + 1):
        vms = tb.vm_names[:t]
        tb.set_guest_loads(0.0)
        for name in vms:
            apply_workload(tb.hypervisor.domain(name), HEAVY_LOAD)
        out = mc.check_on_vm(module, vms[0], vms)
        rows.append(RunTiming(n_vms=t, loaded=True, timings=out.timings))
    tb.set_guest_loads(0.0)
    return rows


def test_fig8_loaded_runtime(benchmark, tb15):
    rows = benchmark(lambda: sweep_loaded(tb15))
    from benchmarks.test_fig7_idle_runtime import sweep_idle
    idle_rows = sweep_idle(tb15)

    xs = [r.n_vms for r in rows]
    loaded_total = [r.timings.total for r in rows]
    idle_total = [r.timings.total for r in idle_rows]

    # Worst case costs more than best case at every pool size.
    for idle_t, loaded_t in zip(idle_total, loaded_total):
        assert loaded_t > idle_t

    # The knee: nonlinear growth once loaded vCPUs exceed the 8 pCPUs.
    knee = detect_knee(xs, loaded_total)
    cores = tb15.hypervisor.cpu.logical_cpus
    assert knee is not None
    assert cores - 3 <= knee <= cores + 2

    # Pre-knee region is still near-linear; post-knee slope is much
    # steeper ("sudden" growth).
    pre = [t for x, t in zip(xs, loaded_total) if x <= cores - 1]
    post = [t for x, t in zip(xs, loaded_total) if x >= cores]
    slope_pre = linear_fit(range(len(pre)), pre).slope
    slope_post = linear_fit(range(len(post)), post).slope
    assert slope_post > 2.0 * slope_pre

    # Growth ratios jump at the saturation point.
    ratios = growth_ratios(loaded_total)
    assert max(ratios) > min(ratios) * 1.2


def test_fig8_searcher_still_dominates_under_load(tb15):
    rows = sweep_loaded(tb15)
    last = rows[-1].timings
    assert last.searcher / last.total > 0.5
