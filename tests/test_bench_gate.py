"""Tests for tools/check_bench_regression.py on synthetic results."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" \
    / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("bench_gate", _TOOL)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)


def write_results(path: Path, means: dict[str, float]) -> Path:
    path.write_text(json.dumps(
        {"benchmarks": [{"name": n, "stats": {"mean": m}}
                        for n, m in means.items()]}))
    return path


BASE = {"test_a": 0.1, "test_b": 0.2, "test_c": 0.7}


@pytest.fixture
def baseline(tmp_path):
    return write_results(tmp_path / "baseline.json", BASE)


def run(results, baseline, *extra):
    return bench_gate.main([str(results), "--baseline", str(baseline),
                            *extra])


class TestRelativeGate:
    def test_identical_passes(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json", BASE)
        assert run(results, baseline) == 0

    def test_uniform_slowdown_passes(self, tmp_path, baseline):
        """A slow runner scales everything; shares are unchanged."""
        results = write_results(tmp_path / "r.json",
                                {n: m * 3.0 for n, m in BASE.items()})
        assert run(results, baseline) == 0

    def test_single_benchmark_regression_fails(self, tmp_path, baseline):
        slow = dict(BASE, test_a=BASE["test_a"] * 4.0)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline) == 1

    def test_speedup_is_not_a_failure(self, tmp_path, baseline):
        fast = dict(BASE, test_c=BASE["test_c"] * 0.7)
        results = write_results(tmp_path / "r.json", fast)
        # test_c shrinking inflates a/b's shares by ~27%; the gate must
        # not flag the sped-up benchmark itself, only genuine growth.
        assert run(results, baseline, "--tolerance", "0.3") == 0

    def test_tolerance_is_respected(self, tmp_path, baseline):
        slow = dict(BASE, test_a=BASE["test_a"] * 1.6)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline, "--tolerance", "0.10") == 1
        assert run(results, baseline, "--tolerance", "0.95") == 0


class TestAbsoluteGate:
    def test_uniform_slowdown_fails_absolute(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json",
                                {n: m * 2.0 for n, m in BASE.items()})
        assert run(results, baseline, "--absolute") == 1

    def test_within_tolerance_passes(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json",
                                {n: m * 1.1 for n, m in BASE.items()})
        assert run(results, baseline, "--absolute") == 0


class TestSchemaDrift:
    def test_missing_benchmark_is_schema_error(self, tmp_path, baseline):
        partial = {n: m for n, m in BASE.items() if n != "test_b"}
        results = write_results(tmp_path / "r.json", partial)
        assert run(results, baseline) == 2

    def test_new_benchmark_is_schema_error(self, tmp_path, baseline):
        grown = dict(BASE, test_d=0.1)
        results = write_results(tmp_path / "r.json", grown)
        assert run(results, baseline) == 2

    def test_missing_baseline_file(self, tmp_path):
        results = write_results(tmp_path / "r.json", BASE)
        assert run(results, tmp_path / "nope.json") == 2


class TestUpdate:
    def test_update_writes_baseline_then_passes(self, tmp_path):
        results = write_results(tmp_path / "r.json", BASE)
        baseline = tmp_path / "new_baseline.json"
        assert run(results, baseline, "--update") == 0
        assert baseline.exists()
        assert run(results, baseline) == 0

    def test_update_preserves_wallclock_section(self, tmp_path):
        """Rebasing means must not drop the hand-written ratio tiers."""
        baseline = tmp_path / "baseline.json"
        doc = {"benchmarks": [{"name": n, "stats": {"mean": m}}
                              for n, m in BASE.items()],
               "wallclock": [{"name": "t", "numerator": "test_c",
                              "denominator": "test_a", "min_ratio": 2.0}]}
        baseline.write_text(json.dumps(doc))
        results = write_results(tmp_path / "r.json",
                                {n: m * 1.5 for n, m in BASE.items()})
        assert run(results, baseline, "--update") == 0
        rebased = json.loads(baseline.read_text())
        assert rebased["wallclock"] == doc["wallclock"]


class TestShareNoiseFloor:
    """Sub-percent shares are jitter-immune; big shares stay gated."""

    # test_tiny holds ~0.5% of the total: 20% of its own share is far
    # below the drift the dominant benchmark's jitter imposes on it.
    TINY_BASE = {"test_big": 0.695, "test_mid": 0.3, "test_tiny": 0.005}

    def write_tiny_baseline(self, tmp_path):
        return write_results(tmp_path / "baseline.json", self.TINY_BASE)

    def test_tiny_share_jitter_passes(self, tmp_path):
        baseline = self.write_tiny_baseline(tmp_path)
        # +40% of its own (tiny) share — under the absolute floor.
        noisy = dict(self.TINY_BASE, test_tiny=0.007)
        results = write_results(tmp_path / "r.json", noisy)
        assert run(results, baseline) == 0

    def test_tiny_share_real_regression_fails(self, tmp_path):
        baseline = self.write_tiny_baseline(tmp_path)
        # 4x its own share clears the floor: a genuine slowdown.
        slow = dict(self.TINY_BASE, test_tiny=0.020)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline) == 1

    def test_floor_does_not_loosen_big_shares(self, tmp_path):
        baseline = self.write_tiny_baseline(tmp_path)
        # +50% on a 30%-share benchmark dwarfs the floor; still fails.
        slow = dict(self.TINY_BASE, test_mid=0.45)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline) == 1

    def test_floor_is_relative_mode_only(self, tmp_path):
        baseline = self.write_tiny_baseline(tmp_path)
        slow = dict(self.TINY_BASE, test_tiny=0.007)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline, "--absolute") == 1


class TestWallclockGate:
    """Ratio tiers: real speedups gated machine-independently."""

    def tiered_baseline(self, tmp_path, min_ratio=3.0):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "benchmarks": [{"name": n, "stats": {"mean": m}}
                           for n, m in BASE.items()],
            "wallclock": [{"name": "speedup",
                           "numerator": "scalar", "denominator": "batch",
                           "min_ratio": min_ratio}]}))
        return baseline

    def test_ratio_above_tier_passes(self, tmp_path):
        baseline = self.tiered_baseline(tmp_path)
        results = write_results(tmp_path / "r.json",
                                {"scalar": 0.4, "batch": 0.1})
        assert run(results, baseline, "--wallclock") == 0

    def test_ratio_below_tier_fails(self, tmp_path):
        baseline = self.tiered_baseline(tmp_path)
        results = write_results(tmp_path / "r.json",
                                {"scalar": 0.2, "batch": 0.1})
        assert run(results, baseline, "--wallclock") == 1

    def test_uniform_runner_speed_cancels_out(self, tmp_path):
        """A 10x slower machine changes neither side of the ratio."""
        baseline = self.tiered_baseline(tmp_path)
        results = write_results(tmp_path / "r.json",
                                {"scalar": 4.0, "batch": 1.0})
        assert run(results, baseline, "--wallclock") == 0

    def test_missing_pair_member_is_schema_error(self, tmp_path):
        baseline = self.tiered_baseline(tmp_path)
        results = write_results(tmp_path / "r.json", {"scalar": 0.4})
        assert run(results, baseline, "--wallclock") == 2

    def test_baseline_without_tiers_is_schema_error(self, tmp_path,
                                                    baseline):
        results = write_results(tmp_path / "r.json", BASE)
        with pytest.raises(SystemExit):
            run(results, baseline, "--wallclock")

    def test_update_refused(self, tmp_path):
        baseline = self.tiered_baseline(tmp_path)
        results = write_results(tmp_path / "r.json",
                                {"scalar": 0.4, "batch": 0.1})
        with pytest.raises(SystemExit):
            run(results, baseline, "--wallclock", "--update")

    def test_repo_baseline_carries_batch_tier(self):
        """The checked-in substrate baseline gates the batch speedup."""
        baseline = Path(__file__).resolve().parent.parent / "benchmarks" \
            / "baseline_substrate.json"
        tiers = json.loads(baseline.read_text())["wallclock"]
        assert any(t["min_ratio"] >= 3.0
                   and "batch" in t["denominator"] for t in tiers)
