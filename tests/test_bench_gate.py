"""Tests for tools/check_bench_regression.py on synthetic results."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" \
    / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("bench_gate", _TOOL)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)


def write_results(path: Path, means: dict[str, float]) -> Path:
    path.write_text(json.dumps(
        {"benchmarks": [{"name": n, "stats": {"mean": m}}
                        for n, m in means.items()]}))
    return path


BASE = {"test_a": 0.1, "test_b": 0.2, "test_c": 0.7}


@pytest.fixture
def baseline(tmp_path):
    return write_results(tmp_path / "baseline.json", BASE)


def run(results, baseline, *extra):
    return bench_gate.main([str(results), "--baseline", str(baseline),
                            *extra])


class TestRelativeGate:
    def test_identical_passes(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json", BASE)
        assert run(results, baseline) == 0

    def test_uniform_slowdown_passes(self, tmp_path, baseline):
        """A slow runner scales everything; shares are unchanged."""
        results = write_results(tmp_path / "r.json",
                                {n: m * 3.0 for n, m in BASE.items()})
        assert run(results, baseline) == 0

    def test_single_benchmark_regression_fails(self, tmp_path, baseline):
        slow = dict(BASE, test_a=BASE["test_a"] * 4.0)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline) == 1

    def test_speedup_is_not_a_failure(self, tmp_path, baseline):
        fast = dict(BASE, test_c=BASE["test_c"] * 0.7)
        results = write_results(tmp_path / "r.json", fast)
        # test_c shrinking inflates a/b's shares by ~27%; the gate must
        # not flag the sped-up benchmark itself, only genuine growth.
        assert run(results, baseline, "--tolerance", "0.3") == 0

    def test_tolerance_is_respected(self, tmp_path, baseline):
        slow = dict(BASE, test_a=BASE["test_a"] * 1.6)
        results = write_results(tmp_path / "r.json", slow)
        assert run(results, baseline, "--tolerance", "0.10") == 1
        assert run(results, baseline, "--tolerance", "0.95") == 0


class TestAbsoluteGate:
    def test_uniform_slowdown_fails_absolute(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json",
                                {n: m * 2.0 for n, m in BASE.items()})
        assert run(results, baseline, "--absolute") == 1

    def test_within_tolerance_passes(self, tmp_path, baseline):
        results = write_results(tmp_path / "r.json",
                                {n: m * 1.1 for n, m in BASE.items()})
        assert run(results, baseline, "--absolute") == 0


class TestSchemaDrift:
    def test_missing_benchmark_is_schema_error(self, tmp_path, baseline):
        partial = {n: m for n, m in BASE.items() if n != "test_b"}
        results = write_results(tmp_path / "r.json", partial)
        assert run(results, baseline) == 2

    def test_new_benchmark_is_schema_error(self, tmp_path, baseline):
        grown = dict(BASE, test_d=0.1)
        results = write_results(tmp_path / "r.json", grown)
        assert run(results, baseline) == 2

    def test_missing_baseline_file(self, tmp_path):
        results = write_results(tmp_path / "r.json", BASE)
        assert run(results, tmp_path / "nope.json") == 2


class TestUpdate:
    def test_update_writes_baseline_then_passes(self, tmp_path):
        results = write_results(tmp_path / "r.json", BASE)
        baseline = tmp_path / "new_baseline.json"
        assert run(results, baseline, "--update") == 0
        assert baseline.exists()
        assert run(results, baseline) == 0
