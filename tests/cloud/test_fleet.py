"""The sharded fleet control plane: placement, scheduling, borrowing."""

import pytest

from repro.attacks import attack_for_experiment
from repro.cloud import (ChaosConfig, ChaosEngine, Fleet, build_fleet_testbed,
                         shard_key_for)
from repro.guest import build_catalog
from repro.obs import make_observability

SEED = 42
ONE_VARIANT = (("xp-sp2", ("ntoskrnl.exe", "hal.dll", "disk.sys")),)


def make_fleet(n_vms, *, variants=None, infected=None, **kwargs):
    build_kwargs = {"seed": SEED}
    if variants is not None:
        build_kwargs["variants"] = variants
    tb = build_fleet_testbed(n_vms, infected=infected, **build_kwargs)
    return tb, Fleet(tb.hypervisor, **kwargs)


class TestSharding:
    def test_same_variant_guests_share_a_key(self):
        tb, _ = make_fleet(8)
        hv = tb.hypervisor
        # Dom1 and Dom5 are the same variant (4 variants, round-robin)
        assert shard_key_for(hv.domain("Dom1")) \
            == shard_key_for(hv.domain("Dom5"))
        assert shard_key_for(hv.domain("Dom1")) \
            != shard_key_for(hv.domain("Dom2"))

    def test_key_ignores_module_content(self):
        """Tampered bytes must NOT split the pool — content differences
        are what the vote detects, so they may not dodge it."""
        attack, module = attack_for_experiment("E1")
        infected = attack.apply(build_catalog(seed=SEED)[module]).infected
        tb, _ = make_fleet(4, variants=ONE_VARIANT,
                           infected={"Dom2": {module: infected}})
        assert shard_key_for(tb.hypervisor.domain("Dom2")) \
            == shard_key_for(tb.hypervisor.domain("Dom1"))

    def test_placement_covers_every_guest(self):
        _, fleet = make_fleet(50, shard_size=8)
        placed = [vm for s in fleet.shards.values() for vm in s.members]
        assert sorted(placed) == sorted(f"Dom{i}" for i in range(1, 51))
        for shard in fleet.shards.values():
            assert shard.size <= 8
            for vm in shard.members:
                assert shard_key_for(
                    fleet.hv.domain(vm)) == shard.key

    def test_shard_size_cap_opens_siblings(self):
        _, fleet = make_fleet(10, variants=ONE_VARIANT, shard_size=4)
        sizes = sorted(s.size for s in fleet.shards.values())
        assert sizes == [2, 4, 4]
        keys = {s.key for s in fleet.shards.values()}
        assert len(keys) == 1


class TestScheduler:
    def test_clock_advances_once_per_round(self):
        tb, fleet = make_fleet(12, shard_size=4, interval=60.0)
        before = tb.clock.now
        report = fleet.run_cycle()
        # exactly interval + the round's makespan, not one interval
        # per shard
        assert tb.clock.now == pytest.approx(
            before + 60.0 + report.duration)

    def test_more_workers_shrink_the_makespan(self):
        _, narrow = make_fleet(24, shard_size=4, workers=1)
        _, wide = make_fleet(24, shard_size=4, workers=8)
        r1 = narrow.run_cycle()
        r8 = wide.run_cycle()
        assert r8.duration < r1.duration

    def test_clean_fleet_raises_nothing(self):
        _, fleet = make_fleet(16, shard_size=4)
        reports = fleet.run(3)
        assert all(not r.alerts for r in reports)
        assert fleet.stats.alerts_total == 0

    def test_detection_stays_shard_local(self):
        attack, module = attack_for_experiment("E1")
        infected = attack.apply(build_catalog(seed=SEED)[module]).infected
        tb, fleet = make_fleet(16, shard_size=4,
                               infected={"Dom6": {module: infected}})
        fleet.run(2)
        flagged = {vm for _, a in fleet.alert_log
                   if a.kind == "integrity" for vm in a.flagged_vms}
        assert flagged == {"Dom6"}
        owner = fleet.shard_of("Dom6").name
        assert all(shard == owner for shard, a in fleet.alert_log
                   if a.kind == "integrity")


class TestQuorumBorrowing:
    def test_small_shard_verdicts_only_via_siblings(self):
        """A 1-VM shard cannot vote alone; with same-key siblings it
        reaches a verdict every cycle via borrowed references."""
        _, fleet = make_fleet(5, variants=ONE_VARIANT, shard_size=4)
        small = next(s for s in fleet.shards.values() if s.size == 1)
        fleet.run(3)
        assert small.daemon.checks_run == 3
        assert small.daemon.borrowed_refs > 0
        assert fleet.stats.borrowed_refs_total > 0

    def test_no_borrowing_without_lender(self):
        _, fleet = make_fleet(5, variants=ONE_VARIANT, shard_size=4,
                              borrow=False)
        small = next(s for s in fleet.shards.values() if s.size == 1)
        fleet.run(3)
        assert small.daemon.checks_run == 0
        assert small.daemon.borrowed_refs == 0
        # the starved shard degrades loudly instead of checking
        assert any(a.kind == "degraded" and "quorum starved" in a.regions[0]
                   for _, a in fleet.alert_log)

    def test_tampered_member_convicted_by_borrowed_majority(self):
        attack, module = attack_for_experiment("E1")
        infected = attack.apply(build_catalog(seed=SEED)[module]).infected
        _, fleet = make_fleet(5, variants=ONE_VARIANT, shard_size=4,
                              infected={"Dom5": {module: infected}})
        small = next(s for s in fleet.shards.values() if s.size == 1)
        assert small.members == {"Dom5"}
        fleet.run(2)
        flagged = {vm for _, a in fleet.alert_log
                   if a.kind == "integrity" for vm in a.flagged_vms}
        # the borrowed majority convicts exactly the tampered VM —
        # never the lent references
        assert flagged == {"Dom5"}

    def test_borrowed_vms_keep_their_home_breakers(self):
        _, fleet = make_fleet(5, variants=ONE_VARIANT, shard_size=4)
        small = next(s for s in fleet.shards.values() if s.size == 1)
        big = next(s for s in fleet.shards.values() if s.size == 4)
        fleet.run(2)
        # lending never leaks breaker state into the borrowing shard
        assert set(small.daemon.health.states()) <= small.members
        assert set(big.daemon.health.states()) <= big.members

    def test_cross_key_shards_never_lend(self):
        """A unique-key 1-VM shard has no sibling to borrow from."""
        variants = (("xp-sp2", ("ntoskrnl.exe", "hal.dll", "disk.sys")),
                    ("win2003", ("ntoskrnl.exe", "hal.dll", "dummy.sys")))
        # 5 VMs -> 3 xp + 2 win2003; shard_size 3 splits xp into 3+... no:
        # round-robin gives xp {Dom1,Dom3,Dom5}, win {Dom2,Dom4}
        _, fleet = make_fleet(5, variants=variants, shard_size=2)
        ones = [s for s in fleet.shards.values() if s.size == 1]
        fleet.run(2)
        for shard in ones:
            same_key = [s for s in fleet.shards.values()
                        if s is not shard and s.key == shard.key]
            if not same_key:
                assert shard.daemon.checks_run == 0
                assert shard.daemon.borrowed_refs == 0


class TestShardAdministration:
    def test_evict_and_readmit_shard(self):
        _, fleet = make_fleet(12, shard_size=4)
        name = sorted(fleet.shards)[0]
        fleet.run_cycle()
        checks_before = fleet.shards[name].daemon.checks_run
        fleet.evict_shard(name)
        report = fleet.run_cycle()
        assert fleet.shards[name].daemon.checks_run == checks_before
        assert report.shards == len(fleet.shards) - 1
        fleet.admit_shard(name)
        fleet.run_cycle()
        assert fleet.shards[name].daemon.checks_run == checks_before + 1
        assert fleet.stats.shard_events["evicted"] == 1
        assert fleet.stats.shard_events["admitted"] == 1

    def test_evicted_members_stay_placed(self):
        _, fleet = make_fleet(12, shard_size=4)
        name = sorted(fleet.shards)[0]
        members = set(fleet.shards[name].members)
        fleet.evict_shard(name)
        fleet.run_cycle()
        assert fleet.shards[name].members == members
        for vm in members:
            assert fleet.shard_of(vm).name == name

    def test_evict_is_idempotent(self):
        _, fleet = make_fleet(8, shard_size=4)
        name = sorted(fleet.shards)[0]
        fleet.evict_shard(name)
        fleet.evict_shard(name)
        assert fleet.stats.shard_events["evicted"] == 1


class TestMembershipUnderChurn:
    def test_new_guest_joins_matching_shard(self):
        tb, fleet = make_fleet(8, shard_size=4)
        catalog = {m: tb.catalog[m]
                   for m in ("ntoskrnl.exe", "hal.dll", "disk.sys")}
        tb.hypervisor.create_guest("Late1", catalog, seed=SEED,
                                   os_flavor="xp-sp2")
        fleet.run_cycle()
        shard = fleet.shard_of("Late1")
        assert shard is not None
        assert shard.key == shard_key_for(tb.hypervisor.domain("Late1"))

    def test_vanished_guest_leaves_its_shard(self):
        tb, fleet = make_fleet(8, shard_size=4)
        owner = fleet.shard_of("Dom1")
        tb.hypervisor.destroy("Dom1")
        fleet.run_cycle()
        assert fleet.shard_of("Dom1") is None
        assert "Dom1" not in owner.members
        assert "Dom1" not in owner.daemon.health.states()

    def test_emptied_shard_retires(self):
        variants = (("xp-sp2", ("ntoskrnl.exe", "hal.dll", "disk.sys")),
                    ("win2003", ("ntoskrnl.exe", "hal.dll", "dummy.sys")))
        tb, fleet = make_fleet(4, variants=variants, shard_size=4)
        win_shard = fleet.shard_of("Dom2")
        tb.hypervisor.destroy("Dom2")
        tb.hypervisor.destroy("Dom4")
        fleet.run_cycle()
        assert win_shard.name not in fleet.shards
        assert fleet.stats.shard_events["retired"] == 1

    def test_breaker_membership_invariants_hold_under_churn(self):
        """PR 3's per-shard invariants survive fleet-wide chaos: every
        breaker and every placement always refers to a shard member,
        every live guest is placed in exactly one key-matching shard,
        and fleet totals never run backwards."""
        tb, fleet = make_fleet(24, shard_size=4, quorum_floor=2)
        engine = ChaosEngine(
            tb.hypervisor, ChaosConfig.from_churn_rate(0.25),
            seed=SEED, catalog={m: tb.catalog[m] for m in
                                ("ntoskrnl.exe", "hal.dll", "disk.sys")})
        fleet.chaos = engine
        last_checks = 0
        for _ in range(12):
            fleet.run_cycle()
            live = {d.name for d in tb.hypervisor.guests()}
            placed = [vm for s in fleet.shards.values()
                      for vm in s.members]
            assert sorted(placed) == sorted(live)
            for shard in fleet.shards.values():
                for vm in shard.members:
                    assert shard_key_for(
                        tb.hypervisor.domain(vm)) == shard.key
                assert set(shard.daemon.health.states()) <= shard.members
            assert fleet.stats.checks_total >= last_checks
            last_checks = fleet.stats.checks_total
        assert engine.stats.events > 0
        # churn alone never produces an integrity conviction
        assert not [a for _, a in fleet.alert_log
                    if a.kind == "integrity"]

    def test_counters_survive_shard_retirement(self):
        variants = (("xp-sp2", ("ntoskrnl.exe", "hal.dll", "disk.sys")),
                    ("win2003", ("ntoskrnl.exe", "hal.dll", "dummy.sys")))
        tb, fleet = make_fleet(4, variants=variants, shard_size=4)
        fleet.run(2)
        before = fleet.stats.vm_checks_total
        assert before > 0
        tb.hypervisor.destroy("Dom2")
        tb.hypervisor.destroy("Dom4")
        fleet.run_cycle()
        assert fleet.stats.vm_checks_total >= before


class TestObservability:
    def test_fleet_events_and_metrics_flow(self):
        tb = build_fleet_testbed(5, seed=SEED, variants=ONE_VARIANT)
        obs = make_observability(tb.clock)
        fleet = Fleet(tb.hypervisor, shard_size=4, obs=obs)
        fleet.run(2)
        names = {e.name for e in obs.events.events}
        assert "fleet.cycle" in names
        assert "shard.changed" in names
        assert "quorum.borrowed" in names
        blob = str(obs.metrics.snapshot())
        for metric in ("modchecker_fleet_shards",
                       "modchecker_fleet_vm_checks_total",
                       "modchecker_fleet_borrowed_refs_total",
                       "modchecker_fleet_cycle_seconds"):
            assert metric in blob


class TestValidation:
    def test_rejects_bad_parameters(self):
        tb = build_fleet_testbed(2, seed=SEED)
        with pytest.raises(ValueError):
            Fleet(tb.hypervisor, shard_size=0)
        with pytest.raises(ValueError):
            Fleet(tb.hypervisor, workers=0)
        with pytest.raises(ValueError):
            Fleet(tb.hypervisor, interval=0)
        with pytest.raises(ValueError):
            build_fleet_testbed(0)

    def test_empty_hypervisor_is_fine_until_checks(self):
        tb = build_fleet_testbed(1, seed=SEED)
        tb.hypervisor.destroy("Dom1")
        fleet = Fleet(tb.hypervisor)
        assert fleet.shards == {}
        report = fleet.run_cycle()       # no shards: a quiet round
        assert report.shards == 0
        assert report.alerts == ()
