"""Unit tests for the seeded lifecycle chaos engine."""

import pytest

from repro.cloud import ChaosConfig, ChaosEngine, build_testbed
from repro.cloud.chaos import CHURN_SPLIT
from repro.hypervisor.domain import DomainState


class TestChaosConfig:
    def test_defaults_are_quiet(self):
        assert not ChaosConfig().any_churn

    @pytest.mark.parametrize("kwargs", [
        {"reboot_rate": -0.1},
        {"pause_rate": 1.5},
        {"pause_duration": -1.0},
        {"reboot_rate": 0.5, "pause_rate": 0.3, "migrate_rate": 0.3},
        {"min_pool": 5, "max_pool": 3},
        {"min_pool": -1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs)

    def test_from_churn_rate_splits_budget(self):
        cfg = ChaosConfig.from_churn_rate(0.2)
        for kind, share in CHURN_SPLIT.items():
            assert getattr(cfg, f"{kind}_rate") == pytest.approx(0.2 * share)
        assert cfg.any_churn

    def test_from_churn_rate_overrides(self):
        cfg = ChaosConfig.from_churn_rate(0.2, destroy_rate=0.0, min_pool=4)
        assert cfg.destroy_rate == 0.0
        assert cfg.min_pool == 4

    def test_from_churn_rate_range_checked(self):
        with pytest.raises(ValueError):
            ChaosConfig.from_churn_rate(1.2)


def _engine(n_vms=4, seed=42, churn=0.5, **overrides):
    tb = build_testbed(n_vms, seed=seed)
    cfg = ChaosConfig.from_churn_rate(churn, **overrides)
    return tb, ChaosEngine(tb.hypervisor, cfg, seed=seed,
                           catalog=tb.catalog)


class TestChaosEngine:
    def test_trace_is_pure_function_of_seed(self):
        def run(seed):
            tb, engine = _engine(seed=seed)
            for _ in range(10):
                engine.step()
                tb.hypervisor.clock.advance(60.0)
            return ([str(e) for e in engine.trace],
                    engine.stats.as_dict(),
                    sorted(d.name for d in tb.hypervisor.guests()))

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_destroy_respects_min_pool(self):
        tb, engine = _engine(n_vms=3, churn=0.9, reboot_rate=0.0,
                             pause_rate=0.0, migrate_rate=0.0,
                             destroy_rate=0.9, create_rate=0.0, min_pool=2)
        for _ in range(30):
            engine.step()
        assert len(tb.hypervisor.guests()) == 2

    def test_create_respects_max_pool(self):
        tb, engine = _engine(n_vms=2, churn=0.0, create_rate=1.0,
                             max_pool=4)
        for _ in range(10):
            engine.step()
        assert len(tb.hypervisor.guests()) == 4
        assert engine.stats.creates == 2

    def test_pause_window_closes_on_schedule(self):
        tb, engine = _engine(churn=0.0, pause_rate=1.0, pause_duration=90.0)
        engine.step()
        paused = [d.name for d in tb.hypervisor.guests()
                  if d.state is DomainState.PAUSED]
        assert paused == [d.name for d in tb.hypervisor.guests()]
        engine.config = ChaosConfig()       # stop new churn; watch windows
        tb.hypervisor.clock.advance(30.0)
        engine.step()                       # 30s in: window still open
        assert all(d.state is DomainState.PAUSED
                   for d in tb.hypervisor.guests())
        tb.hypervisor.clock.advance(61.0)
        engine.step()                       # 91s in: everyone unpaused
        assert all(d.state is DomainState.RUNNING
                   for d in tb.hypervisor.guests())
        assert engine.stats.unpauses == engine.stats.pauses

    def test_migration_blackout_closes_on_schedule(self):
        tb, engine = _engine(churn=0.0, migrate_rate=1.0,
                             migrate_duration=150.0)
        engine.step()
        assert all(d.state is DomainState.MIGRATING
                   for d in tb.hypervisor.guests())
        engine.config = ChaosConfig()       # stop new churn; watch windows
        tb.hypervisor.clock.advance(151.0)
        engine.step()
        assert all(d.state is DomainState.RUNNING
                   for d in tb.hypervisor.guests())
        assert engine.stats.migrations_finished == engine.stats.migrations

    def test_reboot_event_bumps_generation(self):
        tb, engine = _engine(churn=0.0, reboot_rate=1.0)
        gens = {d.name: d.boot_generation for d in tb.hypervisor.guests()}
        engine.step()
        for domain in tb.hypervisor.guests():
            assert domain.boot_generation == gens[domain.name] + 1
        assert engine.stats.reboots == len(gens)

    def test_only_domains_scopes_churn(self):
        tb, engine = _engine(churn=0.0, reboot_rate=1.0,
                             only_domains=(build_testbed(1, seed=42)
                                           .vm_names[0],))
        target = engine.config.only_domains[0]
        gens = {d.name: d.boot_generation for d in tb.hypervisor.guests()}
        engine.step()
        for domain in tb.hypervisor.guests():
            expected = gens[domain.name] + (1 if domain.name == target else 0)
            assert domain.boot_generation == expected

    def test_created_guests_are_deterministically_seeded(self):
        def created_bases():
            tb, engine = _engine(n_vms=2, churn=0.0, create_rate=1.0)
            engine.step()
            kernel = tb.hypervisor.domain("Chaos1").kernel
            return {name: mod.base for name, mod in kernel.modules.items()}

        assert created_bases() == created_bases()

    def test_engine_registers_on_hypervisor(self):
        tb, engine = _engine()
        assert tb.hypervisor.chaos_engine is engine
