"""Unit tests for the cloud testbed builder."""

import pytest

from repro.cloud import PAPER_VM_COUNT, build_testbed
from repro.attacks import StubModificationAttack


class TestBuild:
    def test_default_matches_paper(self):
        tb = build_testbed(seed=1)
        assert len(tb.vm_names) == PAPER_VM_COUNT == 15
        assert tb.vm_names[0] == "Dom1" and tb.vm_names[-1] == "Dom15"
        assert tb.hypervisor.cpu.logical_cpus == 8

    def test_clones_share_catalog_bytes(self, clean_testbed_session):
        tb = clean_testbed_session
        # Every guest loaded the same files: hashes of the *files* are
        # identical; only in-memory bases differ.
        bases = set()
        for name in tb.vm_names:
            kernel = tb.hypervisor.domain(name).kernel
            bases.add(kernel.module("hal.dll").base)
        assert len(bases) == len(tb.vm_names)

    def test_profile_matches_all_guests(self, clean_testbed_session):
        tb = clean_testbed_session
        for name in tb.vm_names:
            kernel = tb.hypervisor.domain(name).kernel
            assert tb.profile.symbol("PsLoadedModuleList") == \
                kernel.symbols["PsLoadedModuleList"]

    def test_zero_vms_rejected(self):
        with pytest.raises(ValueError):
            build_testbed(0)

    def test_deterministic(self):
        a = build_testbed(3, seed=9)
        b = build_testbed(3, seed=9)
        for name in a.vm_names:
            ka = a.hypervisor.domain(name).kernel
            kb = b.hypervisor.domain(name).kernel
            assert ka.module("hal.dll").base == kb.module("hal.dll").base


class TestInfection:
    def test_infected_vm_boots_replacement(self, catalog):
        infected = StubModificationAttack().apply(catalog["dummy.sys"])
        tb = build_testbed(3, seed=42,
                           infected={"Dom2": {"dummy.sys": infected.infected}})
        img_clean = tb.hypervisor.domain("Dom1").kernel.read_module_image(
            "dummy.sys")
        img_bad = tb.hypervisor.domain("Dom2").kernel.read_module_image(
            "dummy.sys")
        assert b"CHK mode" in img_bad
        assert b"CHK mode" not in img_clean

    def test_unknown_module_in_infection_rejected(self, catalog):
        infected = StubModificationAttack().apply(catalog["dummy.sys"])
        with pytest.raises(KeyError, match="not in the catalog"):
            build_testbed(2, seed=42,
                          infected={"Dom1": {"ghost.sys": infected.infected}})


class TestLoads:
    def test_set_guest_loads(self):
        tb = build_testbed(3, seed=1)
        tb.set_guest_loads(0.5)
        assert tb.hypervisor.guest_demand() == pytest.approx(1.5)
        tb.set_guest_loads(1.0, vms=["Dom1"])
        assert tb.hypervisor.domain("Dom1").cpu_load == 1.0
