"""Tests for the scenario staging helpers."""

import pytest

from repro.cloud.scenarios import (stage_attack, stage_experiment,
                                   stage_hidden_module)


class TestStageExperiment:
    @pytest.mark.parametrize("exp_id", ["E1", "E2", "E3", "E4"])
    def test_stages_and_detects(self, exp_id):
        scenario = stage_experiment(exp_id, n_vms=5)
        report = scenario.run_pool_check().report
        assert report.flagged() == [scenario.victim]
        assert set(report.mismatched_regions(scenario.victim)) == \
            set(scenario.expected_regions)

    def test_checker_kwargs_forwarded(self):
        scenario = stage_experiment("E1", n_vms=4,
                                    hash_algorithm="sha256",
                                    rva_mode="vectorized")
        assert scenario.checker.checker.hash_algorithm == "sha256"
        assert scenario.checker.checker.rva_mode == "vectorized"
        assert not scenario.run_pool_check().report.all_clean

    def test_custom_victim(self):
        scenario = stage_experiment("E3", n_vms=5, victim="Dom5")
        assert scenario.run_pool_check().report.flagged() == ["Dom5"]


class TestStageAttack:
    def test_extension_attack(self):
        scenario = stage_attack("timestamp-forgery", "http.sys", n_vms=4)
        report = scenario.run_pool_check().report
        assert report.flagged() == ["Dom3"]
        assert report.mismatched_regions("Dom3") == ("IMAGE_NT_HEADER",)

    def test_unknown_attack(self):
        with pytest.raises(KeyError):
            stage_attack("quantum", "hal.dll")


class TestStageHiddenModule:
    def test_hidden_and_tampered(self):
        scenario = stage_hidden_module()
        hidden = scenario.checker.detect_hidden_modules(scenario.victim)
        assert len(hidden) == 1
        carved, name = hidden[0]
        assert name == scenario.module
        report = scenario.checker.check_carved_module(carved, name)
        assert not report.clean

    def test_hidden_but_clean(self):
        scenario = stage_hidden_module(patch_text=False)
        (carved, name), = scenario.checker.detect_hidden_modules(
            scenario.victim)
        report = scenario.checker.check_carved_module(carved, name)
        assert report.clean
