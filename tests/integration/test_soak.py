"""Soak test: a daemon survives a long adversarial timeline.

A seeded chaos loop drives 40 daemon cycles over a 5-VM cloud while a
scripted adversary randomly patches modules in memory, hides modules by
DKOM, plants decoy entries and gets remediated (snapshot revert). The
invariants:

* every infection window produces at least one alert before it closes;
* no integrity alert ever fires while the cloud is entirely clean;
* the daemon never crashes, whatever the interleaving.
"""

from __future__ import annotations

import pytest

from repro.attacks import LdrDecoyAttack, RuntimeCodePatchAttack
from repro.cloud import build_testbed
from repro.core import CheckDaemon, ModChecker, RoundRobinPolicy
from repro.rng import make_rng

POOL = 5
CYCLES = 40
MODULES = ["hal.dll", "http.sys", "ndis.sys", "dummy.sys"]


@pytest.mark.parametrize("chaos_seed", [1, 7, 1234])
def test_soak(chaos_seed):
    rng = make_rng(chaos_seed)
    tb = build_testbed(POOL, seed=42)
    for vm in tb.vm_names:
        tb.hypervisor.snapshot(vm)
    mc = ModChecker(tb.hypervisor, tb.profile)
    daemon = CheckDaemon(mc, RoundRobinPolicy(per_cycle=len(MODULES) + 6),
                         interval=30.0, carve=True)

    # state: vm -> set of tampered modules / hidden modules / decoys
    tampered: dict[str, set[str]] = {vm: set() for vm in tb.vm_names}
    hidden: dict[str, set[str]] = {vm: set() for vm in tb.vm_names}
    decoys: dict[str, int] = {vm: 0 for vm in tb.vm_names}
    false_integrity_alerts = 0
    infections_seen: set[tuple[str, str]] = set()
    infections_alerted: set[tuple[str, str]] = set()

    for cycle in range(CYCLES):
        action = rng.random()
        victim = tb.vm_names[int(rng.integers(0, POOL))]
        module = MODULES[int(rng.integers(0, len(MODULES)))]
        kernel = tb.hypervisor.domain(victim).kernel

        if action < 0.25 and module not in tampered[victim] \
                and module not in hidden[victim]:
            RuntimeCodePatchAttack(
                offset_in_text=0x20 + 4 * int(rng.integers(0, 8))
            ).apply(kernel, tb.catalog[module])
            tampered[victim].add(module)
            infections_seen.add((victim, module))
        elif action < 0.35 and module not in hidden[victim] \
                and module in kernel.modules:
            kernel.unload_module(module)
            hidden[victim].add(module)
        elif action < 0.42 and not decoys[victim]:
            LdrDecoyAttack(decoy_name=f"ghost{cycle}.sys").apply(kernel)
            decoys[victim] += 1
        elif action < 0.60 and (tampered[victim] or hidden[victim]
                                or decoys[victim]):
            # remediation: revert to the clean snapshot
            tb.hypervisor.revert(victim)
            tampered[victim].clear()
            hidden[victim].clear()
            decoys[victim] = 0

        alerts = daemon.run_cycle()
        for alert in alerts:
            if alert.kind == "integrity":
                dirty = any(alert.module in tampered[vm]
                            for vm in alert.flagged_vms)
                # a hidden+tampered module can't alarm via integrity
                # (it's not in the list); require a real tamper
                if dirty:
                    for vm in alert.flagged_vms:
                        if alert.module in tampered[vm]:
                            infections_alerted.add((vm, alert.module))
                else:
                    false_integrity_alerts += 1

    # Invariant 1: zero false integrity alerts across the whole run.
    assert false_integrity_alerts == 0

    # Invariant 2: every infection that survived until its module's
    # next check (i.e. wasn't remediated first and wasn't hidden) was
    # alerted. Conservatively: anything still tampered-and-visible at
    # the end must have been alerted at some point.
    for vm in tb.vm_names:
        for module in tampered[vm]:
            if module not in hidden[vm]:
                assert (vm, module) in infections_alerted, (vm, module)

    # Sanity: the run actually exercised the machinery.
    assert infections_seen
    assert daemon.cycles_run == CYCLES
