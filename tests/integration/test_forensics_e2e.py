"""End-to-end forensics pipeline tests through the CLI.

Covers the three acceptance properties of the evidence pipeline:

* determinism — two runs with the same seed produce byte-identical
  audit logs (JSONL) and evidence bundles (JSON);
* fidelity — a seeded tamper scenario names the tampered section and
  pins at least one unexplained hunk to the exact attack bytes;
* restraint — a clean pool under heavy churn never produces an
  unexplained hunk (degraded bundles are fine, tamper claims are not).
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.forensics import load_bundle

VICTIM = "Dom3"


def _chaos_run(tmp_path, tag, *, infected: bool):
    out = tmp_path / tag
    out.mkdir()
    argv = ["--seed", "1234", "chaos", "--vms", "5", "--cycles", "8",
            "--churn-rate", "0.3",
            "--events-out", str(out / "events.jsonl"),
            "--evidence-out", str(out / "evidence")]
    if infected:
        argv += ["--admit-infected", "2", "--infect", "E1"]
    rc = main(argv)
    return rc, out


class TestDeterminism:
    def test_same_seed_means_byte_identical_artifacts(self, tmp_path, capsys):
        _, a = _chaos_run(tmp_path, "a", infected=True)
        _, b = _chaos_run(tmp_path, "b", infected=True)
        capsys.readouterr()
        assert (a / "events.jsonl").read_bytes() == \
            (b / "events.jsonl").read_bytes()
        names_a = sorted(p.name for p in (a / "evidence").iterdir())
        names_b = sorted(p.name for p in (b / "evidence").iterdir())
        assert names_a == names_b and names_a
        for name in names_a:
            assert (a / "evidence" / name).read_bytes() == \
                (b / "evidence" / name).read_bytes()

    def test_audit_log_stays_in_vocabulary_and_correlated(self, tmp_path,
                                                          capsys):
        from repro.obs import EVENT_NAMES
        rc, out = _chaos_run(tmp_path, "run", infected=True)
        capsys.readouterr()
        assert rc == 0                      # infected clone convicted
        docs = [json.loads(line) for line in
                (out / "events.jsonl").read_text().splitlines()]
        assert docs
        assert {d["event"] for d in docs} <= set(EVENT_NAMES)
        # every check.verdict is correlated to a minted check id
        verdicts = [d for d in docs if d["event"] == "check.verdict"]
        assert verdicts
        assert all(d.get("check_id", "").startswith("chk-")
                   for d in verdicts)
        # the alert trail joins the same ids
        alerts = [d for d in docs if d["event"] == "alert.raised"]
        assert any(d.get("check_id") for d in alerts)


class TestFidelity:
    def test_explain_names_section_and_offset(self, tmp_path, capsys):
        from repro.attacks import attack_for_experiment
        from repro.guest import build_catalog
        attack, module = attack_for_experiment("E1")
        result = attack.apply(build_catalog(seed=42)[module])
        offset = result.details["text_offset"]

        bundle_path = tmp_path / "incident.json"
        rc = main(["explain", "--vms", "4", "--infect", "E1",
                   "--victim", VICTIM, "--bundle-out", str(bundle_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "TAMPER CONFIRMED" in out
        assert ".text" in out and VICTIM in out
        assert f"+{offset:#08x}"[1:] in out or f"{offset:#x}" in out

        bundle = load_bundle(bundle_path)
        text = next(d for d in bundle.suspect(VICTIM).region_diffs
                    if d.region == ".text")
        hunk = text.unexplained[0]
        assert hunk.offset == offset
        assert hunk.suspect_bytes == b"\x83\xe9\x01"

    def test_explain_replays_saved_bundle(self, tmp_path, capsys):
        bundle_path = tmp_path / "incident.json"
        main(["explain", "--vms", "4", "--infect", "E1",
              "--victim", VICTIM, "--bundle-out", str(bundle_path)])
        capsys.readouterr()
        rc = main(["explain", "--bundle", str(bundle_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "TAMPER CONFIRMED" in out

    def test_explain_clean_pool_exits_zero(self, capsys):
        rc = main(["explain", "--vms", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out
        assert "TAMPER" not in out


class TestRestraint:
    def test_clean_pool_under_churn_never_claims_tamper(self, tmp_path,
                                                        capsys):
        rc, out = _chaos_run(tmp_path, "clean", infected=False)
        capsys.readouterr()
        assert rc == 0                      # no false-positive alerts
        # the recorder creates its directory lazily: a churn run that
        # never degrades captures nothing at all, which is also fine
        evidence = out / "evidence"
        bundles = [load_bundle(p) for p in sorted(evidence.iterdir())] \
            if evidence.exists() else []
        # churn may degrade checks (breakers, unreachable VMs) and
        # those captures are legitimate — but none may allege tamper
        assert all(b.unexplained_hunks == 0 for b in bundles)
        assert all(not b.flagged for b in bundles)
