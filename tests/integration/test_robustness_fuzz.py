"""Robustness fuzzing: hostile bytes must never crash the tooling, and
every single-byte change to a *hashed* region must be detected.

Two property families:

* **parser total-ness** — PEImage over arbitrarily mutated images either
  parses or raises PEFormatError; no IndexError/struct.error escapes.
  An introspection tool parses attacker-controlled memory, so this is a
  security property, not a nicety.
* **detection completeness** — for any offset inside any hashed region,
  flipping one bit on one VM flags exactly that VM (4-VM pool).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud import build_testbed
from repro.core import IntegrityChecker, ModuleParser
from repro.core.searcher import ModuleCopy
from repro.errors import PEFormatError, ReproError
from repro.pe import PEImage, map_file_to_memory


@pytest.fixture(scope="module")
def base_image(catalog):
    return bytes(map_file_to_memory(catalog["dummy.sys"].file_bytes))


class TestParserTotalness:
    @given(mutations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=24575),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=16))
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_mutated_image_parses_or_peformaterror(self, base_image,
                                                   mutations):
        buf = bytearray(base_image)
        for off, value in mutations:
            buf[off % len(buf)] = value
        try:
            PEImage(bytes(buf))
        except PEFormatError:
            pass                      # rejected cleanly: acceptable

    @given(data=st.binary(min_size=0, max_size=512))
    @settings(max_examples=80, deadline=None)
    def test_random_bytes_never_crash(self, data):
        with pytest.raises(PEFormatError):
            PEImage(data + b"\x00" * 64)   # random junk is never a valid PE

    @given(size=st.integers(min_value=0, max_value=63))
    @settings(max_examples=20, deadline=None)
    def test_truncations_rejected(self, base_image, size):
        with pytest.raises(PEFormatError):
            PEImage(base_image[:size])


class TestDetectionCompleteness:
    """Any bit flip inside a hashed region must convict the VM."""

    @pytest.fixture(scope="class")
    def pool(self):
        tb = build_testbed(4, seed=42)
        from repro.core import ModChecker
        mc = ModChecker(tb.hypervisor, tb.profile)
        parsed, *_ = mc.fetch_modules("dummy.sys", tb.vm_names)
        return parsed

    @given(region_pick=st.integers(min_value=0, max_value=10_000),
           offset_pick=st.integers(min_value=0, max_value=100_000),
           bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_bit_flip_always_detected(self, pool, region_pick,
                                             offset_pick, bit):
        target, *others = pool
        regions = target.all_regions()
        region = regions[region_pick % len(regions)]
        offset = region.start + (offset_pick % region.size)

        image = bytearray(target.image)
        image[offset] ^= 1 << bit
        try:
            tampered = ModuleParser().parse(ModuleCopy(
                target.vm_name, target.module_name, target.base,
                bytes(image), 0))
        except PEFormatError:
            # Structural corruption (broken magic/e_lfanew/section
            # bounds) aborts parsing — itself an unmissable alarm.
            return

        checker = IntegrityChecker()
        report = checker.check_target(tampered, others)
        assert not report.clean
        assert region.name in report.mismatched_regions()

    def test_flip_outside_hashed_regions_not_detected(self, pool):
        """Converse control: a flip in .data (unhashed) stays silent —
        the checker's scope is exactly the hashed regions."""
        target, *others = pool
        pe = PEImage(target.image)
        data_sec = pe.section(".data")
        image = bytearray(target.image)
        image[data_sec.virtual_address + 8] ^= 0xFF
        tampered = ModuleParser().parse(ModuleCopy(
            target.vm_name, target.module_name, target.base,
            bytes(image), 0))
        report = IntegrityChecker().check_target(tampered, others)
        assert report.clean


class TestCheckerErrorContainment:
    def test_garbage_copy_raises_repro_error_only(self):
        copy = ModuleCopy("VmX", "junk.sys", 0xF7000000,
                          b"\xDE\xAD" * 4096, 0)
        with pytest.raises(ReproError):
            ModuleParser().parse(copy)
